"""The ``interactive`` governor (Android cpufreq semantics).

The touch-era Android governor: on a load spike it ramps immediately to
``hispeed_freq``, holds there for ``above_hispeed_delay``, and otherwise
chooses the frequency at which the observed load would sit at
``target_load``.  Descents are damped by ``min_sample_time``.  The
aggressive hispeed jump buys responsiveness at an energy premium — one
of the six baselines the paper beats.
"""

from __future__ import annotations

from repro.errors import GovernorError
from repro.governors.base import Governor
from repro.sim.telemetry import ClusterObservation
from repro.soc.cluster import Cluster


class InteractiveGovernor(Governor):
    """Android's interactive governor.

    Args:
        go_hispeed_load: Load fraction triggering the hispeed jump
            (Android default 0.99; common device tunings use ~0.85).
        hispeed_fraction: ``hispeed_freq`` as a fraction of max frequency.
        above_hispeed_delay_s: Dwell at hispeed before climbing further.
        target_load: Load the governor tries to sit at when scaling
            proportionally (typical tuning 0.90).
        min_sample_time_s: Minimum dwell before the frequency may drop.
    """

    name = "interactive"

    def __init__(
        self,
        go_hispeed_load: float = 0.85,
        hispeed_fraction: float = 0.7,
        above_hispeed_delay_s: float = 0.02,
        target_load: float = 0.90,
        min_sample_time_s: float = 0.08,
    ):
        super().__init__()
        if not 0 < go_hispeed_load <= 1:
            raise GovernorError(f"go_hispeed_load must be in (0, 1]: {go_hispeed_load}")
        if not 0 < hispeed_fraction <= 1:
            raise GovernorError(f"hispeed_fraction must be in (0, 1]: {hispeed_fraction}")
        if not 0 < target_load <= 1:
            raise GovernorError(f"target_load must be in (0, 1]: {target_load}")
        if above_hispeed_delay_s < 0 or min_sample_time_s < 0:
            raise GovernorError("delays must be non-negative")
        self.go_hispeed_load = go_hispeed_load
        self.hispeed_fraction = hispeed_fraction
        self.above_hispeed_delay_s = above_hispeed_delay_s
        self.target_load = target_load
        self.min_sample_time_s = min_sample_time_s
        self._hispeed_until = 0.0
        self._floor_until = 0.0
        self._floor_index = 0

    def reset(self, cluster: Cluster) -> None:
        super().reset(cluster)
        self._hispeed_until = 0.0
        self._floor_until = 0.0
        self._floor_index = 0

    def decide(self, obs: ClusterObservation) -> int:
        table = self.cluster.spec.opp_table
        load = obs.max_core_utilization
        hispeed_index = table.ceil_index(self.hispeed_fraction * table.max_freq_hz)

        if load >= self.go_hispeed_load:
            if obs.opp_index < hispeed_index:
                # First spike: jump to hispeed and hold it before going higher.
                target = hispeed_index
                self._hispeed_until = obs.time_s + self.above_hispeed_delay_s
            elif obs.time_s >= self._hispeed_until:
                target = table.max_index
            else:
                target = obs.opp_index
        else:
            # Scale so that the observed absolute load sits at target_load.
            target_hz = load * obs.freq_hz / self.target_load
            target = table.ceil_index(target_hz)

        # Descent damping: hold the recent floor for min_sample_time.
        if target >= self._floor_index:
            self._floor_index = target
            self._floor_until = obs.time_s + self.min_sample_time_s
            return target
        if obs.time_s < self._floor_until:
            return self._floor_index
        self._floor_index = target
        self._floor_until = obs.time_s + self.min_sample_time_s
        return target
