"""Config-driven governor construction.

Real systems configure governors through sysfs knobs; experiments here
configure them through dicts (e.g. loaded from JSON).  Each governor
declares its tunables; :func:`create_tuned` validates names and builds
the instance, so a typo'd knob fails loudly instead of silently running
defaults.
"""

from __future__ import annotations

import inspect
from typing import Any, Callable

from repro.errors import GovernorError
from repro.governors.base import Governor, _REGISTRY


def tunables_of(name: str) -> dict[str, Any]:
    """The tunable names and default values of a registered governor.

    Raises:
        GovernorError: For unknown governor names.
    """
    factory = _factory(name)
    signature = inspect.signature(factory)
    out: dict[str, Any] = {}
    for param in signature.parameters.values():
        if param.name == "self":
            continue
        out[param.name] = (
            None if param.default is inspect.Parameter.empty else param.default
        )
    return out


def create_tuned(name: str, tunables: dict[str, Any] | None = None) -> Governor:
    """Build a registered governor with explicit tunables.

    Args:
        name: Registered governor name.
        tunables: Knob values; unknown knob names raise.

    Raises:
        GovernorError: For unknown governors, unknown knobs, or knob
            values the governor itself rejects.
    """
    factory = _factory(name)
    tunables = tunables or {}
    known = set(tunables_of(name))
    unknown = set(tunables) - known
    if unknown:
        raise GovernorError(
            f"governor {name!r} has no tunables {sorted(unknown)}; "
            f"available: {sorted(known)}"
        )
    return factory(**tunables)


def create_many(spec: dict[str, dict[str, Any]]) -> dict[str, Governor]:
    """Build per-cluster governors from a configuration mapping.

    Args:
        spec: ``{cluster_name: {"governor": name, **tunables}}``.

    Raises:
        GovernorError: On missing ``governor`` keys or bad tunables.
    """
    out: dict[str, Governor] = {}
    for cluster_name, entry in spec.items():
        entry = dict(entry)
        try:
            governor_name = entry.pop("governor")
        except KeyError:
            raise GovernorError(
                f"cluster {cluster_name!r}: spec needs a 'governor' key"
            ) from None
        out[cluster_name] = create_tuned(governor_name, entry)
    return out


def _factory(name: str) -> Callable[..., Governor]:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise GovernorError(
            f"unknown governor {name!r}; available: {sorted(_REGISTRY)}"
        ) from None
