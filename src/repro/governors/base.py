"""The governor interface and registry.

A governor is a per-cluster DVFS decision policy: each sampling interval
it receives the cluster's latest :class:`~repro.sim.telemetry.ClusterObservation`
and returns the OPP index to run next.  Governors are stateful (they may
keep histories, timers, or Q-tables) and are bound to one cluster via
:meth:`Governor.reset`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable

from repro.errors import GovernorError
from repro.sim.telemetry import ClusterObservation
from repro.soc.cluster import Cluster


class Governor(ABC):
    """Base class for DVFS governors.

    Attributes:
        name: Short registry name (e.g. ``"ondemand"``).
    """

    name: str = "governor"

    def __init__(self) -> None:
        self._cluster: Cluster | None = None

    def reset(self, cluster: Cluster) -> None:
        """Bind the governor to a cluster at the start of a run.

        Subclasses that keep decision state must call ``super().reset``
        and clear their own state.
        """
        self._cluster = cluster

    @property
    def cluster(self) -> Cluster:
        """The bound cluster.

        Raises:
            GovernorError: If :meth:`reset` has not been called.
        """
        if self._cluster is None:
            raise GovernorError(f"governor {self.name!r} is not bound to a cluster")
        return self._cluster

    @abstractmethod
    def decide(self, obs: ClusterObservation) -> int:
        """Return the OPP index to apply for the next interval."""

    def decide_traced(self, obs: ClusterObservation, tracer=None) -> int:
        """:meth:`decide`, with an optional per-decision trace record.

        When ``tracer`` is falsy this is exactly ``decide(obs)``; with a
        :class:`~repro.obs.trace.Tracer` each decision additionally
        emits a ``governor.decide`` instant carrying the observation the
        governor acted on and the OPP it chose — the
        "observation → chosen OPP" audit trail behind every DVFS move.
        """
        if not tracer:
            return self.decide(obs)
        decision = self.decide(obs)
        try:
            chosen = int(decision)
        except (TypeError, ValueError):
            chosen = -1  # the engine rejects it; record the attempt anyway
        tracer.instant(
            "governor.decide",
            cat="decision",
            governor=self.name,
            cluster=obs.cluster,
            time_s=obs.time_s,
            opp_before=obs.opp_index,
            opp_chosen=chosen,
            utilization=round(obs.utilization, 6),
            queue_jobs=obs.queue_jobs,
            qos_slack=round(obs.qos_slack, 6),
        )
        return decision


_REGISTRY: dict[str, Callable[[], Governor]] = {}


def register(name: str, factory: Callable[[], Governor]) -> None:
    """Register a zero-argument governor factory under ``name``.

    Raises:
        GovernorError: If the name is already taken.
    """
    if name in _REGISTRY:
        raise GovernorError(f"governor {name!r} already registered")
    _REGISTRY[name] = factory


def create(name: str) -> Governor:
    """Instantiate a registered governor with default parameters.

    Raises:
        GovernorError: For unknown names, listing what is available.
    """
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise GovernorError(
            f"unknown governor {name!r}; available: {sorted(_REGISTRY)}"
        ) from None
    return factory()


def available() -> list[str]:
    """Sorted names of all registered governors."""
    return sorted(_REGISTRY)
