"""The ``conservative`` governor (Linux cpufreq semantics).

Like ondemand but moves gradually: when load exceeds ``up_threshold``
the frequency climbs by ``freq_step`` (a percentage of the maximum);
when load drops below ``down_threshold`` it descends by one step.  The
gentle ramp is battery-friendly on slowly varying load and notoriously
sluggish on bursts — a shape the E2 per-scenario bench shows.
"""

from __future__ import annotations

from repro.errors import GovernorError
from repro.governors.base import Governor
from repro.sim.telemetry import ClusterObservation
from repro.soc.cluster import Cluster


class ConservativeGovernor(Governor):
    """Step-up / step-down reactive governor.

    Args:
        up_threshold: Load above which frequency steps up (kernel 0.80).
        down_threshold: Load below which frequency steps down (kernel 0.20).
        freq_step: Step size as a fraction of the maximum frequency
            (kernel default 5 %).
    """

    name = "conservative"

    def __init__(
        self,
        up_threshold: float = 0.80,
        down_threshold: float = 0.20,
        freq_step: float = 0.05,
    ):
        super().__init__()
        if not 0 < down_threshold < up_threshold <= 1:
            raise GovernorError(
                f"need 0 < down ({down_threshold}) < up ({up_threshold}) <= 1"
            )
        if not 0 < freq_step <= 1:
            raise GovernorError(f"freq_step must be in (0, 1]: {freq_step}")
        self.up_threshold = up_threshold
        self.down_threshold = down_threshold
        self.freq_step = freq_step

    def reset(self, cluster: Cluster) -> None:
        super().reset(cluster)

    def decide(self, obs: ClusterObservation) -> int:
        table = self.cluster.spec.opp_table
        load = obs.max_core_utilization
        step_hz = self.freq_step * table.max_freq_hz
        if load > self.up_threshold:
            return table.ceil_index(obs.freq_hz + step_hz)
        if load < self.down_threshold:
            return table.floor_index(max(obs.freq_hz - step_hz, table.min_freq_hz))
        return obs.opp_index
