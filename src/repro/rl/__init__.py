"""Reinforcement-learning substrate: discretisation, Q storage, learners."""

from repro.rl.discretize import Binner, StateSpace
from repro.rl.double_q import DoubleQAgent
from repro.rl.exploration import EpsilonGreedy, EpsilonSchedule
from repro.rl.nstep import NStepQAgent
from repro.rl.qlearning import QLearningAgent
from repro.rl.qtable import QTable
from repro.rl.reward import RewardConfig, default_energy_scale
from repro.rl.sarsa import SarsaAgent
from repro.rl.stats import TDErrorStats

__all__ = [
    "Binner",
    "DoubleQAgent",
    "EpsilonGreedy",
    "EpsilonSchedule",
    "NStepQAgent",
    "QLearningAgent",
    "QTable",
    "RewardConfig",
    "SarsaAgent",
    "StateSpace",
    "TDErrorStats",
    "default_energy_scale",
]
