"""Training-introspection accumulators shared by the tabular learners.

Every agent pushes its raw temporal-difference error into a
:class:`TDErrorStats` on each update.  The accumulator is a handful of
float operations per DVFS interval — cheap enough to run
unconditionally — and is what the trainer's per-episode convergence
metrics (mean |TD error|, variance, last error) read out.

Variance is tracked with Welford's online algorithm, and two windows
can be combined exactly with :meth:`TDErrorStats.merge` (the parallel
form of Chan et al.), so a fleet of training jobs can aggregate their
per-episode TD statistics without shipping the raw error streams.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class TDErrorStats:
    """Running statistics over raw (pre-alpha) TD errors.

    Attributes:
        count: Updates recorded since the last :meth:`reset`.
        abs_sum: Sum of ``|td_error|`` (for :attr:`mean_abs`).
        total: Signed sum (bias diagnostic: persistent sign means the
            value estimate is still drifting).
        max_abs: Largest magnitude seen.
        last: The most recent error.
        welford_mean: Welford running mean (variance bookkeeping; use
            :attr:`mean` for the signed mean read-out).
        m2: Welford sum of squared deviations (for :attr:`variance`).
    """

    count: int = 0
    abs_sum: float = 0.0
    total: float = 0.0
    max_abs: float = 0.0
    last: float = 0.0
    welford_mean: float = 0.0
    m2: float = 0.0

    def push(self, td_error: float) -> None:
        """Record one update's TD error."""
        self.count += 1
        magnitude = td_error if td_error >= 0.0 else -td_error
        self.abs_sum += magnitude
        self.total += td_error
        if magnitude > self.max_abs:
            self.max_abs = magnitude
        self.last = td_error
        delta = td_error - self.welford_mean
        self.welford_mean += delta / self.count
        self.m2 += delta * (td_error - self.welford_mean)

    @property
    def mean_abs(self) -> float:
        """Mean ``|TD error|`` — the convergence curve's y-axis."""
        return self.abs_sum / self.count if self.count else 0.0

    @property
    def mean(self) -> float:
        """Mean signed TD error."""
        return self.total / self.count if self.count else 0.0

    @property
    def variance(self) -> float:
        """Population variance of the signed TD errors (0 when empty)."""
        return self.m2 / self.count if self.count else 0.0

    def merge(self, other: "TDErrorStats") -> "TDErrorStats":
        """Combine two windows into a new one (neither input mutates).

        Exact in the statistics: the merged accumulator reports the same
        count/mean/variance as one accumulator fed both error streams
        (Chan et al.'s parallel variance combination).  ``other`` is
        treated as the *later* window, so ``last`` comes from it when it
        recorded anything.
        """
        if self.count == 0:
            return TDErrorStats(**vars(other))
        if other.count == 0:
            return TDErrorStats(**vars(self))
        count = self.count + other.count
        delta = other.welford_mean - self.welford_mean
        welford_mean = (
            self.welford_mean * self.count + other.welford_mean * other.count
        ) / count
        m2 = self.m2 + other.m2 + delta * delta * self.count * other.count / count
        return TDErrorStats(
            count=count,
            abs_sum=self.abs_sum + other.abs_sum,
            total=self.total + other.total,
            max_abs=max(self.max_abs, other.max_abs),
            last=other.last,
            welford_mean=welford_mean,
            m2=m2,
        )

    def reset(self) -> None:
        """Start a fresh window (the trainer calls this per episode)."""
        self.count = 0
        self.abs_sum = 0.0
        self.total = 0.0
        self.max_abs = 0.0
        self.last = 0.0
        self.welford_mean = 0.0
        self.m2 = 0.0

    def snapshot(self) -> dict[str, float]:
        """The statistics as plain data (for metric export)."""
        return {
            "count": float(self.count),
            "mean_abs": self.mean_abs,
            "mean": self.mean,
            "max_abs": self.max_abs,
            "last": self.last,
            "variance": self.variance,
        }
