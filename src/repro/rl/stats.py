"""Training-introspection accumulators shared by the tabular learners.

Every agent pushes its raw temporal-difference error into a
:class:`TDErrorStats` on each update.  The accumulator is a handful of
float operations per DVFS interval — cheap enough to run
unconditionally — and is what the trainer's per-episode convergence
metrics (mean |TD error|, last error) read out.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class TDErrorStats:
    """Running statistics over raw (pre-alpha) TD errors.

    Attributes:
        count: Updates recorded since the last :meth:`reset`.
        abs_sum: Sum of ``|td_error|`` (for :attr:`mean_abs`).
        total: Signed sum (bias diagnostic: persistent sign means the
            value estimate is still drifting).
        max_abs: Largest magnitude seen.
        last: The most recent error.
    """

    count: int = 0
    abs_sum: float = 0.0
    total: float = 0.0
    max_abs: float = 0.0
    last: float = 0.0

    def push(self, td_error: float) -> None:
        """Record one update's TD error."""
        self.count += 1
        magnitude = td_error if td_error >= 0.0 else -td_error
        self.abs_sum += magnitude
        self.total += td_error
        if magnitude > self.max_abs:
            self.max_abs = magnitude
        self.last = td_error

    @property
    def mean_abs(self) -> float:
        """Mean ``|TD error|`` — the convergence curve's y-axis."""
        return self.abs_sum / self.count if self.count else 0.0

    @property
    def mean(self) -> float:
        """Mean signed TD error."""
        return self.total / self.count if self.count else 0.0

    def reset(self) -> None:
        """Start a fresh window (the trainer calls this per episode)."""
        self.count = 0
        self.abs_sum = 0.0
        self.total = 0.0
        self.max_abs = 0.0
        self.last = 0.0

    def snapshot(self) -> dict[str, float]:
        """The statistics as plain data (for metric export)."""
        return {
            "count": float(self.count),
            "mean_abs": self.mean_abs,
            "mean": self.mean,
            "max_abs": self.max_abs,
            "last": self.last,
        }
