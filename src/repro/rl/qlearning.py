"""Q-learning: the off-policy temporal-difference learner the paper uses."""

from __future__ import annotations

import numpy as np

from repro.errors import PolicyError
from repro.rl.exploration import EpsilonGreedy, EpsilonSchedule
from repro.rl.qtable import QTable
from repro.rl.stats import TDErrorStats


class QLearningAgent:
    """Tabular Q-learning with epsilon-greedy behaviour.

    The update is the standard Watkins rule

        Q(s, a) += alpha * (r + gamma * max_a' Q(s', a') - Q(s, a))

    which is exactly what the hardware datapath in :mod:`repro.hw`
    implements in fixed point.

    Args:
        n_states: Flat state count.
        n_actions: Action count.
        alpha: Learning rate in (0, 1].
        gamma: Discount factor in [0, 1).
        epsilon: Exploration schedule (a default decaying schedule when
            omitted).
        seed: Exploration RNG seed.
        initial_q: Q-table fill value.
    """

    def __init__(
        self,
        n_states: int,
        n_actions: int,
        alpha: float = 0.2,
        gamma: float = 0.9,
        epsilon: EpsilonSchedule | None = None,
        seed: int = 0,
        initial_q: float = 0.0,
    ):
        if not 0.0 < alpha <= 1.0:
            raise PolicyError(f"alpha must be in (0, 1]: {alpha}")
        if not 0.0 <= gamma < 1.0:
            raise PolicyError(f"gamma must be in [0, 1): {gamma}")
        self.alpha = alpha
        self.gamma = gamma
        self.table = QTable(n_states, n_actions, initial_value=initial_q)
        self.explorer = EpsilonGreedy(
            epsilon or EpsilonSchedule(), n_actions, seed=seed
        )
        self.updates = 0
        self.td_stats = TDErrorStats()

    @property
    def n_actions(self) -> int:
        return self.table.n_actions

    @property
    def n_states(self) -> int:
        return self.table.n_states

    @property
    def epsilon(self) -> float:
        """The behaviour policy's current exploration probability."""
        return self.explorer.epsilon

    def act(self, state: int) -> int:
        """Epsilon-greedy action for ``state``."""
        return self.explorer.select(self.table.row(state))

    def act_greedy(self, state: int) -> int:
        """Pure-exploitation action (used for evaluation runs)."""
        return self.table.argmax(state)

    def update(self, state: int, action: int, reward: float, next_state: int) -> float:
        """Apply one Q-learning update.

        Returns:
            The temporal-difference error before scaling by alpha.
        """
        q = self.table.get(state, action)
        target = reward + self.gamma * self.table.max(next_state)
        td_error = target - q
        self.table.set(state, action, q + self.alpha * td_error)
        self.updates += 1
        self.td_stats.push(td_error)
        return td_error

    def update_many(
        self,
        states: np.ndarray,
        actions: np.ndarray,
        rewards: np.ndarray,
        next_states: np.ndarray,
    ) -> np.ndarray:
        """Apply a batch of updates, bit-identical to looping
        :meth:`update` over the tuples in order (see
        :meth:`repro.rl.qtable.QTable.td_update_many`).

        Returns:
            The per-update TD errors (before scaling by alpha).
        """
        td = self.table.td_update_many(
            states, actions, rewards, next_states, self.alpha, self.gamma
        )
        self.updates += int(td.size)
        for err in td:
            self.td_stats.push(float(err))
        return td
