"""n-step Q-learning.

One-step TD propagates deadline-miss penalties backwards one interval
per update; with 10 ms intervals a miss caused by a decision 50 ms ago
takes five sweeps to reach it.  n-step returns propagate credit n
intervals at once:

    G = r_t + gamma*r_{t+1} + ... + gamma^{n-1}*r_{t+n-1}
        + gamma^n * max_a Q(s_{t+n}, a)

applied to (s_t, a_t) once the n-step window fills.  Kept as an
extension learner with the same ``act``/``update`` surface as the
one-step agents (the update consumes one transition and internally
manages the window).
"""

from __future__ import annotations

from collections import deque

from repro.errors import PolicyError
from repro.rl.exploration import EpsilonGreedy, EpsilonSchedule
from repro.rl.qtable import QTable
from repro.rl.stats import TDErrorStats


class NStepQAgent:
    """Tabular n-step Q-learning with epsilon-greedy behaviour.

    Args:
        n_states / n_actions / alpha / gamma / epsilon / seed /
        initial_q: As for :class:`repro.rl.qlearning.QLearningAgent`.
        n_steps: Window length (1 reduces exactly to one-step
            Q-learning).
    """

    def __init__(
        self,
        n_states: int,
        n_actions: int,
        alpha: float = 0.2,
        gamma: float = 0.9,
        n_steps: int = 4,
        epsilon: EpsilonSchedule | None = None,
        seed: int = 0,
        initial_q: float = 0.0,
    ):
        if not 0.0 < alpha <= 1.0:
            raise PolicyError(f"alpha must be in (0, 1]: {alpha}")
        if not 0.0 <= gamma < 1.0:
            raise PolicyError(f"gamma must be in [0, 1): {gamma}")
        if n_steps < 1:
            raise PolicyError(f"n_steps must be >= 1: {n_steps}")
        self.alpha = alpha
        self.gamma = gamma
        self.n_steps = n_steps
        self.table = QTable(n_states, n_actions, initial_value=initial_q)
        self.explorer = EpsilonGreedy(
            epsilon or EpsilonSchedule(), n_actions, seed=seed
        )
        # Pending (state, action, reward) transitions awaiting their
        # n-step return.
        self._window: deque[tuple[int, int, float]] = deque()
        self.updates = 0
        self.td_stats = TDErrorStats()

    @property
    def epsilon(self) -> float:
        """The behaviour policy's current exploration probability."""
        return self.explorer.epsilon

    @property
    def n_states(self) -> int:
        return self.table.n_states

    @property
    def n_actions(self) -> int:
        return self.table.n_actions

    def act(self, state: int) -> int:
        """Epsilon-greedy action."""
        return self.explorer.select(self.table.row(state))

    def act_greedy(self, state: int) -> int:
        """Pure-exploitation action."""
        return self.table.argmax(state)

    def update(self, state: int, action: int, reward: float, next_state: int) -> float:
        """Feed one transition; applies the n-step update for the oldest
        pending transition once the window is full.

        Returns:
            The TD error of the update applied this call (0.0 while the
            window is still filling).
        """
        self._window.append((state, action, reward))
        if len(self._window) < self.n_steps:
            return 0.0
        return self._apply(next_state)

    def _apply(self, bootstrap_state: int, terminal: bool = False) -> float:
        g = 0.0
        for k, (_, _, r) in enumerate(self._window):
            g += (self.gamma**k) * r
        # At a true episode end there is no future return to estimate:
        # the terminal state's value is 0 by definition, so the
        # bootstrap term is dropped rather than read from the table
        # (which would let optimistic initial values leak into every
        # end-of-trace update).
        if not terminal:
            g += (self.gamma ** len(self._window)) * self.table.max(
                bootstrap_state
            )
        s0, a0, _ = self._window.popleft()
        q = self.table.get(s0, a0)
        td_error = g - q
        self.table.set(s0, a0, q + self.alpha * td_error)
        self.updates += 1
        self.td_stats.push(td_error)
        return td_error

    def flush(self, final_state: int, terminal: bool = False) -> int:
        """Drain the window at episode end.  Returns the number of
        updates applied.

        Args:
            final_state: The state the episode ended in.
            terminal: ``True`` when the episode genuinely ended there
                (the remaining updates use pure truncated returns, no
                bootstrap); ``False`` (default) when the episode was
                merely cut off by the horizon and the value of
                ``final_state`` still estimates the continuation.
        """
        applied = 0
        while self._window:
            self._apply(final_state, terminal=terminal)
            applied += 1
        return applied

    def reset_window(self) -> None:
        """Drop pending transitions without updating (episode abort)."""
        self._window.clear()
