"""Exploration schedules and action selection."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import PolicyError


@dataclass(frozen=True)
class EpsilonSchedule:
    """Exponentially decaying epsilon with a floor.

    ``epsilon(t) = max(floor, start * decay**t)`` where ``t`` counts
    decisions.  ``decay=1.0`` gives a constant schedule.

    Attributes:
        start: Initial exploration probability in [0, 1].
        decay: Per-decision multiplicative decay in (0, 1].
        floor: Lower bound on epsilon (keeps the online policy adaptive
            forever, the paper's "adapt to the variations" requirement).
    """

    start: float = 0.5
    decay: float = 0.999
    floor: float = 0.02

    def __post_init__(self) -> None:
        if not 0.0 <= self.start <= 1.0:
            raise PolicyError(f"epsilon start must be in [0, 1]: {self.start}")
        if not 0.0 < self.decay <= 1.0:
            raise PolicyError(f"epsilon decay must be in (0, 1]: {self.decay}")
        if not 0.0 <= self.floor <= self.start:
            raise PolicyError(
                f"epsilon floor must be in [0, start={self.start}]: {self.floor}"
            )

    def value(self, step: int) -> float:
        """Epsilon after ``step`` decisions."""
        if step < 0:
            raise PolicyError(f"step must be non-negative: {step}")
        return max(self.floor, self.start * self.decay**step)

    def values(self, steps: "np.ndarray | list[int]") -> np.ndarray:
        """Epsilon for a whole array of decision counters at once.

        Bit-equal to mapping :meth:`value` over ``steps`` element for
        element — deliberately computed with the scalar ``**`` per
        element, because :func:`numpy.power`'s vectorised pow rounds
        differently from the platform ``pow`` by an occasional ulp, and
        a one-ulp epsilon shift can flip an explore/exploit draw.  That
        exactness is what lets the lock-step trainer precompute a
        rollout's entire epsilon trajectory without perturbing its draw
        sequence.

        Raises:
            PolicyError: If any step is negative.
        """
        index = np.asarray(steps)
        if index.size and int(index.min()) < 0:
            raise PolicyError(f"steps must be non-negative: {index.min()}")
        return np.array(
            [max(self.floor, self.start * self.decay ** int(s))
             for s in index.ravel()]
        ).reshape(index.shape)


class EpsilonGreedy:
    """Stateful epsilon-greedy selector over a Q-table row.

    Args:
        schedule: The epsilon schedule.
        n_actions: Size of the action set.
        seed: RNG seed for reproducible exploration.
    """

    def __init__(self, schedule: EpsilonSchedule, n_actions: int, seed: int = 0):
        if n_actions < 1:
            raise PolicyError(f"need at least one action: {n_actions}")
        self.schedule = schedule
        self.n_actions = n_actions
        self._rng = np.random.default_rng(seed)
        self._step = 0

    @property
    def step(self) -> int:
        """Number of decisions taken so far."""
        return self._step

    @property
    def epsilon(self) -> float:
        """Current exploration probability."""
        return self.schedule.value(self._step)

    def select(self, q_row: np.ndarray) -> int:
        """Pick an action for the given Q-row and advance the schedule.

        Raises:
            PolicyError: If the row length does not match ``n_actions``.
        """
        if len(q_row) != self.n_actions:
            raise PolicyError(
                f"Q-row has {len(q_row)} entries, expected {self.n_actions}"
            )
        eps = self.epsilon
        self._step += 1
        if self._rng.random() < eps:
            return int(self._rng.integers(self.n_actions))
        return int(np.argmax(q_row))

    def plan_draws(
        self, n_steps: int
    ) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
        """Pre-consume the next ``n_steps`` decisions' random draws.

        Replays the exact draw sequence of ``n_steps`` successive
        :meth:`select` calls — a greedy step consumes one uniform draw,
        an explore step consumes that draw plus one ``integers`` draw —
        leaving the generator and the schedule counter in the precise
        state ``n_steps`` serial selections would have left them.  The
        caller (the lock-step batch trainer) then only needs the Q-row
        argmax for the steps where ``explore`` is False.

        Returns:
            ``(explore, random_actions, epsilons)`` — a boolean mask of
            explore steps, the pre-drawn random action per step (only
            meaningful where ``explore`` is True; 0 elsewhere), and the
            epsilon used at each step.

        Raises:
            PolicyError: If ``n_steps`` is negative.
        """
        if n_steps < 0:
            raise PolicyError(f"n_steps must be non-negative: {n_steps}")
        epsilons = self.schedule.values(
            np.arange(self._step, self._step + n_steps)
        )
        explore = np.zeros(n_steps, dtype=bool)
        random_actions = np.zeros(n_steps, dtype=np.intp)
        for t in range(n_steps):
            if self._rng.random() < epsilons[t]:
                explore[t] = True
                random_actions[t] = int(self._rng.integers(self.n_actions))
        self._step += n_steps
        return explore, random_actions, epsilons

    def reset(self, *, keep_schedule: bool = False) -> None:
        """Reset the decision counter (and thus epsilon) back to the
        schedule start.

        Pass ``keep_schedule=True`` to preserve the schedule position
        across episodes (a no-op on the counter), which is how the
        online policies keep exploration decaying over a device's whole
        lifetime rather than restarting every trace — they simply never
        call ``reset``.  The former default silently kept the schedule,
        contradicting this docstring; a bare ``reset()`` now does what
        it says.
        """
        if not keep_schedule:
            self._step = 0
