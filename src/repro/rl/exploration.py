"""Exploration schedules and action selection."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import PolicyError


@dataclass(frozen=True)
class EpsilonSchedule:
    """Exponentially decaying epsilon with a floor.

    ``epsilon(t) = max(floor, start * decay**t)`` where ``t`` counts
    decisions.  ``decay=1.0`` gives a constant schedule.

    Attributes:
        start: Initial exploration probability in [0, 1].
        decay: Per-decision multiplicative decay in (0, 1].
        floor: Lower bound on epsilon (keeps the online policy adaptive
            forever, the paper's "adapt to the variations" requirement).
    """

    start: float = 0.5
    decay: float = 0.999
    floor: float = 0.02

    def __post_init__(self) -> None:
        if not 0.0 <= self.start <= 1.0:
            raise PolicyError(f"epsilon start must be in [0, 1]: {self.start}")
        if not 0.0 < self.decay <= 1.0:
            raise PolicyError(f"epsilon decay must be in (0, 1]: {self.decay}")
        if not 0.0 <= self.floor <= self.start:
            raise PolicyError(
                f"epsilon floor must be in [0, start={self.start}]: {self.floor}"
            )

    def value(self, step: int) -> float:
        """Epsilon after ``step`` decisions."""
        if step < 0:
            raise PolicyError(f"step must be non-negative: {step}")
        return max(self.floor, self.start * self.decay**step)


class EpsilonGreedy:
    """Stateful epsilon-greedy selector over a Q-table row.

    Args:
        schedule: The epsilon schedule.
        n_actions: Size of the action set.
        seed: RNG seed for reproducible exploration.
    """

    def __init__(self, schedule: EpsilonSchedule, n_actions: int, seed: int = 0):
        if n_actions < 1:
            raise PolicyError(f"need at least one action: {n_actions}")
        self.schedule = schedule
        self.n_actions = n_actions
        self._rng = np.random.default_rng(seed)
        self._step = 0

    @property
    def step(self) -> int:
        """Number of decisions taken so far."""
        return self._step

    @property
    def epsilon(self) -> float:
        """Current exploration probability."""
        return self.schedule.value(self._step)

    def select(self, q_row: np.ndarray) -> int:
        """Pick an action for the given Q-row and advance the schedule.

        Raises:
            PolicyError: If the row length does not match ``n_actions``.
        """
        if len(q_row) != self.n_actions:
            raise PolicyError(
                f"Q-row has {len(q_row)} entries, expected {self.n_actions}"
            )
        eps = self.epsilon
        self._step += 1
        if self._rng.random() < eps:
            return int(self._rng.integers(self.n_actions))
        return int(np.argmax(q_row))

    def reset(self, *, keep_schedule: bool = False) -> None:
        """Reset the decision counter (and thus epsilon) back to the
        schedule start.

        Pass ``keep_schedule=True`` to preserve the schedule position
        across episodes (a no-op on the counter), which is how the
        online policies keep exploration decaying over a device's whole
        lifetime rather than restarting every trace — they simply never
        call ``reset``.  The former default silently kept the schedule,
        contradicting this docstring; a bare ``reset()`` now does what
        it says.
        """
        if not keep_schedule:
            self._step = 0
