"""SARSA: the on-policy TD learner, kept as an ablation (A3).

SARSA bootstraps from the action the behaviour policy *actually* takes
instead of the greedy one; with the same exploration it is typically
slightly more conservative near QoS cliffs.
"""

from __future__ import annotations

from repro.errors import PolicyError
from repro.rl.exploration import EpsilonGreedy, EpsilonSchedule
from repro.rl.qtable import QTable
from repro.rl.stats import TDErrorStats


class SarsaAgent:
    """Tabular SARSA with epsilon-greedy behaviour.

    Update rule: ``Q(s,a) += alpha * (r + gamma * Q(s', a') - Q(s,a))``
    where ``a'`` is the action the agent will take in ``s'``.

    Args mirror :class:`repro.rl.qlearning.QLearningAgent`.
    """

    def __init__(
        self,
        n_states: int,
        n_actions: int,
        alpha: float = 0.2,
        gamma: float = 0.9,
        epsilon: EpsilonSchedule | None = None,
        seed: int = 0,
        initial_q: float = 0.0,
    ):
        if not 0.0 < alpha <= 1.0:
            raise PolicyError(f"alpha must be in (0, 1]: {alpha}")
        if not 0.0 <= gamma < 1.0:
            raise PolicyError(f"gamma must be in [0, 1): {gamma}")
        self.alpha = alpha
        self.gamma = gamma
        self.table = QTable(n_states, n_actions, initial_value=initial_q)
        self.explorer = EpsilonGreedy(
            epsilon or EpsilonSchedule(), n_actions, seed=seed
        )
        self.updates = 0
        self.td_stats = TDErrorStats()

    @property
    def n_actions(self) -> int:
        return self.table.n_actions

    @property
    def n_states(self) -> int:
        return self.table.n_states

    @property
    def epsilon(self) -> float:
        """The behaviour policy's current exploration probability."""
        return self.explorer.epsilon

    def act(self, state: int) -> int:
        """Epsilon-greedy action for ``state``."""
        return self.explorer.select(self.table.row(state))

    def act_greedy(self, state: int) -> int:
        """Pure-exploitation action."""
        return self.table.argmax(state)

    def update(
        self, state: int, action: int, reward: float, next_state: int, next_action: int
    ) -> float:
        """Apply one SARSA update given the successor state *and action*.

        Returns:
            The temporal-difference error before scaling by alpha.
        """
        q = self.table.get(state, action)
        target = reward + self.gamma * self.table.get(next_state, next_action)
        td_error = target - q
        self.table.set(state, action, q + self.alpha * td_error)
        self.updates += 1
        self.td_stats.push(td_error)
        return td_error
