"""Double Q-learning (van Hasselt, NeurIPS 2010).

Vanilla Q-learning's max operator overestimates action values under
noisy rewards — and DVFS rewards are noisy (per-interval energy and
miss counts fluctuate).  Double Q-learning keeps two tables and
decorrelates selection from evaluation:

    with p=0.5:  Q_a(s,u) += alpha * (r + gamma * Q_b(s', argmax Q_a(s')) - Q_a(s,u))
    else:        Q_b(s,u) += alpha * (r + gamma * Q_a(s', argmax Q_b(s')) - Q_b(s,u))

Action selection uses the sum of the two tables.  Included as an
extension/ablation beyond the paper's learner.
"""

from __future__ import annotations

import numpy as np

from repro.errors import PolicyError
from repro.rl.exploration import EpsilonGreedy, EpsilonSchedule
from repro.rl.qtable import QTable
from repro.rl.stats import TDErrorStats


class DoubleQAgent:
    """Tabular double Q-learning with epsilon-greedy behaviour.

    Args mirror :class:`repro.rl.qlearning.QLearningAgent`; the extra
    RNG (seeded from ``seed``) picks which table each update writes.
    """

    def __init__(
        self,
        n_states: int,
        n_actions: int,
        alpha: float = 0.2,
        gamma: float = 0.9,
        epsilon: EpsilonSchedule | None = None,
        seed: int = 0,
        initial_q: float = 0.0,
    ):
        if not 0.0 < alpha <= 1.0:
            raise PolicyError(f"alpha must be in (0, 1]: {alpha}")
        if not 0.0 <= gamma < 1.0:
            raise PolicyError(f"gamma must be in [0, 1): {gamma}")
        self.alpha = alpha
        self.gamma = gamma
        self.table_a = QTable(n_states, n_actions, initial_value=initial_q)
        self.table_b = QTable(n_states, n_actions, initial_value=initial_q)
        self.explorer = EpsilonGreedy(
            epsilon or EpsilonSchedule(), n_actions, seed=seed
        )
        self._coin = np.random.default_rng(seed + 0x5EED)
        self.updates = 0
        self.td_stats = TDErrorStats()
        self._combined = QTable(
            n_states, n_actions, initial_value=2.0 * initial_q
        )

    @property
    def n_states(self) -> int:
        return self.table_a.n_states

    @property
    def n_actions(self) -> int:
        return self.table_a.n_actions

    @property
    def epsilon(self) -> float:
        """The behaviour policy's current exploration probability."""
        return self.explorer.epsilon

    @property
    def table(self) -> QTable:
        """The combined (summed) table — what decisions are made from.

        Exposed under the same name as the single-table agents so the
        policy wrapper and coverage introspection work unchanged.  The
        combined table's ``initial_value`` is the *sum* of the halves'
        (a fresh optimistic-init agent therefore reports 0.0 coverage,
        not 1.0), and the backing buffer is cached — hot introspection
        loops refresh it in place instead of re-allocating.
        """
        np.add(self.table_a.values, self.table_b.values,
               out=self._combined.values)
        return self._combined

    def _combined_row(self, state: int) -> np.ndarray:
        return self.table_a.row(state) + self.table_b.row(state)

    def act(self, state: int) -> int:
        """Epsilon-greedy action from the summed tables."""
        return self.explorer.select(self._combined_row(state))

    def act_greedy(self, state: int) -> int:
        """Greedy action from the summed tables (lowest index on ties)."""
        return int(np.argmax(self._combined_row(state)))

    def update(self, state: int, action: int, reward: float, next_state: int) -> float:
        """One double-Q update; a fair coin picks the table to write.

        Returns:
            The temporal-difference error before scaling by alpha.
        """
        if self._coin.random() < 0.5:
            writer, evaluator = self.table_a, self.table_b
        else:
            writer, evaluator = self.table_b, self.table_a
        best_next = writer.argmax(next_state)
        target = reward + self.gamma * evaluator.get(next_state, best_next)
        q = writer.get(state, action)
        td_error = target - q
        writer.set(state, action, q + self.alpha * td_error)
        self.updates += 1
        self.td_stats.push(td_error)
        return td_error
