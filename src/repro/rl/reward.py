"""Reward shaping for the power-management agent.

The paper's objective is energy per unit QoS "without compromising the
user satisfaction": spend as little energy as possible subject to
deadlines being met.  The interval reward is

    r = -(E_interval / E_scale) - lambda_qos * qos_penalty

where ``E_scale`` normalises cluster energy to roughly [0, 1] per
interval and the QoS penalty combines realised deadline misses with the
urgency of the pending queue (so the agent is punished *before* the
miss actually lands — the predictive part).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PolicyError
from repro.sim.telemetry import ClusterObservation


@dataclass(frozen=True)
class RewardConfig:
    """Parameters of the interval reward.

    Attributes:
        energy_scale_j: Energy that maps to one unit of penalty; a good
            choice is the cluster's top-OPP full-load interval energy.
        lambda_qos: Weight of the QoS penalty against normalised energy.
            Larger values buy QoS with energy; swept by ablation A2.
        slack_threshold: Queue slack below which urgency starts being
            penalised (anticipatory term).
        miss_penalty: Penalty per realised deadline miss in the interval.
    """

    energy_scale_j: float
    lambda_qos: float = 4.0
    slack_threshold: float = 0.5
    miss_penalty: float = 1.0

    def __post_init__(self) -> None:
        if self.energy_scale_j <= 0:
            raise PolicyError(f"energy scale must be positive: {self.energy_scale_j}")
        if self.lambda_qos < 0:
            raise PolicyError(f"lambda_qos must be non-negative: {self.lambda_qos}")
        if not 0.0 <= self.slack_threshold <= 1.0:
            raise PolicyError(
                f"slack threshold must be in [0, 1]: {self.slack_threshold}"
            )
        if self.miss_penalty < 0:
            raise PolicyError(f"miss penalty must be non-negative: {self.miss_penalty}")

    def compute(self, obs: ClusterObservation) -> float:
        """The reward earned over the observed interval."""
        energy_term = obs.energy_j / self.energy_scale_j
        urgency = 0.0
        if obs.qos_slack < self.slack_threshold:
            urgency = (self.slack_threshold - obs.qos_slack) / self.slack_threshold
        qos_term = self.miss_penalty * obs.deadline_misses + urgency
        return -energy_term - self.lambda_qos * qos_term


def default_energy_scale(
    ceff_f: float, voltage_v: float, freq_hz: float, n_cores: int, interval_s: float
) -> float:
    """Top-OPP full-load interval energy — the natural reward normaliser.

    Args:
        ceff_f: Core effective capacitance.
        voltage_v: Top-OPP voltage.
        freq_hz: Top-OPP frequency.
        n_cores: Cores in the cluster.
        interval_s: Decision interval.
    """
    if min(ceff_f, voltage_v, freq_hz, interval_s) <= 0 or n_cores < 1:
        raise PolicyError("energy scale parameters must be positive")
    return ceff_f * voltage_v * voltage_v * freq_hz * n_cores * interval_s
