"""Dense tabular Q storage."""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.errors import PolicyError


class QTable:
    """A dense (n_states x n_actions) table of action values.

    Ties in :meth:`argmax` break toward the *lowest* action index, which
    keeps decisions deterministic and matches the hardware comparator
    tree's priority order, so software and hardware agree bit-for-bit on
    fresh (all-zero) rows.

    Args:
        n_states: Number of flat states.
        n_actions: Number of actions.
        initial_value: Fill value; optimistic initialisation (> 0 with
            negative rewards) encourages early exploration.
    """

    def __init__(self, n_states: int, n_actions: int, initial_value: float = 0.0):
        if n_states < 1 or n_actions < 1:
            raise PolicyError(
                f"Q-table needs positive dimensions: {n_states}x{n_actions}"
            )
        self.initial_value = float(initial_value)
        self.values = np.full((n_states, n_actions), self.initial_value)

    @property
    def n_states(self) -> int:
        return self.values.shape[0]

    @property
    def n_actions(self) -> int:
        return self.values.shape[1]

    def _check(self, state: int, action: int | None = None) -> None:
        if not 0 <= state < self.n_states:
            raise PolicyError(f"state {state} out of range [0, {self.n_states})")
        if action is not None and not 0 <= action < self.n_actions:
            raise PolicyError(f"action {action} out of range [0, {self.n_actions})")

    def get(self, state: int, action: int) -> float:
        """The Q-value of one (state, action) entry."""
        self._check(state, action)
        return float(self.values[state, action])

    def set(self, state: int, action: int, value: float) -> None:
        """Overwrite one (state, action) entry."""
        self._check(state, action)
        self.values[state, action] = value

    def row(self, state: int) -> np.ndarray:
        """A copy of the Q-row for ``state``."""
        self._check(state)
        return self.values[state].copy()

    def rows(self, states: "np.ndarray | list[int]") -> np.ndarray:
        """A copied ``(len(states), n_actions)`` block of Q-rows.

        The batched counterpart of :meth:`row` — one fancy-indexed read
        instead of a Python loop, for vectorised rollout evaluation and
        batch policy export.  States may repeat and appear in any order.

        Raises:
            PolicyError: If any state is out of range.
        """
        index = np.asarray(states, dtype=np.intp)
        if index.ndim != 1:
            raise PolicyError(f"states must be one-dimensional: {index.shape}")
        if index.size and (
            int(index.min()) < 0 or int(index.max()) >= self.n_states
        ):
            raise PolicyError(
                f"state out of range [0, {self.n_states}): "
                f"{index.min()}..{index.max()}"
            )
        return self.values[index].copy()

    def argmax(self, state: int) -> int:
        """Greedy action for ``state`` (lowest index wins ties)."""
        self._check(state)
        return int(np.argmax(self.values[state]))

    def argmax_many(self, states: "np.ndarray | list[int]") -> np.ndarray:
        """Greedy actions for a batch of states (lowest index wins ties,
        matching :meth:`argmax` element for element)."""
        return np.argmax(self.rows(states), axis=1)

    def max(self, state: int) -> float:
        """The greedy action's value for ``state``."""
        self._check(state)
        return float(self.values[state].max())

    def visited_fraction(self) -> float:
        """Fraction of entries that have moved off the construction-time
        initial value — a rough learning-coverage diagnostic."""
        return float(np.mean(self.values != self.initial_value))

    # -- persistence -----------------------------------------------------

    def save(self, path: str | Path) -> None:
        """Serialise to ``.npz``."""
        np.savez_compressed(Path(path), values=self.values)

    @classmethod
    def load(cls, path: str | Path) -> "QTable":
        """Load a table saved by :meth:`save`.

        Raises:
            PolicyError: If the file is missing the expected array.
        """
        with np.load(Path(path)) as data:
            if "values" not in data:
                raise PolicyError(f"{path} is not a saved Q-table")
            values = data["values"]
        if values.ndim != 2:
            raise PolicyError(f"saved Q-table has bad shape {values.shape}")
        table = cls(values.shape[0], values.shape[1])
        table.values = values.astype(float)
        return table
