"""Dense tabular Q storage."""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.errors import PolicyError


class QTable:
    """A dense (n_states x n_actions) table of action values.

    Ties in :meth:`argmax` break toward the *lowest* action index, which
    keeps decisions deterministic and matches the hardware comparator
    tree's priority order, so software and hardware agree bit-for-bit on
    fresh (all-zero) rows.

    Args:
        n_states: Number of flat states.
        n_actions: Number of actions.
        initial_value: Fill value; optimistic initialisation (> 0 with
            negative rewards) encourages early exploration.
    """

    def __init__(self, n_states: int, n_actions: int, initial_value: float = 0.0):
        if n_states < 1 or n_actions < 1:
            raise PolicyError(
                f"Q-table needs positive dimensions: {n_states}x{n_actions}"
            )
        self.initial_value = float(initial_value)
        self.values = np.full((n_states, n_actions), self.initial_value)

    @property
    def n_states(self) -> int:
        return self.values.shape[0]

    @property
    def n_actions(self) -> int:
        return self.values.shape[1]

    def _check(self, state: int, action: int | None = None) -> None:
        if not 0 <= state < self.n_states:
            raise PolicyError(f"state {state} out of range [0, {self.n_states})")
        if action is not None and not 0 <= action < self.n_actions:
            raise PolicyError(f"action {action} out of range [0, {self.n_actions})")

    def get(self, state: int, action: int) -> float:
        """The Q-value of one (state, action) entry."""
        self._check(state, action)
        return float(self.values[state, action])

    def set(self, state: int, action: int, value: float) -> None:
        """Overwrite one (state, action) entry."""
        self._check(state, action)
        self.values[state, action] = value

    def row(self, state: int) -> np.ndarray:
        """A copy of the Q-row for ``state``."""
        self._check(state)
        return self.values[state].copy()

    def rows(self, states: "np.ndarray | list[int]") -> np.ndarray:
        """A copied ``(len(states), n_actions)`` block of Q-rows.

        The batched counterpart of :meth:`row` — one fancy-indexed read
        instead of a Python loop, for vectorised rollout evaluation and
        batch policy export.  States may repeat and appear in any order.

        Raises:
            PolicyError: If any state is out of range.
        """
        index = np.asarray(states, dtype=np.intp)
        if index.ndim != 1:
            raise PolicyError(f"states must be one-dimensional: {index.shape}")
        if index.size and (
            int(index.min()) < 0 or int(index.max()) >= self.n_states
        ):
            raise PolicyError(
                f"state out of range [0, {self.n_states}): "
                f"{index.min()}..{index.max()}"
            )
        return self.values[index].copy()

    def argmax(self, state: int) -> int:
        """Greedy action for ``state`` (lowest index wins ties)."""
        self._check(state)
        return int(np.argmax(self.values[state]))

    def argmax_many(self, states: "np.ndarray | list[int]") -> np.ndarray:
        """Greedy actions for a batch of states (lowest index wins ties,
        matching :meth:`argmax` element for element)."""
        return np.argmax(self.rows(states), axis=1)

    def max(self, state: int) -> float:
        """The greedy action's value for ``state``."""
        self._check(state)
        return float(self.values[state].max())

    def td_update_many(
        self,
        states: np.ndarray,
        actions: np.ndarray,
        rewards: np.ndarray,
        next_states: np.ndarray,
        alpha: "float | np.ndarray",
        gamma: "float | np.ndarray",
        assume_distinct: bool = False,
    ) -> np.ndarray:
        """Apply a batch of Q-learning updates in serial-equivalent order.

        Semantically identical to looping
        :meth:`repro.rl.qlearning.QLearningAgent.update` over the i-th
        ``(state, action, reward, next_state)`` tuples in order — every
        resulting table entry and every returned TD error is bit-equal
        to the serial loop's.  ``alpha``/``gamma`` may be scalars or
        per-update arrays (the lock-step trainer passes per-rollout
        hyperparameters).

        The batch is split greedily into *segments* of updates whose
        read rows (``next_states``) and written rows (``states``) do not
        collide with a row already written earlier in the same segment;
        within a segment all updates are independent, so one vectorised
        gather/scatter reproduces the serial order exactly.  Disjoint
        rows — e.g. N rollouts living in disjoint row blocks of one
        population table — collapse to a single segment.

        ``assume_distinct=True`` promises that property up front —
        written rows all distinct, and no update reading a row another
        update writes — and skips the per-call collision scan (which
        otherwise dominates small-batch hot loops).  The caller owns the
        promise; a violated one silently reorders updates.

        Returns:
            The per-update TD errors (before scaling by alpha).

        Raises:
            PolicyError: On shape mismatch or out-of-range indices.
        """
        s = np.asarray(states, dtype=np.intp)
        a = np.asarray(actions, dtype=np.intp)
        r = np.asarray(rewards, dtype=float)
        ns = np.asarray(next_states, dtype=np.intp)
        if not (s.shape == a.shape == r.shape == ns.shape) or s.ndim != 1:
            raise PolicyError(
                "td_update_many needs matching 1-D arrays: "
                f"{s.shape}/{a.shape}/{r.shape}/{ns.shape}"
            )
        n = s.size
        al = np.broadcast_to(np.asarray(alpha, dtype=float), (n,))
        ga = np.broadcast_to(np.asarray(gamma, dtype=float), (n,))
        if n == 0:
            return np.empty(0)
        if (
            int(s.min()) < 0 or int(s.max()) >= self.n_states
            or int(ns.min()) < 0 or int(ns.max()) >= self.n_states
        ):
            raise PolicyError(f"state out of range [0, {self.n_states})")
        if int(a.min()) < 0 or int(a.max()) >= self.n_actions:
            raise PolicyError(f"action out of range [0, {self.n_actions})")

        # Fast path: every written row is distinct and no update reads a
        # row a *different* update writes — the whole batch is one
        # segment (the lock-step trainer's disjoint-row-block case).
        if assume_distinct or (
            np.unique(s).size == n
            and not np.any(np.isin(ns, s) & (ns != s))
        ):
            q = self.values[s, a]
            nmax = self.values[ns].max(axis=1)
            target = r + ga * nmax
            err = target - q
            self.values[s, a] = q + al * err
            return err

        td = np.empty(n)
        written: set[int] = set()
        start = 0
        for i in range(n + 1):
            boundary = i == n
            if not boundary:
                si, nsi = int(s[i]), int(ns[i])
                if si in written or nsi in written:
                    boundary = True
            if boundary:
                if i > start:
                    seg = slice(start, i)
                    q = self.values[s[seg], a[seg]]
                    nmax = self.values[ns[seg]].max(axis=1)
                    target = r[seg] + ga[seg] * nmax
                    err = target - q
                    self.values[s[seg], a[seg]] = q + al[seg] * err
                    td[seg] = err
                if i == n:
                    break
                written.clear()
                start = i
                si, nsi = int(s[i]), int(ns[i])
            written.add(si)
        return td

    def visited_fraction(self) -> float:
        """Fraction of entries that have moved off the construction-time
        initial value — a rough learning-coverage diagnostic."""
        return float(np.mean(self.values != self.initial_value))

    # -- persistence -----------------------------------------------------

    def save(self, path: str | Path) -> None:
        """Serialise to ``.npz`` (values plus ``initial_value``, so
        :meth:`visited_fraction` survives the round-trip)."""
        np.savez_compressed(
            Path(path),
            values=self.values,
            initial_value=np.float64(self.initial_value),
        )

    @classmethod
    def load(cls, path: str | Path) -> "QTable":
        """Load a table saved by :meth:`save`.

        Checkpoints written before ``initial_value`` was persisted lack
        the key; they load with the old implicit 0.0.

        Raises:
            PolicyError: If the file is missing the expected array.
        """
        with np.load(Path(path)) as data:
            if "values" not in data:
                raise PolicyError(f"{path} is not a saved Q-table")
            values = data["values"]
            initial = float(data["initial_value"]) if "initial_value" in data else 0.0
        if values.ndim != 2:
            raise PolicyError(f"saved Q-table has bad shape {values.shape}")
        table = cls(values.shape[0], values.shape[1], initial_value=initial)
        table.values = values.astype(float)
        return table
