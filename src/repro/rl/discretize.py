"""State discretisation for tabular RL.

A :class:`Binner` maps a continuous signal into a bin index; a
:class:`StateSpace` composes several binners (plus already-discrete
dimensions) into a single flat state index — the row address of the
Q-table, in software and in the hardware datapath alike.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Sequence

from repro.errors import PolicyError


@dataclass(frozen=True)
class Binner:
    """Maps a scalar to one of ``len(edges) + 1`` bins.

    Edges are the *interior* boundaries: a value ``v`` lands in bin
    ``i`` when ``edges[i-1] <= v < edges[i]`` (bin 0 is below the first
    edge, the last bin is at-or-above the last edge).

    Attributes:
        edges: Strictly increasing interior boundaries.
    """

    edges: tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.edges:
            raise PolicyError("binner needs at least one edge")
        for a, b in zip(self.edges, self.edges[1:]):
            if b <= a:
                raise PolicyError(f"bin edges must be strictly increasing: {self.edges}")

    @property
    def n_bins(self) -> int:
        return len(self.edges) + 1

    def bin(self, value: float) -> int:
        """The bin index of ``value``; NaN raises."""
        if value != value:  # NaN
            raise PolicyError("cannot bin NaN")
        return bisect_right(self.edges, value)

    @classmethod
    def uniform(cls, lo: float, hi: float, n_bins: int) -> "Binner":
        """Equal-width bins over [lo, hi] (values outside clamp to the
        outer bins)."""
        if n_bins < 2:
            raise PolicyError(f"need at least 2 bins: {n_bins}")
        if hi <= lo:
            raise PolicyError(f"need hi > lo: [{lo}, {hi}]")
        width = (hi - lo) / n_bins
        return cls(tuple(lo + width * i for i in range(1, n_bins)))


class StateSpace:
    """A mixed-radix encoding of several discrete dimensions.

    Args:
        dims: ``(name, size)`` pairs, most-significant first.  The flat
            index is the mixed-radix number with these digit sizes; both
            the software policy and the fixed-point hardware datapath
            compute the identical address.
    """

    def __init__(self, dims: Sequence[tuple[str, int]]):
        if not dims:
            raise PolicyError("state space needs at least one dimension")
        names = [n for n, _ in dims]
        if len(set(names)) != len(names):
            raise PolicyError(f"duplicate state dimension names: {names}")
        for name, size in dims:
            if size < 1:
                raise PolicyError(f"dimension {name!r} needs size >= 1: {size}")
        self.dims = tuple((n, s) for n, s in dims)

    @property
    def n_states(self) -> int:
        """Total number of flat states (product of dimension sizes)."""
        total = 1
        for _, size in self.dims:
            total *= size
        return total

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(n for n, _ in self.dims)

    def encode(self, digits: Sequence[int]) -> int:
        """Flat index of a digit vector.

        Raises:
            PolicyError: On wrong arity or out-of-range digits.
        """
        if len(digits) != len(self.dims):
            raise PolicyError(
                f"expected {len(self.dims)} digits, got {len(digits)}"
            )
        index = 0
        for digit, (name, size) in zip(digits, self.dims):
            if not 0 <= digit < size:
                raise PolicyError(
                    f"digit {digit} out of range for dimension {name!r} (size {size})"
                )
            index = index * size + digit
        return index

    def decode(self, index: int) -> tuple[int, ...]:
        """Digit vector of a flat index (inverse of :meth:`encode`)."""
        if not 0 <= index < self.n_states:
            raise PolicyError(f"state index {index} out of range [0, {self.n_states})")
        digits: list[int] = []
        for _, size in reversed(self.dims):
            digits.append(index % size)
            index //= size
        return tuple(reversed(digits))
