"""The append-only performance ledger: one JSONL line per run record.

A :class:`RunRecord` is the durable trace of one measured execution —
``repro run`` / ``compare`` / ``fleet`` invocations and every benchmark
append one (or one per grid row) through :func:`record_run`, the single
blessed writer (lint rule RPL501 flags ad-hoc ledger writes).  Records
carry the run id, git SHA, wall-clock timestamp, the identity config
(scenario/governor/seed/chip/...), and a flat metric dict, so the
regression engine in :mod:`repro.perf.regress` can reduce repeated
samples per ``(config key, metric)`` and test the trajectory across
commits.  Cache-aware fleets (``repro fleet --cache``) fold run-cache
effectiveness into the same stream: the grid summary record carries
``cache_hits``/``cache_misses``, and per-job ``cache.*`` counters from
the observability registry flow through
:func:`metrics_from_snapshot` like any other counter.

The ledger lives at ``.repro/perf-ledger.jsonl`` by default; override
with the ``REPRO_PERF_LEDGER`` environment variable or an explicit
path.  Appends are line-atomic (one ``write`` per record), and readers
skip blank lines, so concurrent benches interleave safely.
"""

from __future__ import annotations

import json
import os
import subprocess
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Mapping

from repro.errors import PerfError
from repro.obs.metrics import histogram_quantile

DEFAULT_LEDGER_PATH = ".repro/perf-ledger.jsonl"
"""Default ledger location, relative to the working directory."""

LEDGER_ENV_VAR = "REPRO_PERF_LEDGER"
"""Environment variable overriding the default ledger path."""

LEDGER_SCHEMA_VERSION = 1
"""Bumped when the record shape changes incompatibly."""

#: Histogram quantiles flattened into ledger metrics.
SNAPSHOT_QUANTILES = (0.5, 0.95, 0.99)


@dataclass(frozen=True)
class RunRecord:
    """One measured execution in the ledger.

    Attributes:
        run_id: Identifier shared by all records of one invocation
            (e.g. every governor row of one ``repro compare``).
        kind: Producer family — ``"run"``, ``"compare"``, ``"fleet"``,
            or ``"bench"``.
        name: What was measured (scenario or bench id).
        config: Identity of the measurement — scenario, governor, seed,
            chip, durations.  Two records with equal :meth:`key` are
            repeated samples of the same quantity.
        metrics: Flat metric-name → value mapping.
        git_sha: Abbreviated commit of the working tree ("unknown"
            outside a git checkout).
        timestamp_s: Unix wall-clock seconds at record time.
        schema: Ledger schema version.
    """

    run_id: str
    kind: str
    name: str
    config: dict[str, Any] = field(default_factory=dict)
    metrics: dict[str, float] = field(default_factory=dict)
    git_sha: str = "unknown"
    timestamp_s: float = 0.0
    schema: int = LEDGER_SCHEMA_VERSION

    def key(self) -> str:
        """The sample-grouping identity: kind, name, and sorted config.

        Records sharing a key are repeated measurements of the same
        configuration; the regression engine compares per key.
        """
        parts = [self.kind, self.name]
        parts += [f"{k}={self.config[k]}" for k in sorted(self.config)]
        return ":".join(parts)

    def to_mapping(self) -> dict[str, Any]:
        """The JSON line payload."""
        return {
            "schema": self.schema,
            "run_id": self.run_id,
            "kind": self.kind,
            "name": self.name,
            "git_sha": self.git_sha,
            "timestamp_s": self.timestamp_s,
            "config": dict(self.config),
            "metrics": dict(self.metrics),
        }

    @classmethod
    def from_mapping(cls, data: Mapping[str, Any]) -> "RunRecord":
        """Rebuild a record from a parsed ledger line.

        Raises:
            PerfError: On a missing required field.
        """
        try:
            return cls(
                run_id=str(data["run_id"]),
                kind=str(data["kind"]),
                name=str(data["name"]),
                config=dict(data.get("config", {})),
                metrics={
                    str(k): float(v)
                    for k, v in data.get("metrics", {}).items()
                },
                git_sha=str(data.get("git_sha", "unknown")),
                timestamp_s=float(data.get("timestamp_s", 0.0)),
                schema=int(data.get("schema", LEDGER_SCHEMA_VERSION)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise PerfError(f"malformed ledger record: {exc}") from exc


def resolve_ledger_path(path: str | Path | None = None) -> Path:
    """The ledger file to use: explicit path, env override, or default."""
    if path is not None:
        return Path(path)
    return Path(os.environ.get(LEDGER_ENV_VAR, DEFAULT_LEDGER_PATH))


class Ledger:
    """Append/read access to one ledger file."""

    def __init__(self, path: str | Path | None = None) -> None:
        self.path = resolve_ledger_path(path)

    def append(self, record: RunRecord) -> None:
        """Append one record as a single JSONL line (creating the file
        and its parent directory on first use)."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        line = json.dumps(record.to_mapping(), sort_keys=True)
        with self.path.open("a") as fh:
            fh.write(line + "\n")

    def read(self) -> list[RunRecord]:
        """All records, in file (append) order.

        Raises:
            PerfError: If the file is missing or a line is malformed.
        """
        if not self.path.is_file():
            raise PerfError(f"no ledger at {self.path}")
        return read_ledger(self.path)

    def exists(self) -> bool:
        """Whether the ledger file is present."""
        return self.path.is_file()


def read_ledger(path: str | Path) -> list[RunRecord]:
    """Parse a ledger file into records, skipping blank lines.

    Raises:
        PerfError: On a missing/unreadable file, unparsable lines, or
            malformed records.
    """
    try:
        text = Path(path).read_text()
    except OSError as exc:
        raise PerfError(f"no ledger at {path}: {exc}") from exc
    records: list[RunRecord] = []
    for n, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            data = json.loads(line)
        except json.JSONDecodeError as exc:
            raise PerfError(f"{path}:{n} is not JSON: {exc}") from exc
        if not isinstance(data, dict):
            raise PerfError(f"{path}:{n} is not a JSON object")
        records.append(RunRecord.from_mapping(data))
    return records


_GIT_SHA_CACHE: dict[str, str] = {}


def git_sha(cwd: str | Path | None = None) -> str:
    """The abbreviated HEAD commit, or ``"unknown"`` (cached per cwd)."""
    key = str(cwd or ".")
    cached = _GIT_SHA_CACHE.get(key)
    if cached is not None:
        return cached
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=5.0,
            check=False,
        )
        sha = out.stdout.strip() if out.returncode == 0 else "unknown"
    except (OSError, subprocess.SubprocessError):
        sha = "unknown"
    _GIT_SHA_CACHE[key] = sha or "unknown"
    return _GIT_SHA_CACHE[key]


def new_run_id() -> str:
    """A fresh run identifier (short, log-greppable)."""
    return uuid.uuid4().hex[:12]


def record_run(
    kind: str,
    name: str,
    metrics: Mapping[str, float],
    config: Mapping[str, Any] | None = None,
    *,
    run_id: str | None = None,
    path: str | Path | None = None,
    ledger: Ledger | None = None,
) -> RunRecord:
    """Append one run record — the only sanctioned ledger writer.

    Every producer (CLI commands, the bench ``write_result`` hook) goes
    through here so the schema stays uniform; lint rule RPL501 flags
    ad-hoc ledger writes.

    Args:
        kind: Producer family (``"run"`` / ``"compare"`` / ``"fleet"`` /
            ``"bench"``).
        name: Scenario or bench id.
        metrics: Flat metric mapping; non-finite values are dropped.
        config: Identity config for sample grouping.
        run_id: Share one id across the records of one invocation
            (fresh when omitted).
        path: Ledger file (default: ``REPRO_PERF_LEDGER`` env or
            ``.repro/perf-ledger.jsonl``).
        ledger: An explicit :class:`Ledger` (overrides ``path``).

    Raises:
        PerfError: On an empty kind/name.
    """
    if not kind or not name:
        raise PerfError("run records need a kind and a name")
    clean: dict[str, float] = {}
    for metric_name, value in metrics.items():
        try:
            number = float(value)
        except (TypeError, ValueError):
            continue
        if number == number and abs(number) != float("inf"):  # finite
            clean[str(metric_name)] = number
    record = RunRecord(
        run_id=run_id or new_run_id(),
        kind=kind,
        name=name,
        config=dict(config or {}),
        metrics=clean,
        git_sha=git_sha(),
        timestamp_s=time.time(),
    )
    (ledger or Ledger(path)).append(record)
    return record


def metrics_from_snapshot(
    snapshot: Mapping[str, Any], prefix: str = ""
) -> dict[str, float]:
    """Flatten an obs-registry snapshot into ledger metrics.

    Counters and gauges pass through by name; each histogram expands to
    ``<name>.mean`` / ``.p50`` / ``.p95`` / ``.p99`` / ``.max`` /
    ``.count`` (quantiles interpolated from the bucket counts via
    :func:`repro.obs.metrics.histogram_quantile`), which is how
    decision-latency percentiles travel into the ledger.
    """
    out: dict[str, float] = {}
    for section in ("counters", "gauges"):
        for name, value in snapshot.get(section, {}).items():
            out[f"{prefix}{name}"] = float(value)
    for name, h in snapshot.get("histograms", {}).items():
        count = int(h.get("count", 0))
        out[f"{prefix}{name}.count"] = float(count)
        if not count:
            continue
        out[f"{prefix}{name}.mean"] = float(h["sum"]) / count
        if h.get("max") is not None:
            out[f"{prefix}{name}.max"] = float(h["max"])
        for q in SNAPSHOT_QUANTILES:
            estimate = histogram_quantile(h, q)
            if estimate is not None:
                out[f"{prefix}{name}.p{int(q * 100)}"] = estimate
    return out


def group_samples(
    records: Iterable[RunRecord],
) -> dict[tuple[str, str], list[float]]:
    """Samples per ``(record key, metric name)``, in record order."""
    samples: dict[tuple[str, str], list[float]] = {}
    for record in records:
        key = record.key()
        for metric, value in record.metrics.items():
            samples.setdefault((key, metric), []).append(value)
    return samples


def split_latest(
    records: list[RunRecord],
) -> tuple[list[RunRecord], list[RunRecord]]:
    """Split one ledger into (baseline, current) for self-gating.

    Per record key, the samples of the *newest* run id (last appended)
    are "current" and every earlier record is "baseline" — so a ledger
    that accumulated N runs gates its latest run against the history.
    Keys with records from a single run id only are left out of both
    sides (nothing to compare).
    """
    by_key: dict[str, list[RunRecord]] = {}
    for record in records:
        by_key.setdefault(record.key(), []).append(record)
    baseline: list[RunRecord] = []
    current: list[RunRecord] = []
    for key_records in by_key.values():
        run_ids = [r.run_id for r in key_records]
        if len(set(run_ids)) < 2:
            continue
        latest = run_ids[-1]
        for r in key_records:
            (current if r.run_id == latest else baseline).append(r)
    return baseline, current
