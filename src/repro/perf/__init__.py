"""repro.perf — the performance ledger and regression gate.

Every measured execution (``repro run`` / ``compare`` / ``fleet``
invocations, each benchmark) appends a :class:`RunRecord` through
:func:`record_run` to an append-only JSONL ledger
(``.repro/perf-ledger.jsonl`` by default, ``REPRO_PERF_LEDGER`` to
override).  :func:`compare_records` then tests the latest samples
against history — bootstrap median-shift CIs when there are enough
samples, a plain threshold rule when there are not — and ``repro perf
gate`` turns the verdicts into an exit code for CI.

Module map:

* :mod:`repro.perf.ledger`  — ``RunRecord`` / ``Ledger`` /
  ``record_run`` / snapshot flattening
* :mod:`repro.perf.regress` — ``compare_records`` / ``gate`` /
  text-json-github renderers

Schema and gate semantics live in ``docs/observability.md``.
"""

from __future__ import annotations

from repro.perf.ledger import (
    DEFAULT_LEDGER_PATH,
    LEDGER_ENV_VAR,
    LEDGER_SCHEMA_VERSION,
    Ledger,
    RunRecord,
    git_sha,
    group_samples,
    metrics_from_snapshot,
    new_run_id,
    read_ledger,
    record_run,
    resolve_ledger_path,
    split_latest,
)
from repro.perf.regress import (
    DEFAULT_BOOTSTRAP_ITERS,
    DEFAULT_CONFIDENCE,
    DEFAULT_THRESHOLD,
    MIN_BOOTSTRAP_SAMPLES,
    GateResult,
    MetricVerdict,
    PerfComparison,
    compare_records,
    gate,
    metric_polarity,
    render_github,
    render_json,
    render_text,
)

__all__ = [
    "DEFAULT_BOOTSTRAP_ITERS",
    "DEFAULT_CONFIDENCE",
    "DEFAULT_LEDGER_PATH",
    "DEFAULT_THRESHOLD",
    "GateResult",
    "LEDGER_ENV_VAR",
    "LEDGER_SCHEMA_VERSION",
    "Ledger",
    "MIN_BOOTSTRAP_SAMPLES",
    "MetricVerdict",
    "PerfComparison",
    "RunRecord",
    "compare_records",
    "gate",
    "git_sha",
    "group_samples",
    "metric_polarity",
    "metrics_from_snapshot",
    "new_run_id",
    "read_ledger",
    "record_run",
    "render_github",
    "render_json",
    "render_text",
    "resolve_ledger_path",
    "split_latest",
]
