"""Statistical regression gating over ledger records.

:func:`compare_records` reduces the repeated samples of each
``(record key, metric)`` pair on the baseline and current side, then
classifies the shift:

* **n ≥ 5 on both sides** — bootstrap confidence interval on the
  relative median shift (seeded resampling, so two invocations over the
  same ledger agree bit-for-bit).  A shift whose CI clears the noise
  threshold in the bad direction is ``regressed``; clearing it in the
  good direction is ``improved``; anything else is ``unchanged``.
* **n < 5** — plain threshold rule on the median shift.  CI machinery
  on three samples is theatre; a straight relative comparison against
  the threshold is honest about what little the data supports.

Metric *polarity* (whether bigger is better) is inferred from the name —
``qos`` / ``speedup`` / throughput-ish metrics count up, everything else
(energy, latency, failures) counts down — and can be overridden per
metric.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.errors import PerfError
from repro.perf.ledger import RunRecord, group_samples

MIN_BOOTSTRAP_SAMPLES = 5
"""Below this many samples per side, the threshold rule applies."""

DEFAULT_THRESHOLD = 0.10
"""Relative shift treated as measurement noise (10%)."""

DEFAULT_BOOTSTRAP_ITERS = 2000
DEFAULT_CONFIDENCE = 0.95
DEFAULT_BOOTSTRAP_SEED = 20200720  # DAC 2020 vintage

#: Name fragments marking a metric as higher-is-better.
_HIGHER_BETTER_MARKERS = (
    "qos",
    "improvement",
    "speedup",
    "throughput",
    "agreement",
    "coverage",
    "_per_s",
    "steps_per_s",
)

#: Fragments that pin lower-is-better even when a higher marker also
#: matches — ``energy_per_qos_j`` contains "qos" but counts *down*.
_LOWER_BETTER_MARKERS = (
    "energy",
    "latency",
    "miss",
)


def metric_polarity(
    name: str, overrides: Mapping[str, str] | None = None
) -> str:
    """``"higher"`` or ``"lower"`` — which direction is better.

    Args:
        name: Metric name (``"energy_per_qos_j"``, ``"mean_qos"``, ...).
        overrides: Per-metric overrides, value ``"higher"``/``"lower"``.

    Raises:
        PerfError: On an override value that is neither direction.
    """
    if overrides and name in overrides:
        direction = overrides[name]
        if direction not in ("higher", "lower"):
            raise PerfError(
                f"polarity override for {name!r} must be "
                f"'higher' or 'lower', not {direction!r}"
            )
        return direction
    lowered = name.lower()
    if any(marker in lowered for marker in _LOWER_BETTER_MARKERS):
        return "lower"
    if any(marker in lowered for marker in _HIGHER_BETTER_MARKERS):
        return "higher"
    return "lower"


@dataclass(frozen=True)
class MetricVerdict:
    """The comparison outcome for one ``(record key, metric)`` pair.

    Attributes:
        key: Sample-grouping key (:meth:`RunRecord.key`).
        metric: Metric name.
        status: ``"improved"`` / ``"unchanged"`` / ``"regressed"`` /
            ``"added"`` / ``"removed"``.
        baseline_median / current_median: Per-side medians (``None``
            when that side has no samples).
        shift: Relative median shift ``(current - baseline) /
            |baseline|`` (``None`` when undefined).
        ci_low / ci_high: Bootstrap CI on the shift (``None`` under the
            threshold rule).
        n_baseline / n_current: Sample counts.
        method: ``"bootstrap"`` or ``"threshold"``.
        polarity: Which direction is better for this metric.
    """

    key: str
    metric: str
    status: str
    baseline_median: float | None
    current_median: float | None
    shift: float | None
    ci_low: float | None
    ci_high: float | None
    n_baseline: int
    n_current: int
    method: str
    polarity: str


@dataclass(frozen=True)
class PerfComparison:
    """All verdicts of one baseline/current comparison."""

    verdicts: tuple[MetricVerdict, ...]
    threshold: float
    confidence: float

    @property
    def regressions(self) -> tuple[MetricVerdict, ...]:
        return tuple(v for v in self.verdicts if v.status == "regressed")

    @property
    def improvements(self) -> tuple[MetricVerdict, ...]:
        return tuple(v for v in self.verdicts if v.status == "improved")

    @property
    def ok(self) -> bool:
        """True when nothing regressed."""
        return not self.regressions


def _bootstrap_shift_ci(
    baseline: Sequence[float],
    current: Sequence[float],
    iters: int,
    confidence: float,
    seed: int,
) -> tuple[float, float]:
    """Percentile-bootstrap CI on the relative median shift."""
    rng = np.random.default_rng(seed)
    base = np.asarray(baseline, dtype=float)
    cur = np.asarray(current, dtype=float)
    base_idx = rng.integers(0, len(base), size=(iters, len(base)))
    cur_idx = rng.integers(0, len(cur), size=(iters, len(cur)))
    base_medians = np.median(base[base_idx], axis=1)
    cur_medians = np.median(cur[cur_idx], axis=1)
    denom = np.abs(base_medians)
    denom[denom == 0.0] = 1.0
    shifts = (cur_medians - base_medians) / denom
    alpha = (1.0 - confidence) / 2.0
    lo, hi = np.quantile(shifts, [alpha, 1.0 - alpha])
    return float(lo), float(hi)


def _relative_shift(baseline_median: float, current_median: float) -> float:
    denom = abs(baseline_median)
    if denom == 0.0:
        denom = 1.0
    return (current_median - baseline_median) / denom


def compare_records(
    baseline: Iterable[RunRecord],
    current: Iterable[RunRecord],
    *,
    threshold: float = DEFAULT_THRESHOLD,
    confidence: float = DEFAULT_CONFIDENCE,
    bootstrap_iters: int = DEFAULT_BOOTSTRAP_ITERS,
    seed: int = DEFAULT_BOOTSTRAP_SEED,
    polarity_overrides: Mapping[str, str] | None = None,
) -> PerfComparison:
    """Classify every metric's shift between two record sets.

    Args:
        baseline: Reference records (the history or another ledger).
        current: Records under test.
        threshold: Relative shift below which a change is noise.
        confidence: Bootstrap CI level (n ≥ 5 per side only).
        bootstrap_iters: Resampling iterations.
        seed: Bootstrap RNG seed — fixed so gating is reproducible.
        polarity_overrides: Per-metric ``"higher"``/``"lower"``.

    Raises:
        PerfError: If both sides are empty, or on a bad threshold /
            confidence / override.
    """
    if not 0.0 < confidence < 1.0:
        raise PerfError(f"confidence must be in (0, 1): {confidence}")
    if threshold < 0.0:
        raise PerfError(f"threshold cannot be negative: {threshold}")
    base_samples = group_samples(baseline)
    cur_samples = group_samples(current)
    if not base_samples and not cur_samples:
        raise PerfError("nothing to compare: both record sets are empty")

    verdicts: list[MetricVerdict] = []
    for pair in sorted(set(base_samples) | set(cur_samples)):
        key, metric = pair
        base = base_samples.get(pair, [])
        cur = cur_samples.get(pair, [])
        polarity = metric_polarity(metric, polarity_overrides)
        if not base or not cur:
            verdicts.append(
                MetricVerdict(
                    key=key,
                    metric=metric,
                    status="added" if not base else "removed",
                    baseline_median=(
                        float(np.median(base)) if base else None
                    ),
                    current_median=float(np.median(cur)) if cur else None,
                    shift=None,
                    ci_low=None,
                    ci_high=None,
                    n_baseline=len(base),
                    n_current=len(cur),
                    method="none",
                    polarity=polarity,
                )
            )
            continue
        base_median = float(np.median(base))
        cur_median = float(np.median(cur))
        shift = _relative_shift(base_median, cur_median)
        use_bootstrap = (
            len(base) >= MIN_BOOTSTRAP_SAMPLES
            and len(cur) >= MIN_BOOTSTRAP_SAMPLES
        )
        ci_low: float | None = None
        ci_high: float | None = None
        if use_bootstrap:
            ci_low, ci_high = _bootstrap_shift_ci(
                base, cur, bootstrap_iters, confidence, seed
            )
            # Worse means the CI lies entirely past the threshold in
            # the bad direction; better, entirely past it in the good.
            if polarity == "lower":
                worse = ci_low > threshold
                better = ci_high < -threshold
            else:
                worse = ci_high < -threshold
                better = ci_low > threshold
        else:
            if polarity == "lower":
                worse = shift > threshold
                better = shift < -threshold
            else:
                worse = shift < -threshold
                better = shift > threshold
        status = "regressed" if worse else ("improved" if better else "unchanged")
        verdicts.append(
            MetricVerdict(
                key=key,
                metric=metric,
                status=status,
                baseline_median=base_median,
                current_median=cur_median,
                shift=shift,
                ci_low=ci_low,
                ci_high=ci_high,
                n_baseline=len(base),
                n_current=len(cur),
                method="bootstrap" if use_bootstrap else "threshold",
                polarity=polarity,
            )
        )
    return PerfComparison(
        verdicts=tuple(verdicts), threshold=threshold, confidence=confidence
    )


# -- rendering (mirrors repro.lint.output) -------------------------------


def _fmt(value: float | None) -> str:
    if value is None:
        return "-"
    if value == 0:
        return "0"
    if abs(value) >= 1000 or abs(value) < 0.001:
        return f"{value:.3e}"
    return f"{value:.6g}"


def render_text(comparison: PerfComparison, verbose: bool = False) -> str:
    """Human-readable comparison summary.

    Regressions and improvements always print; unchanged/added/removed
    verdicts only under ``verbose``.
    """
    lines: list[str] = []
    shown = 0
    for v in comparison.verdicts:
        if v.status in ("unchanged", "added", "removed") and not verbose:
            continue
        shown += 1
        shift = f"{v.shift:+.1%}" if v.shift is not None else "-"
        ci = (
            f" CI[{v.ci_low:+.1%}, {v.ci_high:+.1%}]"
            if v.ci_low is not None and v.ci_high is not None
            else ""
        )
        lines.append(
            f"{v.status.upper():>9}  {v.key} :: {v.metric}  "
            f"{_fmt(v.baseline_median)} -> {_fmt(v.current_median)} "
            f"({shift}{ci}, n={v.n_baseline}/{v.n_current}, "
            f"{v.method}, {v.polarity}-is-better)"
        )
    counts = {"improved": 0, "unchanged": 0, "regressed": 0, "added": 0, "removed": 0}
    for v in comparison.verdicts:
        counts[v.status] += 1
    if shown:
        lines.append("")
    lines.append(
        f"{len(comparison.verdicts)} metric(s): "
        f"{counts['regressed']} regressed, {counts['improved']} improved, "
        f"{counts['unchanged']} unchanged"
        + (
            f", {counts['added']} added, {counts['removed']} removed"
            if counts["added"] or counts["removed"]
            else ""
        )
    )
    return "\n".join(lines)


def render_json(comparison: PerfComparison) -> str:
    """Machine-readable comparison (stable key order)."""
    payload = {
        "threshold": comparison.threshold,
        "confidence": comparison.confidence,
        "ok": comparison.ok,
        "verdicts": [
            {
                "key": v.key,
                "metric": v.metric,
                "status": v.status,
                "baseline_median": v.baseline_median,
                "current_median": v.current_median,
                "shift": v.shift,
                "ci_low": v.ci_low,
                "ci_high": v.ci_high,
                "n_baseline": v.n_baseline,
                "n_current": v.n_current,
                "method": v.method,
                "polarity": v.polarity,
            }
            for v in comparison.verdicts
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render_github(comparison: PerfComparison) -> str:
    """GitHub Actions annotations — one ``::error`` per regression,
    ``::warning`` per improvement (worth a look: did the benchmark get
    easier, or the code faster?)."""
    lines: list[str] = []
    for v in comparison.regressions:
        shift = f"{v.shift:+.1%}" if v.shift is not None else "?"
        lines.append(
            f"::error title=perf regression::{v.key} :: {v.metric} "
            f"shifted {shift} ({_fmt(v.baseline_median)} -> "
            f"{_fmt(v.current_median)}, {v.method})"
        )
    for v in comparison.improvements:
        shift = f"{v.shift:+.1%}" if v.shift is not None else "?"
        lines.append(
            f"::warning title=perf improvement::{v.key} :: {v.metric} "
            f"shifted {shift}"
        )
    if not lines:
        lines.append("::notice title=perf gate::no significant shifts")
    return "\n".join(lines)


RENDERERS = {
    "text": lambda c: render_text(c),
    "json": render_json,
    "github": render_github,
}


@dataclass(frozen=True)
class GateResult:
    """What ``repro perf gate`` decided."""

    comparison: PerfComparison
    exit_code: int
    warn_only: bool = field(default=False)


def gate(comparison: PerfComparison, warn_only: bool = False) -> GateResult:
    """Turn a comparison into an exit code (0 pass, 1 regressed).

    ``warn_only`` reports regressions but forces exit 0 — the CI
    bring-up mode while a baseline ledger accumulates samples.
    """
    failed = not comparison.ok and not warn_only
    return GateResult(
        comparison=comparison,
        exit_code=1 if failed else 0,
        warn_only=warn_only,
    )
