"""E5/E6 — learning behaviour: convergence and cross-scenario adaptation."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.analysis.plot import sparkline
from repro.analysis.stats import mean
from repro.analysis.tables import format_table
from repro.core.config import PolicyConfig
from repro.core.trainer import evaluate_policy, make_policies, train_policy
from repro.governors import create
from repro.obs.learn import ConvergenceSpec, LearnRecorder, plateau_episode
from repro.sim.engine import Simulator
from repro.sim.result import SimulationResult
from repro.soc.chip import Chip
from repro.soc.presets import exynos5422
from repro.workload.scenarios import get_scenario

#: The detector settings matching E5's historical tail heuristic: the
#: greedy curve has converged once a 4-point window stops moving by more
#: than 25% relative spread (``max/min < 1.25``, bench_e5's old assert).
E5_CONVERGENCE = ConvergenceSpec(window=4, reward_plateau_tol=0.25)


def e5_convergence_episode(
    values: Sequence[float], spec: ConvergenceSpec | None = None
) -> int | None:
    """First curve index whose trailing window plateaus, or ``None``.

    Routes the old ad-hoc "tail max/min ratio" convergence test through
    the declarative :class:`~repro.obs.learn.ConvergenceSpec` detector
    (window + ``reward_plateau_tol`` are the fields that apply to a bare
    energy curve).
    """
    spec = spec or E5_CONVERGENCE
    return plateau_episode(values, spec.window, spec.reward_plateau_tol)


@dataclass(frozen=True)
class E5Result:
    """E5: the greedy-evaluation learning curve.

    Attributes:
        report: Table + sparkline rendering of the curve.
        curve: ``(episodes_trained, result)`` pairs; entry 0 is the
            untrained policy.
    """

    report: str
    curve: tuple[tuple[int, SimulationResult], ...]

    @property
    def start_j(self) -> float:
        return self.curve[0][1].energy_per_qos_j

    def tail_mean_j(self, n: int = 4) -> float:
        """Mean greedy energy/QoS over the last ``n`` curve points."""
        return mean([run.energy_per_qos_j for _, run in self.curve[-n:]])

    def tail_qos(self, n: int = 4) -> float:
        """Mean QoS over the last ``n`` curve points."""
        return mean([run.qos.mean_qos for _, run in self.curve[-n:]])

    def convergence_episode(
        self, spec: ConvergenceSpec | None = None
    ) -> int | None:
        """First curve index where greedy energy/QoS plateaus, or None."""
        return e5_convergence_episode(
            [run.energy_per_qos_j for _, run in self.curve], spec
        )


def e5_learning_curve(
    scenario_name: str = "gaming",
    episodes: int = 16,
    episode_duration_s: float = 15.0,
    eval_seed: int = 100,
    chip: Chip | None = None,
    config: PolicyConfig | None = None,
    recorder: LearnRecorder | None = None,
) -> E5Result:
    """Train episode by episode, evaluating greedily on one fixed trace
    after each — the proper learning curve (see DESIGN.md E5).

    With a ``recorder``, each training episode appends one learning
    record (global episode index matching the curve's x-axis).
    """
    chip = chip or exynos5422()
    scenario = get_scenario(scenario_name)
    eval_trace = scenario.trace(episode_duration_s, seed=eval_seed)
    policies = make_policies(chip, config)

    curve: list[tuple[int, SimulationResult]] = []
    curve.append((0, evaluate_policy(chip, policies, eval_trace)))
    for episode in range(episodes):
        train_policy(
            chip,
            scenario,
            episodes=1,
            episode_duration_s=episode_duration_s,
            base_seed=episode,
            config=config,
            policies=policies,
            recorder=recorder,
            episode_offset=episode,
        )
        curve.append((episode + 1, evaluate_policy(chip, policies, eval_trace)))

    rows = [
        (ep, run.total_energy_j, run.qos.mean_qos, run.energy_per_qos_j * 1e3)
        for ep, run in curve
    ]
    report = "\n".join(
        [
            format_table(
                ["episodes trained", "energy [J]", "QoS", "greedy E/QoS [mJ/unit]"],
                rows,
                title=f"E5: greedy-evaluation learning curve ({scenario_name})",
            ),
            "",
            "E/QoS  " + sparkline([run.energy_per_qos_j for _, run in curve]),
            "QoS    " + sparkline([run.qos.mean_qos for _, run in curve]),
        ]
    )
    return E5Result(report=report, curve=tuple(curve))


@dataclass(frozen=True)
class E6Segment:
    """One scenario segment of the E6 adaptation run."""

    scenario: str
    adapting_j: float
    specialist_j: float
    ondemand_j: float
    adapting_qos: float


@dataclass(frozen=True)
class E6Result:
    """E6: cross-scenario online adaptation.

    Attributes:
        report: The rendered per-segment table.
        segments: Per-segment comparisons.
    """

    report: str
    segments: tuple[E6Segment, ...]


def e6_adaptation(
    segments: list[str] | None = None,
    segment_duration_s: float = 20.0,
    train_episodes: int = 12,
    train_episode_s: float = 15.0,
    eval_seed: int = 100,
    chip: Chip | None = None,
    recorder: LearnRecorder | None = None,
) -> E6Result:
    """A policy trained on the first segment's scenario keeps learning
    online as the device moves through the remaining segments; each
    segment is compared against a per-scenario specialist and ondemand.

    A ``recorder`` ledgers the travelling policy's training episodes
    (the specialists trained per segment stay out of the ledger — they
    are baselines, not the learner under study).
    """
    segments = segments or ["gaming", "video_playback", "web_browsing"]
    chip = chip or exynos5422()
    travelling = train_policy(
        chip, get_scenario(segments[0]), episodes=train_episodes,
        episode_duration_s=train_episode_s, recorder=recorder,
    ).policies

    out: list[E6Segment] = []
    for name in segments:
        trace = get_scenario(name).trace(segment_duration_s, seed=eval_seed)
        adapted = Simulator(chip, trace, travelling).run()
        specialist_policies = train_policy(
            chip, get_scenario(name), episodes=train_episodes,
            episode_duration_s=train_episode_s,
        ).policies
        specialist = Simulator(chip, trace, specialist_policies).run()
        ondemand = Simulator(chip, trace, lambda c: create("ondemand")).run()
        out.append(
            E6Segment(
                scenario=name,
                adapting_j=adapted.energy_per_qos_j,
                specialist_j=specialist.energy_per_qos_j,
                ondemand_j=ondemand.energy_per_qos_j,
                adapting_qos=adapted.qos.mean_qos,
            )
        )
    report = format_table(
        ["segment", "adapting [mJ]", "specialist [mJ]", "ondemand [mJ]",
         "adapting QoS"],
        [
            (s.scenario, s.adapting_j * 1e3, s.specialist_j * 1e3,
             s.ondemand_j * 1e3, s.adapting_qos)
            for s in out
        ],
        title=(
            f"E6: {segments[0]}-trained policy adapting online through "
            + " -> ".join(segments)
        ),
    )
    return E6Result(report=report, segments=tuple(out))
