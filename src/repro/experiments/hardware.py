"""E7/A4/A6 — hardware-implementation experiments: fixed-point fidelity,
word-length sweep, and FPGA resource estimation."""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.tables import format_table
from repro.core.config import PolicyConfig
from repro.core.policy import RLPowerManagementPolicy
from repro.core.trainer import evaluate_policy, train_policy
from repro.hw.fixed_point import QFormat
from repro.hw.hwpolicy import HardwareRLPolicy
from repro.hw.pipeline import AcceleratorPipeline, PipelineSpec
from repro.hw.power import AcceleratorPowerModel
from repro.hw.rtl import Request, RTLAccelerator
from repro.hw.synthesis import (
    ResourceEstimate,
    ZYNQ7010_BUDGET,
    estimate_resources,
    fits_zynq7010,
)
from repro.sim.engine import Simulator
from repro.sim.result import SimulationResult
from repro.soc.chip import Chip
from repro.soc.presets import exynos5422
from repro.workload.scenarios import get_scenario


def transfer_to_hardware(
    policies: dict[str, RLPowerManagementPolicy],
    qformat: QFormat | None = None,
) -> dict[str, HardwareRLPolicy]:
    """Quantise trained software policies into hardware policies
    (evaluation mode)."""
    out: dict[str, HardwareRLPolicy] = {}
    for name, soft in policies.items():
        kwargs = {} if qformat is None else {"qformat": qformat}
        hard = HardwareRLPolicy(soft.config, online=False, **kwargs)
        hard.load_from_software(soft)
        out[name] = hard
    return out


def decision_agreement(
    soft: RLPowerManagementPolicy, hard: HardwareRLPolicy
) -> float:
    """Fraction of states where the quantised datapath picks the same
    greedy action as the float table."""
    assert soft.agent is not None and hard.datapath is not None
    same = sum(
        hard.datapath.argmax(s) == soft.agent.table.argmax(s)
        for s in range(soft.agent.n_states)
    )
    return same / soft.agent.n_states


@dataclass(frozen=True)
class E7Result:
    """E7: software vs fixed-point hardware policy.

    Attributes:
        report: Rendered comparison.
        software: The float policy's evaluation run.
        hardware: The fixed-point policy's evaluation run.
        agreements: Greedy decision agreement per cluster.
        mean_hw_latency_s: Mean modelled hardware step latency.
    """

    report: str
    software: SimulationResult
    hardware: SimulationResult
    agreements: dict[str, float]
    mean_hw_latency_s: float

    @property
    def energy_per_qos_delta(self) -> float:
        """Relative E/QoS difference, hardware vs software."""
        return (
            abs(self.hardware.energy_per_qos_j - self.software.energy_per_qos_j)
            / self.software.energy_per_qos_j
        )


def e7_hw_fidelity(
    scenario_name: str = "gaming",
    train_episodes: int = 14,
    episode_duration_s: float = 15.0,
    eval_seed: int = 100,
    chip: Chip | None = None,
    qformat: QFormat | None = None,
) -> E7Result:
    """Train in software, quantise, and compare end-to-end behaviour."""
    chip = chip or exynos5422()
    scenario = get_scenario(scenario_name)
    training = train_policy(
        chip, scenario, episodes=train_episodes,
        episode_duration_s=episode_duration_s,
    )
    trace = scenario.trace(episode_duration_s, seed=eval_seed)
    sw = evaluate_policy(chip, training.policies, trace)
    hw_policies = transfer_to_hardware(training.policies, qformat)
    agreements = {
        name: decision_agreement(training.policies[name], hw_policies[name])
        for name in hw_policies
    }
    hw = Simulator(chip, trace, hw_policies).run()
    mean_latency = sum(
        p.mean_decision_latency_s for p in hw_policies.values()
    ) / len(hw_policies)

    fmt = next(iter(hw_policies.values())).qformat
    lines = [
        format_table(
            ["implementation", "energy [J]", "QoS", "E/QoS [mJ/unit]"],
            [
                ("software (float64)", sw.total_energy_j, sw.qos.mean_qos,
                 sw.energy_per_qos_j * 1e3),
                (f"hardware ({fmt})", hw.total_energy_j, hw.qos.mean_qos,
                 hw.energy_per_qos_j * 1e3),
            ],
            title=f"E7: software vs fixed-point hardware policy ({scenario_name})",
        ),
        "",
        "greedy decision agreement after quantisation:",
    ]
    for name, frac in agreements.items():
        lines.append(f"  {name:<8s} {frac:.1%} of states")
    lines.append(
        f"modelled hardware decision latency: {mean_latency * 1e6:.3f} us/step"
    )
    return E7Result(
        report="\n".join(lines),
        software=sw,
        hardware=hw,
        agreements=agreements,
        mean_hw_latency_s=mean_latency,
    )


@dataclass(frozen=True)
class A4Row:
    """One word length of the A4 sweep."""

    qformat: QFormat
    agreement: float
    run: SimulationResult


@dataclass(frozen=True)
class A4Result:
    """A4: Q-format word-length sweep against the float reference."""

    report: str
    software: SimulationResult
    rows: tuple[A4Row, ...]

    def row(self, fmt: str) -> A4Row:
        """The sweep row for a format name (e.g. ``"Q7.8"``)."""
        for r in self.rows:
            if str(r.qformat) == fmt:
                return r
        raise KeyError(fmt)


def a4_wordlength(
    formats: list[QFormat] | None = None,
    scenario_name: str = "gaming",
    train_episodes: int = 14,
    episode_duration_s: float = 15.0,
    eval_seed: int = 100,
    chip: Chip | None = None,
) -> A4Result:
    """Quantise one trained policy into datapaths of several widths."""
    formats = formats or [
        QFormat(2, 2), QFormat(3, 4), QFormat(5, 6), QFormat(7, 8), QFormat(11, 12)
    ]
    chip = chip or exynos5422()
    scenario = get_scenario(scenario_name)
    training = train_policy(
        chip, scenario, episodes=train_episodes,
        episode_duration_s=episode_duration_s,
    )
    trace = scenario.trace(episode_duration_s, seed=eval_seed)
    sw = evaluate_policy(chip, training.policies, trace)

    rows: list[A4Row] = []
    for fmt in formats:
        hw_policies = transfer_to_hardware(training.policies, fmt)
        agree = sum(
            decision_agreement(training.policies[n], hw_policies[n])
            * training.policies[n].agent.n_states
            for n in hw_policies
        ) / sum(training.policies[n].agent.n_states for n in hw_policies)
        run = Simulator(chip, trace, hw_policies).run()
        rows.append(A4Row(qformat=fmt, agreement=agree, run=run))

    table_rows = [
        (str(r.qformat), r.qformat.width, f"{r.agreement:.1%}", r.run.qos.mean_qos,
         r.run.energy_per_qos_j * 1e3)
        for r in rows
    ]
    table_rows.append(
        ("float64 (SW)", 64, "100.0%", sw.qos.mean_qos, sw.energy_per_qos_j * 1e3)
    )
    report = format_table(
        ["format", "bits", "decision agreement", "QoS", "E/QoS [mJ/unit]"],
        table_rows,
        title=f"A4: Q-format word-length sweep ({scenario_name})",
    )
    return A4Result(report=report, software=sw, rows=tuple(rows))


@dataclass(frozen=True)
class A6Result:
    """A6: FPGA resource estimates plus RTL/analytical cross-check.

    Attributes:
        report: The rendered tables and cross-check lines.
        estimates: Resource estimates keyed by format name.
        rtl_checks: (n_actions, RTL cycles, analytical cycles) triplets.
        accelerator_power_w: Estimated power of the reference design at
            the deployed decision rate (both clusters at 10 ms).
    """

    report: str
    estimates: dict[str, ResourceEstimate]
    rtl_checks: tuple[tuple[int, int, int], ...]
    accelerator_power_w: float

    def reference_fits(self) -> bool:
        """Whether the reference Q7.8 design fits a Zynq-7010."""
        return fits_zynq7010(self.estimates["Q7.8"])


def a6_fpga_resources(
    formats: list[QFormat] | None = None,
    config: PolicyConfig | None = None,
) -> A6Result:
    """Estimate accelerator resources across word lengths and validate
    the clocked RTL model against the analytical pipeline."""
    formats = formats or [
        QFormat(3, 4), QFormat(5, 6), QFormat(7, 8), QFormat(11, 12), QFormat(15, 16)
    ]
    config = config or PolicyConfig()
    estimates = {
        str(fmt): estimate_resources(config.n_states, config.n_actions, fmt)
        for fmt in formats
    }
    rtl_checks = []
    for n_actions in (3, 5, 9):
        rtl = RTLAccelerator(n_actions=n_actions)
        rtl.submit(Request(req_id=0, state=0, with_update=True))
        completion = rtl.run_until_idle()[0]
        analytical = AcceleratorPipeline(PipelineSpec(), n_actions=n_actions)
        rtl_checks.append(
            (n_actions, completion.latency_cycles + 1, analytical.step_cycles())
        )

    rows = [
        (name, fmt_est.luts, fmt_est.ffs, fmt_est.bram_18k, fmt_est.dsps,
         "yes" if fits_zynq7010(fmt_est) else "NO")
        for name, fmt_est in estimates.items()
    ]
    lines = [
        format_table(
            ["format", "LUTs", "FFs", "BRAM(18Kb)", "DSP", "fits Zynq-7010"],
            rows,
            title=(
                "A6: estimated FPGA resources "
                f"({config.n_states} states x {config.n_actions} actions)"
            ),
        ),
        "",
        f"Zynq-7010 budget: {ZYNQ7010_BUDGET}",
        "",
        "RTL model vs analytical pipeline (per-step cycles):",
    ]
    for n_actions, rtl_cycles, analytical_cycles in rtl_checks:
        lines.append(
            f"  {n_actions} actions: RTL {rtl_cycles}, analytical {analytical_cycles}"
        )
    # The accelerator's own power at the deployed rate: two clusters at
    # 10 ms decision intervals = 200 steps/s.
    reference = estimates.get("Q7.8") or next(iter(estimates.values()))
    pipeline = AcceleratorPipeline(PipelineSpec(), n_actions=config.n_actions)
    power = AcceleratorPowerModel().average_power_w(
        reference, pipeline.step_cycles(), decision_rate_hz=200.0
    )
    lines.append("")
    lines.append(
        f"accelerator power at the deployed rate (200 steps/s): "
        f"{power * 1e3:.2f} mW — negligible against the hundreds of mW the "
        "policy saves (E1/E3)"
    )
    return A6Result(
        report="\n".join(lines),
        estimates=estimates,
        rtl_checks=tuple(rtl_checks),
        accelerator_power_w=power,
    )
