"""A1/A2/A3 — design-choice ablations: state features, reward weight,
and TD learner."""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Type

from repro.analysis.tables import format_table
from repro.core.config import PolicyConfig
from repro.core.policy import (
    DoubleQPowerManagementPolicy,
    RLPowerManagementPolicy,
    SarsaPowerManagementPolicy,
)
from repro.core.trainer import evaluate_policy, train_policy
from repro.governors.userspace import UserspaceGovernor
from repro.sim.engine import Simulator
from repro.sim.result import SimulationResult
from repro.soc.chip import Chip
from repro.soc.presets import exynos5422
from repro.workload.scenarios import get_scenario

DEFAULT_STATE_VARIANTS: dict[str, PolicyConfig] = {
    "full": PolicyConfig(),
    "no-trend": PolicyConfig(trend_bins=1),
    "no-slack": PolicyConfig(slack_bins=1),
    "no-opp": PolicyConfig(opp_bins=1),
    "util-only": PolicyConfig(trend_bins=1, slack_bins=1, opp_bins=1),
}
"""The A1 feature-knockout configurations."""


@dataclass(frozen=True)
class A1Result:
    """A1: state-feature ablation runs keyed by variant name."""

    report: str
    results: dict[str, SimulationResult]


def a1_state_ablation(
    variants: dict[str, PolicyConfig] | None = None,
    scenario_name: str = "gaming",
    train_episodes: int = 14,
    episode_duration_s: float = 15.0,
    eval_seed: int = 100,
    chip: Chip | None = None,
) -> A1Result:
    """Retrain with individual state features disabled."""
    variants = variants or DEFAULT_STATE_VARIANTS
    chip = chip or exynos5422()
    scenario = get_scenario(scenario_name)
    trace = scenario.trace(episode_duration_s, seed=eval_seed)
    results: dict[str, SimulationResult] = {}
    for name, config in variants.items():
        training = train_policy(
            chip, scenario, episodes=train_episodes,
            episode_duration_s=episode_duration_s, config=config,
        )
        results[name] = evaluate_policy(chip, training.policies, trace)
    report = format_table(
        ["state variant", "energy [J]", "QoS", "E/QoS [mJ/unit]"],
        [
            (name, r.total_energy_j, r.qos.mean_qos, r.energy_per_qos_j * 1e3)
            for name, r in results.items()
        ],
        title=f"A1: state-feature ablation ({scenario_name})",
    )
    return A1Result(report=report, results=results)


@dataclass(frozen=True)
class A2Result:
    """A2: reward-weight sweep runs keyed by lambda."""

    report: str
    results: dict[float, SimulationResult]


def a2_reward_sweep(
    lambdas: list[float] | None = None,
    scenario_name: str = "gaming",
    train_episodes: int = 14,
    episode_duration_s: float = 15.0,
    eval_seed: int = 100,
    chip: Chip | None = None,
) -> A2Result:
    """Sweep the QoS weight of the reward."""
    lambdas = lambdas if lambdas is not None else [0.0, 0.25, 1.0, 4.0, 16.0]
    chip = chip or exynos5422()
    scenario = get_scenario(scenario_name)
    trace = scenario.trace(episode_duration_s, seed=eval_seed)
    results: dict[float, SimulationResult] = {}
    for lam in lambdas:
        training = train_policy(
            chip, scenario, episodes=train_episodes,
            episode_duration_s=episode_duration_s,
            config=PolicyConfig(lambda_qos=lam),
        )
        results[lam] = evaluate_policy(chip, training.policies, trace)
    report = format_table(
        ["lambda_qos", "energy [J]", "QoS", "miss [%]", "E/QoS [mJ/unit]"],
        [
            (lam, r.total_energy_j, r.qos.mean_qos,
             r.qos.deadline_miss_rate * 100, r.energy_per_qos_j * 1e3)
            for lam, r in results.items()
        ],
        title=f"A2: reward-weight sweep ({scenario_name})",
    )
    return A2Result(report=report, results=results)


@dataclass(frozen=True)
class A3Result:
    """A3: learner comparison plus the peeking static oracle."""

    report: str
    learners: dict[str, SimulationResult]
    oracle: SimulationResult


def _train_learner(
    policy_cls: Type[RLPowerManagementPolicy],
    scenario_name: str,
    episodes: int,
    episode_s: float,
) -> tuple[Chip, dict[str, RLPowerManagementPolicy]]:
    chip = exynos5422()
    scenario = get_scenario(scenario_name)
    policies = {
        name: policy_cls(PolicyConfig(seed=1000 * i))
        for i, name in enumerate(chip.cluster_names)
    }
    for episode in range(episodes):
        Simulator(chip, scenario.trace(episode_s, seed=episode), policies).run()
    return chip, policies


def static_oracle(trace, opp_stride: int = 2) -> SimulationResult:
    """Best fixed (per-cluster) userspace OPP setting found by exhaustive
    search **on the evaluation trace itself** — an unrealisable bound.

    Args:
        trace: The evaluation trace (the oracle gets to peek at it).
        opp_stride: Search every ``opp_stride``-th index to bound cost.
    """
    chip = exynos5422()
    ranges = [
        range(0, len(c.spec.opp_table), opp_stride) for c in chip.clusters
    ]
    best: SimulationResult | None = None
    for combo in itertools.product(*ranges):
        governors = {
            c.spec.name: UserspaceGovernor(idx)
            for c, idx in zip(chip.clusters, combo)
        }
        run = Simulator(chip, trace, governors).run()
        if best is None or run.energy_per_qos_j < best.energy_per_qos_j:
            best = run
    assert best is not None
    return best


def a3_learner_ablation(
    scenario_name: str = "gaming",
    train_episodes: int = 14,
    episode_duration_s: float = 15.0,
    eval_seed: int = 100,
) -> A3Result:
    """Q-learning vs SARSA vs double Q vs the static oracle."""
    trace = get_scenario(scenario_name).trace(episode_duration_s, seed=eval_seed)

    learners: dict[str, SimulationResult] = {}
    for label, cls in [
        ("Q-learning (paper)", RLPowerManagementPolicy),
        ("SARSA", SarsaPowerManagementPolicy),
        ("double Q-learning", DoubleQPowerManagementPolicy),
    ]:
        chip, policies = _train_learner(
            cls, scenario_name, train_episodes, episode_duration_s
        )
        learners[label] = evaluate_policy(chip, policies, trace)
    oracle = static_oracle(trace)

    rows = [
        (label, r.total_energy_j, r.qos.mean_qos, r.energy_per_qos_j * 1e3)
        for label, r in learners.items()
    ]
    rows.append(
        ("static oracle", oracle.total_energy_j, oracle.qos.mean_qos,
         oracle.energy_per_qos_j * 1e3)
    )
    report = format_table(
        ["learner", "energy [J]", "QoS", "E/QoS [mJ/unit]"],
        rows,
        title=f"A3: learner ablation ({scenario_name})",
    )
    return A3Result(report=report, learners=learners, oracle=oracle)
