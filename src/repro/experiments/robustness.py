"""X1/X2 — robustness extensions: full-system realism and seed stability."""

from __future__ import annotations

import tempfile
from dataclasses import dataclass

from repro.analysis.repeat import (
    RepeatedMeasure,
    repeat_jobs_over_seeds,
    repeat_over_seeds,
)
from repro.errors import ReproError
from repro.analysis.tables import format_table
from repro.core.trainer import make_policies
from repro.core.trainer import train_policy
from repro.governors import create
from repro.idle.governor import MenuIdleGovernor
from repro.mem.dram import DRAMModel
from repro.sim.engine import Simulator
from repro.soc.chip import Chip
from repro.soc.presets import exynos5422
from repro.soc.transition import DVFSTransitionModel
from repro.thermal.rc import default_thermal_model
from repro.thermal.throttle import ThermalThrottle
from repro.workload.scenarios import get_scenario

X1_GOVERNORS = ["performance", "ondemand", "conservative", "interactive",
                "schedutil", "scenario-aware"]
X1_SCENARIOS = ["gaming", "web_browsing", "camera_preview"]


def full_system_simulator(
    chip: Chip, trace, governors, with_memory: bool = True
) -> Simulator:
    """A simulator with every optional substrate enabled: thermals with
    throttling, cpuidle C-states, DVFS transition costs, and DRAM power."""
    return Simulator(
        chip,
        trace,
        governors,
        thermal=default_thermal_model(chip.cluster_names),
        throttle=ThermalThrottle(trip_c=85.0),
        idle_governor=MenuIdleGovernor(),
        transition=DVFSTransitionModel(),
        memory=DRAMModel() if with_memory else None,
    )


@dataclass(frozen=True)
class X1Result:
    """X1: the comparison rerun with all realism subsystems enabled.

    Attributes:
        report: The rendered table.
        cells_j: energy/QoS per (scenario, policy-name); the RL policy is
            keyed ``"rl-policy"``.
        rl_qos: RL mean QoS per scenario.
    """

    report: str
    cells_j: dict[tuple[str, str], float]
    rl_qos: dict[str, float]

    def mean_j(self, policy: str) -> float:
        """Mean energy/QoS of one policy across the swept scenarios."""
        values = [v for (s, g), v in self.cells_j.items() if g == policy]
        return sum(values) / len(values)


def x1_full_system(
    scenario_names: list[str] | None = None,
    governor_names: list[str] | None = None,
    duration_s: float = 20.0,
    eval_seed: int = 100,
    train_episodes: int = 16,
    train_episode_s: float = 15.0,
    with_memory: bool = False,
    jobs: int = 1,
) -> X1Result:
    """Rerun the governor comparison inside the full-system simulator;
    the RL policy trains inside it too, so it learns with C-states,
    transition costs and thermals present.

    ``jobs != 1`` fans the (scenario x policy) grid out over worker
    processes via :mod:`repro.fleet` (``0`` = CPU count); each RL job
    then trains inside its own worker.  Requires ``with_memory=False``
    (the fleet worker's full-system substrate omits DRAM).

    Note:
        ``with_memory`` defaults to False: DRAM power is common-mode
        (identical across policies) and only dilutes relative gaps.
    """
    scenario_names = scenario_names or list(X1_SCENARIOS)
    governor_names = governor_names or list(X1_GOVERNORS)
    if jobs != 1:
        if with_memory:
            raise ReproError("x1 with_memory=True cannot run through the fleet")
        return _x1_fleet(
            scenario_names, governor_names, duration_s, eval_seed,
            train_episodes, train_episode_s, jobs,
        )
    chip = exynos5422()
    cells: dict[tuple[str, str], float] = {}
    rl_qos: dict[str, float] = {}
    rows = []
    for scenario_name in scenario_names:
        scenario = get_scenario(scenario_name)
        trace = scenario.trace(duration_s, seed=eval_seed)
        for g in governor_names:
            run = full_system_simulator(
                chip, trace, lambda c, g=g: create(g), with_memory
            ).run()
            cells[(scenario_name, g)] = run.energy_per_qos_j

        policies = make_policies(chip)
        for episode in range(train_episodes):
            ep_trace = scenario.trace(train_episode_s, seed=episode)
            full_system_simulator(chip, ep_trace, policies, with_memory).run()
        for p in policies.values():
            p.online = False
        rl = full_system_simulator(chip, trace, policies, with_memory).run()
        cells[(scenario_name, "rl-policy")] = rl.energy_per_qos_j
        rl_qos[scenario_name] = rl.qos.mean_qos
        rows.append(
            [scenario_name]
            + [cells[(scenario_name, g)] * 1e3 for g in governor_names]
            + [rl.energy_per_qos_j * 1e3, rl.qos.mean_qos]
        )
    report = format_table(
        ["scenario"] + governor_names + ["rl-policy", "rl QoS"],
        rows,
        title=(
            "X1: energy/QoS [mJ/unit] with C-states + DVFS transition costs "
            "+ thermals enabled"
        ),
    )
    return X1Result(report=report, cells_j=cells, rl_qos=rl_qos)


def _x1_fleet(
    scenario_names: list[str],
    governor_names: list[str],
    duration_s: float,
    eval_seed: int,
    train_episodes: int,
    train_episode_s: float,
    jobs: int,
) -> X1Result:
    """X1 through the fleet: one full-system job per (scenario, policy)."""
    from repro.fleet import FleetSpec, run_fleet

    spec = FleetSpec(
        scenarios=tuple(scenario_names),
        governors=tuple(governor_names),
        seeds=(eval_seed,),
        include_rl=True,
        duration_s=duration_s,
        train_episodes=train_episodes,
        train_episode_s=train_episode_s,
        full_system=True,
    )
    fleet = run_fleet(spec, jobs=jobs)
    fleet.raise_on_failure()
    cells: dict[tuple[str, str], float] = {}
    rl_qos: dict[str, float] = {}
    for s in fleet.successes:
        cells[(s.spec.scenario, s.spec.governor)] = s.energy_per_qos_j
        if s.spec.governor == "rl-policy":
            rl_qos[s.spec.scenario] = s.mean_qos
    rows = [
        [name]
        + [cells[(name, g)] * 1e3 for g in governor_names]
        + [cells[(name, "rl-policy")] * 1e3, rl_qos[name]]
        for name in scenario_names
    ]
    report = format_table(
        ["scenario"] + governor_names + ["rl-policy", "rl QoS"],
        rows,
        title=(
            "X1: energy/QoS [mJ/unit] with C-states + DVFS transition costs "
            "+ thermals enabled"
        ),
    )
    return X1Result(report=report, cells_j=cells, rl_qos=rl_qos)


@dataclass(frozen=True)
class X2Result:
    """X2: seed stability of the headline gap on one scenario.

    Attributes:
        report: The rendered mean +- CI table.
        measures: Per-policy :class:`RepeatedMeasure` of energy/QoS.
    """

    report: str
    measures: dict[str, RepeatedMeasure]


def x2_seed_stability(
    scenario_name: str = "gaming",
    governor_names: list[str] | None = None,
    eval_seeds: list[int] | None = None,
    duration_s: float = 20.0,
    train_episodes: int = 16,
    jobs: int = 1,
) -> X2Result:
    """Repeat the RL-vs-governors comparison across evaluation seeds.

    ``jobs != 1`` fans every (policy, seed) evaluation out over worker
    processes via :mod:`repro.fleet` (``0`` = CPU count): the policy is
    trained once, checkpointed to a temporary directory, and each seed's
    evaluation reloads it in its worker.
    """
    governor_names = governor_names or ["ondemand", "conservative", "interactive"]
    eval_seeds = eval_seeds or [100, 200, 300, 400, 500]
    chip = exynos5422()
    scenario = get_scenario(scenario_name)
    training = train_policy(
        chip, scenario, episodes=train_episodes, episode_duration_s=duration_s
    )

    if jobs != 1:
        measures = _x2_fleet_measures(
            scenario_name, governor_names, eval_seeds, duration_s,
            training.policies, jobs,
        )
    else:
        def rl_measure(seed: int) -> float:
            from repro.core.trainer import evaluate_policy

            trace = scenario.trace(duration_s, seed=seed)
            return evaluate_policy(
                chip, training.policies, trace
            ).energy_per_qos_j

        measures = {"rl-policy": repeat_over_seeds(rl_measure, eval_seeds)}
        for name in governor_names:
            def measure(seed: int, name=name) -> float:
                trace = scenario.trace(duration_s, seed=seed)
                return Simulator(
                    chip, trace, lambda c: create(name)
                ).run().energy_per_qos_j

            measures[name] = repeat_over_seeds(measure, eval_seeds)

    report = format_table(
        ["policy", "mean E/QoS [mJ/unit]", "95% CI ±"],
        [
            (name, m.mean * 1e3, m.ci_halfwidth * 1e3)
            for name, m in measures.items()
        ],
        title=(
            f"X2: {scenario_name} energy/QoS over {len(eval_seeds)} "
            "evaluation seeds"
        ),
    )
    return X2Result(report=report, measures=measures)


def _x2_fleet_measures(
    scenario_name: str,
    governor_names: list[str],
    eval_seeds: list[int],
    duration_s: float,
    policies,
    jobs: int,
) -> dict[str, RepeatedMeasure]:
    """X2's per-seed evaluations through the fleet.

    The trained policies are checkpointed to a temporary directory so
    each worker can reload them; the Q-tables round-trip losslessly, so
    the measures match the in-memory evaluation.
    """
    from repro.core.checkpoint import save_policies
    from repro.fleet import JobSpec

    measures: dict[str, RepeatedMeasure] = {}
    with tempfile.TemporaryDirectory(prefix="repro-x2-") as checkpoint_dir:
        save_policies(policies, checkpoint_dir)
        measures["rl-policy"] = repeat_jobs_over_seeds(
            JobSpec(
                scenario=scenario_name,
                governor=f"checkpoint:{checkpoint_dir}",
                duration_s=duration_s,
            ),
            eval_seeds,
            jobs=jobs,
        )
    for name in governor_names:
        measures[name] = repeat_jobs_over_seeds(
            JobSpec(scenario=scenario_name, governor=name,
                    duration_s=duration_s),
            eval_seeds,
            jobs=jobs,
        )
    return measures
