"""E4 — decision latency: hardware vs software implementation.

Reproduces both latency claims (journal 3.92x typical; DAC "up to 40x"
best case) from the calibrated software and hardware latency models.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.tables import format_table
from repro.hw.latency import (
    HardwareLatencyModel,
    LatencyComparison,
    SoftwareLatencyModel,
    compare_latency,
)
from repro.soc.chip import Chip
from repro.soc.presets import exynos5422

PAPER_TYPICAL_SPEEDUP = 3.92
"""The journal's average hardware-over-software decision speedup."""

PAPER_BEST_CASE_SPEEDUP = 40.0
"""The DAC abstract's 'up to 40x' latency reduction."""


@dataclass(frozen=True)
class E4Result:
    """E4 outputs.

    Attributes:
        report: The rendered latency table and band summary.
        rows: Per-OPP comparisons on the governor's host cluster.
        typical: The warm, top-LITTLE-clock, single-cluster comparison
            (the journal's 3.92x reading).
        best_case: The cold, floor-clock, batched comparison (the DAC
            'up to 40x' reading).
    """

    report: str
    rows: tuple[LatencyComparison, ...]
    typical: LatencyComparison
    best_case: LatencyComparison


def e4_decision_latency(
    chip: Chip | None = None,
    software: SoftwareLatencyModel | None = None,
    hardware: HardwareLatencyModel | None = None,
) -> E4Result:
    """Run the E4 latency comparison.

    Args:
        chip: The MPSoC whose LITTLE-class (lowest-capacity) cluster
            hosts the software governor; the Exynos preset by default.
        software: Software-path latency model.
        hardware: Hardware-path latency model.
    """
    chip = chip or exynos5422()
    host = min(
        chip.clusters,
        key=lambda c: c.spec.core.capacity * c.spec.opp_table.max_freq_hz,
    )
    rows = tuple(
        compare_latency(
            opp.freq_hz,
            software,
            hardware,
            label=f"{host.spec.name} @ {opp.freq_mhz:.0f} MHz",
        )
        for opp in host.spec.opp_table
    )
    typical = compare_latency(
        host.spec.opp_table.max_freq_hz, software, hardware
    )
    best_case = compare_latency(
        host.spec.opp_table.min_freq_hz,
        software,
        hardware,
        cold=True,
        n_clusters=len(chip),
    )
    hw = hardware or HardwareLatencyModel()
    sw = software or SoftwareLatencyModel()
    report = "\n".join(
        [
            format_table(
                ["CPU operating point", "SW [us]", "HW [us]", "speedup"],
                [
                    (r.label, r.software_s * 1e6, r.hardware_s * 1e6, r.speedup)
                    for r in rows
                ],
                title="E4: policy decision latency, software vs hardware",
            ),
            "",
            f"typical case (warm cache, {typical.label}, single cluster): "
            f"{typical.speedup:.2f}x   (journal claim: {PAPER_TYPICAL_SPEEDUP}x)",
            f"best case (cold cache, floor clock, batched {len(chip)} clusters):  "
            f"{best_case.speedup:.1f}x   (DAC claim: up to "
            f"{PAPER_BEST_CASE_SPEEDUP:.0f}x)",
            "",
            f"hardware step latency (pipeline + MMIO): "
            f"{hw.decision_latency_s(1) * 1e6:.3f} us",
            f"software instruction path: {sw.cycles():.0f} CPU cycles "
            f"+ {sw.cache_misses_warm} DRAM access(es)",
        ]
    )
    return E4Result(report=report, rows=rows, typical=typical, best_case=best_case)
