"""E1/E2/E3 — the headline comparison experiments.

All three experiments view one underlying computation — the
scenarios x governors sweep with the RL policy trained per scenario —
through different lenses: E1 averages energy/QoS per governor, E2 breaks
it down per scenario, E3 reports the QoS side.  ``run_headline_sweep``
produces the shared data; the three report builders are pure functions
over it, so callers (benches, notebooks) pay for the sweep once.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.stats import mean
from repro.analysis.sweep import SweepResult, sweep
from repro.analysis.tables import format_table
from repro.core.config import PolicyConfig
from repro.governors import BASELINE_SIX
from repro.qos.energy_per_qos import improvement_percent
from repro.soc.chip import Chip
from repro.soc.presets import exynos5422
from repro.workload.scenarios import EVALUATION_SET

PAPER_IMPROVEMENT_PERCENT = 31.66
"""The journal abstract's claimed mean energy/QoS reduction."""


def run_headline_sweep(
    chip: Chip | None = None,
    scenario_names: list[str] | None = None,
    governor_names: list[str] | None = None,
    duration_s: float = 20.0,
    eval_seed: int = 100,
    train_episodes: int = 20,
    policy_config: PolicyConfig | None = None,
    jobs: int = 1,
) -> SweepResult:
    """The E1/E2/E3 data: six baselines + the RL policy over the
    evaluation scenario set (see DESIGN.md E1-E3).

    ``jobs != 1`` fans the grid out over worker processes via
    :mod:`repro.fleet` (``0`` = CPU count); rows are bit-identical to
    the serial run.
    """
    return sweep(
        chip or exynos5422(),
        scenario_names or list(EVALUATION_SET),
        governor_names or list(BASELINE_SIX),
        include_rl=True,
        duration_s=duration_s,
        eval_seed=eval_seed,
        train_episodes=train_episodes,
        policy_config=policy_config,
        jobs=jobs,
    )


@dataclass(frozen=True)
class E1Result:
    """E1: mean energy/QoS per governor and the headline improvement.

    Attributes:
        report: The rendered table + improvement lines.
        mean_of_six_j: Mean energy/QoS of the six baselines [J/unit].
        rl_j: The RL policy's mean energy/QoS [J/unit].
        improvement_percent: The headline number (paper: 31.66).
        per_governor_improvement: RL's improvement over each baseline.
    """

    report: str
    mean_of_six_j: float
    rl_j: float
    improvement_percent: float
    per_governor_improvement: dict[str, float]


def e1_energy_per_qos(result: SweepResult) -> E1Result:
    """Build the E1 headline comparison from a sweep."""
    rows = [
        (governor, result.mean_energy_per_qos(governor) * 1e3)
        for governor in result.governors()
    ]
    baselines = [g for g in result.governors() if g != "rl-policy"]
    mean_six = mean([result.mean_energy_per_qos(g) for g in baselines])
    rl = result.mean_energy_per_qos("rl-policy")
    gain = improvement_percent(mean_six, rl)
    per_gov = {g: result.improvement_over(g, "rl-policy") for g in baselines}
    lines = [
        format_table(
            ["governor", "mean E/QoS [mJ/unit]"],
            rows,
            title="E1: average energy per unit QoS (six-scenario evaluation set)",
        ),
        "",
        f"mean of the six previous governors: {mean_six * 1e3:.3f} mJ/unit",
        f"proposed RL policy:                 {rl * 1e3:.3f} mJ/unit",
        f"improvement vs mean-of-six:         {gain:.2f}%  "
        f"(paper: {PAPER_IMPROVEMENT_PERCENT}%)",
        "",
        "per-governor improvement of the RL policy:",
    ]
    for g, v in per_gov.items():
        lines.append(f"  vs {g:<13s} {v:7.2f}%")
    return E1Result(
        report="\n".join(lines),
        mean_of_six_j=mean_six,
        rl_j=rl,
        improvement_percent=gain,
        per_governor_improvement=per_gov,
    )


@dataclass(frozen=True)
class E2Result:
    """E2: the per-scenario breakdown.

    Attributes:
        report: The rendered scenario x governor table.
        cells_j: energy/QoS per (scenario, governor) [J/unit].
    """

    report: str
    cells_j: dict[tuple[str, str], float]

    def rl_within(self, scenario: str, factor: float) -> bool:
        """Whether RL is within ``factor`` of the best baseline there."""
        rl = self.cells_j[(scenario, "rl-policy")]
        best = min(
            v for (s, g), v in self.cells_j.items()
            if s == scenario and g != "rl-policy"
        )
        return rl <= best * factor


def e2_per_scenario(result: SweepResult) -> E2Result:
    """Build the E2 per-scenario breakdown from a sweep."""
    governors = result.governors()
    rows = []
    cells: dict[tuple[str, str], float] = {}
    for scenario in result.scenarios():
        row = [scenario]
        for g in governors:
            value = result.cell(scenario, g).energy_per_qos_j
            cells[(scenario, g)] = value
            row.append(value * 1e3)
        rows.append(row)
    report = format_table(
        ["scenario"] + governors,
        rows,
        title="E2: energy per unit QoS [mJ/unit] by scenario and governor",
    )
    return E2Result(report=report, cells_j=cells)


@dataclass(frozen=True)
class E3Result:
    """E3: QoS preservation.

    Attributes:
        report: The rendered table.
        mean_qos: Mean QoS per governor across scenarios.
        miss_rate: Mean deadline-miss rate per governor.
        mean_energy_j: Mean energy per governor.
    """

    report: str
    mean_qos: dict[str, float]
    miss_rate: dict[str, float]
    mean_energy_j: dict[str, float]


def e3_qos_preservation(result: SweepResult) -> E3Result:
    """Build the E3 QoS-preservation view from a sweep."""
    mean_qos: dict[str, float] = {}
    miss: dict[str, float] = {}
    energy: dict[str, float] = {}
    rows = []
    for governor in result.governors():
        cells = [r for r in result.rows if r.governor == governor]
        mean_qos[governor] = mean([c.mean_qos for c in cells])
        miss[governor] = mean([c.deadline_miss_rate for c in cells])
        energy[governor] = mean([c.energy_j for c in cells])
        rows.append(
            (governor, mean_qos[governor], miss[governor] * 100, energy[governor])
        )
    report = format_table(
        ["governor", "mean QoS", "miss rate [%]", "mean energy [J]"],
        rows,
        title="E3: QoS preservation across the evaluation set",
    )
    return E3Result(report=report, mean_qos=mean_qos, miss_rate=miss,
                    mean_energy_j=energy)
