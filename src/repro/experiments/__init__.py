"""Every paper experiment as a library function.

The ``benchmarks/`` tree wraps these for ``pytest-benchmark``; users can
run them programmatically:

    from repro.experiments import run_headline_sweep, e1_energy_per_qos
    result = e1_energy_per_qos(run_headline_sweep())
    print(result.report)

Module map (ids match DESIGN.md's experiment index):

* :mod:`repro.experiments.headline`   — E1, E2, E3
* :mod:`repro.experiments.latency`    — E4
* :mod:`repro.experiments.learning`   — E5, E6
* :mod:`repro.experiments.hardware`   — E7, A4, A6
* :mod:`repro.experiments.ablations`  — A1, A2, A3
* :mod:`repro.experiments.robustness` — X1, X2
"""

from repro.experiments.ablations import (
    A1Result,
    A2Result,
    A3Result,
    a1_state_ablation,
    a2_reward_sweep,
    a3_learner_ablation,
    static_oracle,
)
from repro.experiments.hardware import (
    A4Result,
    A6Result,
    E7Result,
    a4_wordlength,
    a6_fpga_resources,
    decision_agreement,
    e7_hw_fidelity,
    transfer_to_hardware,
)
from repro.experiments.headline import (
    E1Result,
    E2Result,
    E3Result,
    PAPER_IMPROVEMENT_PERCENT,
    e1_energy_per_qos,
    e2_per_scenario,
    e3_qos_preservation,
    run_headline_sweep,
)
from repro.experiments.latency import (
    E4Result,
    PAPER_BEST_CASE_SPEEDUP,
    PAPER_TYPICAL_SPEEDUP,
    e4_decision_latency,
)
from repro.experiments.learning import (
    E5Result,
    E6Result,
    e5_learning_curve,
    e6_adaptation,
)
from repro.experiments.robustness import (
    X1Result,
    X2Result,
    full_system_simulator,
    x1_full_system,
    x2_seed_stability,
)

__all__ = [
    "A1Result",
    "A2Result",
    "A3Result",
    "A4Result",
    "A6Result",
    "E1Result",
    "E2Result",
    "E3Result",
    "E4Result",
    "E5Result",
    "E6Result",
    "E7Result",
    "PAPER_BEST_CASE_SPEEDUP",
    "PAPER_IMPROVEMENT_PERCENT",
    "PAPER_TYPICAL_SPEEDUP",
    "X1Result",
    "X2Result",
    "a1_state_ablation",
    "a2_reward_sweep",
    "a3_learner_ablation",
    "a4_wordlength",
    "a6_fpga_resources",
    "decision_agreement",
    "e1_energy_per_qos",
    "e2_per_scenario",
    "e3_qos_preservation",
    "e4_decision_latency",
    "e5_learning_curve",
    "e6_adaptation",
    "e7_hw_fidelity",
    "full_system_simulator",
    "run_headline_sweep",
    "static_oracle",
    "transfer_to_hardware",
    "x1_full_system",
    "x2_seed_stability",
]
