#!/usr/bin/env python3
"""Bring your own workload and chip: define a custom phase-structured
scenario (a navigation app: map rendering, GPS fixes, reroute bursts),
a custom symmetric chip, save/load the trace as CSV, and run the policy.

Run:
    python examples/custom_scenario.py
"""

import tempfile
from pathlib import Path

from repro import Simulator, Trace, create, evaluate_policy, train_policy
from repro.soc import Chip, ClusterSpec, CoreSpec, make_table
from repro.workload import PhaseMachine, PhaseSpec, Scenario


def navigation_scenario() -> Scenario:
    """A turn-by-turn navigation app."""

    def machine() -> PhaseMachine:
        phases = [
            # Map view redraws at 30 fps with light work.
            PhaseSpec("map_render", period_s=1 / 30, work_mean=6.0e6, work_cv=0.25,
                      deadline_factor=1.5, dwell_mean_s=6.0, dwell_min_s=2.0),
            # A GPS fix + position filter every 100 ms.
            PhaseSpec("gps_fix", period_s=0.1, work_mean=2.5e6, work_cv=0.2,
                      deadline_factor=2.0, dwell_mean_s=3.0, dwell_min_s=1.0),
            # Rerouting: a heavy burst of graph search.
            PhaseSpec("reroute", period_s=0.04, work_mean=5.0e7, work_cv=0.3,
                      deadline_factor=5.0, dwell_mean_s=0.6, dwell_min_s=0.3,
                      parallelism=2),
        ]
        transitions = [
            [0.55, 0.35, 0.10],
            [0.60, 0.30, 0.10],
            [0.70, 0.30, 0.00],
        ]
        return PhaseMachine(phases, transitions, initial=0)

    return Scenario("navigation", "map render / GPS fixes / reroute bursts", machine)


def automotive_chip() -> Chip:
    """A symmetric quad-core infotainment-class SoC."""
    core = CoreSpec(name="A55", capacity=1.3, ceff_f=2.0e-10, leak_a_per_v=0.04)
    table = make_table(
        [400, 700, 1000, 1300, 1600, 1900],
        [0.90, 0.94, 0.99, 1.05, 1.12, 1.20],
    )
    return Chip("auto-soc", [ClusterSpec("cpu", core, n_cores=4, opp_table=table)])


def main() -> None:
    scenario = navigation_scenario()
    chip = automotive_chip()

    # Traces round-trip through CSV, so recorded device traces drop in.
    trace = scenario.trace(20.0, seed=7)
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "navigation.csv"
        trace.to_csv(path)
        trace = Trace.from_csv(path)
        print(f"trace: {len(trace)} work units over {trace.duration_s:.0f} s "
              f"(round-tripped through {path.name})")

    print("training the RL policy on the custom scenario/chip ...")
    training = train_policy(chip, scenario, episodes=12, episode_duration_s=20.0)
    rl = evaluate_policy(chip, training.policies, trace)
    ondemand = Simulator(chip, trace, lambda c: create("ondemand")).run()
    conservative = Simulator(chip, trace, lambda c: create("conservative")).run()

    print()
    for run in (rl, ondemand, conservative):
        print(run.summary())


if __name__ == "__main__":
    main()
