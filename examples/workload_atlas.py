#!/usr/bin/env python3
"""Workload atlas: characterise every built-in scenario and show where
each governor spends its time on the most demanding one.

Run:
    python examples/workload_atlas.py
"""

from repro import Simulator, create, exynos5422
from repro.sim.residency import residency
from repro.workload.characterize import compare_profiles, profile
from repro.workload.scenarios import SCENARIOS, get_scenario


def main() -> None:
    # 1. The behavioural characteristics the paper's policy learns from.
    profiles = [
        profile(SCENARIOS[name].trace(30.0, seed=0)) for name in sorted(SCENARIOS)
    ]
    print(compare_profiles(profiles))

    # 2. Residency: why reactive governors burn energy on gaming.
    print("\nOPP residency on gaming (20 s), big cluster:\n")
    chip = exynos5422()
    trace = get_scenario("gaming").trace(20.0, seed=100)
    n_opps = {c.spec.name: len(c.spec.opp_table) for c in chip}
    for governor in ("ondemand", "conservative", "performance"):
        run = Simulator(
            chip, trace, lambda c: create(governor), record_samples=True
        ).run()
        report = residency(run, n_opps=n_opps)["big"]
        print(f"--- {governor} "
              f"(E/QoS {run.energy_per_qos_j * 1e3:.1f} mJ/unit) ---")
        print(report.render())
        print()


if __name__ == "__main__":
    main()
