#!/usr/bin/env python3
"""Battery life: what the energy/QoS numbers mean for screen-on time.

Runs the day-in-the-life mixed scenario under three governors plus the
RL policy and projects each run's average power onto a phone battery.

Run:
    python examples/battery_life.py
"""

from repro import (
    Simulator,
    create,
    evaluate_policy,
    exynos5422,
    get_scenario,
    train_policy,
)
from repro.analysis.tables import format_table
from repro.power import Battery


def main() -> None:
    chip = exynos5422()
    scenario = get_scenario("mixed_daily")
    eval_trace = scenario.trace(30.0, seed=100)

    runs = []
    for name in ("performance", "ondemand", "conservative"):
        runs.append((name, Simulator(chip, eval_trace, lambda c: create(name)).run()))

    print("training the RL policy on the mixed daily scenario ...")
    training = train_policy(chip, scenario, episodes=15, episode_duration_s=20.0)
    runs.append(("rl-policy", evaluate_policy(chip, training.policies, eval_trace)))

    rows = []
    for name, run in runs:
        battery = Battery()  # ~3000 mAh @ 3.85 V
        hours = battery.runtime_estimate_s(run.average_power_w) / 3600.0
        rows.append((name, run.average_power_w, run.qos.mean_qos, hours))

    print()
    print(
        format_table(
            ["governor", "avg power [W]", "QoS", "est. screen-on [h]"],
            rows,
            title="projected battery life, mixed daily usage (SoC power only)",
        )
    )


if __name__ == "__main__":
    main()
