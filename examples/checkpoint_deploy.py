#!/usr/bin/env python3
"""The deployment story end-to-end: train offline, checkpoint, restore,
quantise into the hardware datapath, and verify on-device behaviour.

Run:
    python examples/checkpoint_deploy.py
"""

import tempfile

from repro import Simulator, exynos5422, get_scenario, train_policy
from repro.core.checkpoint import load_policies, save_policies
from repro.hw.hwpolicy import HardwareRLPolicy


def main() -> None:
    chip = exynos5422()
    scenario = get_scenario("mixed_daily")

    # 1. "Factory" training run.
    print("training on the mixed daily scenario ...")
    training = train_policy(chip, scenario, episodes=12, episode_duration_s=20.0)

    with tempfile.TemporaryDirectory() as tmp:
        # 2. Ship the checkpoint (config + Q-tables).
        path = save_policies(training.policies, f"{tmp}/rl-v1")
        print(f"checkpoint written: {path}")

        # 3. "Device" side: restore, validate against the chip, evaluate.
        restored = load_policies(path, chip=chip)
        trace = scenario.trace(20.0, seed=321)
        sw = Simulator(chip, trace, restored).run()
        print(f"restored software policy:  {sw.summary()}")

        # 4. Quantise into the FPGA datapath and run the hardware policy.
        hw_policies = {}
        for name, soft in restored.items():
            hard = HardwareRLPolicy(soft.config, online=False)
            hard.load_from_software(soft)
            hw_policies[name] = hard
        hw = Simulator(chip, trace, hw_policies).run()
        print(f"hardware (Q7.8) policy:    {hw.summary()}")

        delta = abs(hw.energy_per_qos_j - sw.energy_per_qos_j) / sw.energy_per_qos_j
        print(f"\nquantisation E/QoS delta: {delta:.2%}")
        latency = max(p.mean_decision_latency_s for p in hw_policies.values())
        print(f"modelled hardware decision latency: {latency * 1e6:.3f} us/step")


if __name__ == "__main__":
    main()
