#!/usr/bin/env python3
"""Full-system realism: every optional substrate at once.

Runs the mixed daily scenario with thermals + throttling, cpuidle
C-states, DVFS transition costs, DRAM power, and class-weighted QoS —
the closest this simulator gets to a real handset — and shows how much
each subsystem contributes to the energy bill.

Run:
    python examples/full_system_realism.py
"""

from repro import Simulator, create, exynos5422, get_scenario
from repro.analysis.tables import format_table
from repro.idle.governor import MenuIdleGovernor
from repro.mem.dram import DRAMModel
from repro.qos.classes import default_mobile_classes
from repro.soc.transition import DVFSTransitionModel
from repro.thermal.rc import default_thermal_model
from repro.thermal.throttle import ThermalThrottle


def run(chip, trace, **extras):
    """One ondemand run with the given subsystems attached."""
    sim = Simulator(chip, trace, lambda c: create("ondemand"), **extras)
    return sim.run()


def main() -> None:
    chip = exynos5422()
    trace = get_scenario("mixed_daily").trace(30.0, seed=7)

    configs = [
        ("bare (CPU power only)", {}),
        ("+ thermals/throttle", dict(
            thermal=default_thermal_model(chip.cluster_names),
            throttle=ThermalThrottle(trip_c=85.0),
        )),
        ("+ cpuidle C-states", dict(idle_governor=MenuIdleGovernor())),
        ("+ DVFS transition costs", dict(transition=DVFSTransitionModel())),
        ("+ DRAM power", dict(memory=DRAMModel())),
    ]
    rows = []
    cumulative: dict = {}
    for label, extra in configs:
        cumulative.update(extra)
        result = run(chip, trace, **dict(cumulative))
        rows.append((label, result.total_energy_j, result.average_power_w,
                     result.qos.mean_qos))
    print(format_table(
        ["configuration (cumulative)", "energy [J]", "avg power [W]", "QoS"],
        rows,
        title="ondemand on mixed_daily (30 s): subsystem-by-subsystem",
    ))
    print(
        "\n(note: attaching the thermal model *lowers* energy because "
        "leakage is\n characterised at 45 C — a cool chip leaks less; "
        "C-states then cut idle\n power, and transitions/DRAM add their "
        "costs back on top)"
    )

    # Class-weighted QoS: how the same run scores when interactive frames
    # dominate the metric.
    weighted = Simulator(
        chip, trace, lambda c: create("ondemand"),
        qos_classes=default_mobile_classes(), **cumulative,
    ).run()
    print(f"\nclass-weighted QoS (interactive x4, background x0.25): "
          f"{weighted.qos.mean_qos:.4f}")


if __name__ == "__main__":
    main()
