#!/usr/bin/env python3
"""Pareto explorer: trace the policy's own energy-QoS frontier by
sweeping the reward weight, and place the baselines on the same plane.

Run:
    python examples/pareto_explorer.py
"""

from repro import Simulator, create, evaluate_policy, exynos5422, get_scenario, train_policy
from repro.analysis.pareto import FrontierPoint, frontier_table
from repro.core import PolicyConfig
from repro.governors import BASELINE_SIX


def main() -> None:
    chip = exynos5422()
    scenario = get_scenario("gaming")
    trace = scenario.trace(20.0, seed=100)

    points = []
    for name in BASELINE_SIX:
        run = Simulator(chip, trace, lambda c, n=name: create(n)).run()
        points.append(FrontierPoint(name, run.total_energy_j, run.qos.mean_qos))

    print("sweeping the policy's QoS weight (lambda) ...")
    for lam in (0.25, 1.0, 4.0):
        training = train_policy(
            chip, scenario, episodes=12, episode_duration_s=20.0,
            config=PolicyConfig(lambda_qos=lam),
        )
        run = evaluate_policy(chip, training.policies, trace)
        points.append(
            FrontierPoint(f"rl λ={lam:g}", run.total_energy_j, run.qos.mean_qos)
        )

    print()
    print(frontier_table(points))
    print(
        "\nThe lambda knob moves the policy along its own frontier: small "
        "lambda trades QoS\nfor energy, large lambda buys QoS back — pick "
        "the operating point your product needs."
    )


if __name__ == "__main__":
    main()
