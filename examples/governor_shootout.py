#!/usr/bin/env python3
"""Governor shootout: every baseline DVFS governor plus the RL policy on
one scenario, reproducing the paper's comparison at example scale.

Run:
    python examples/governor_shootout.py [scenario]

where scenario is any of the built-in names (default: web_browsing).
"""

import sys

from repro import (
    BASELINE_SIX,
    Simulator,
    create,
    evaluate_policy,
    exynos5422,
    get_scenario,
    train_policy,
)
from repro.analysis.tables import format_table


def main() -> None:
    scenario_name = sys.argv[1] if len(sys.argv) > 1 else "web_browsing"
    chip = exynos5422()
    scenario = get_scenario(scenario_name)
    eval_trace = scenario.trace(20.0, seed=100)

    rows = []
    for name in BASELINE_SIX + ["schedutil"]:
        run = Simulator(chip, eval_trace, lambda c: create(name)).run()
        rows.append((name, run.total_energy_j, run.qos.mean_qos,
                     run.qos.deadline_miss_rate * 100, run.energy_per_qos_j * 1e3))

    print(f"training the RL policy on {scenario_name!r} ...")
    training = train_policy(chip, scenario, episodes=15, episode_duration_s=20.0)
    rl = evaluate_policy(chip, training.policies, eval_trace)
    rows.append(("rl-policy", rl.total_energy_j, rl.qos.mean_qos,
                 rl.qos.deadline_miss_rate * 100, rl.energy_per_qos_j * 1e3))

    rows.sort(key=lambda r: r[4])
    print()
    print(
        format_table(
            ["governor", "energy [J]", "QoS", "miss [%]", "E/QoS [mJ/unit]"],
            rows,
            title=f"scenario: {scenario_name} (20 s, seed 100) — best first",
        )
    )


if __name__ == "__main__":
    main()
