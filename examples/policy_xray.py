#!/usr/bin/env python3
"""Policy X-ray: read what the Q-table learned.

Trains the policy on gaming, then prints its greedy decision surface —
the OPP delta it takes in each (utilisation, OPP) cell at relaxed vs
critical deadline slack — and a plain-language sanity report.

Run:
    python examples/policy_xray.py
"""

from repro import exynos5422, get_scenario, train_policy
from repro.core.introspect import decision_surface, sanity_report


def main() -> None:
    chip = exynos5422()
    print("training on gaming ...")
    training = train_policy(chip, get_scenario("gaming"), episodes=15,
                            episode_duration_s=20.0)

    for name, policy in training.policies.items():
        print(f"\n===== {name} cluster =====")
        print(sanity_report(policy))
        surface = decision_surface(policy)
        slack_bins = policy.config.slack_bins
        print()
        print(surface.render_slice(slack_bin=slack_bins - 1))  # relaxed
        print()
        print(surface.render_slice(slack_bin=0))  # critical
    print(
        "\nReading: at relaxed slack the policy steps down or holds; at "
        "critical slack it\nsteps up — learned, not hard-coded."
    )


if __name__ == "__main__":
    main()
