#!/usr/bin/env python3
"""Hardware-in-the-loop: run the fixed-point FPGA model of the policy,
with the thermal model and throttling active, and report the modelled
CPU-FPGA decision latency against the software implementation.

Run:
    python examples/hardware_in_the_loop.py
"""

from repro import Simulator, exynos5422, get_scenario, train_policy
from repro.analysis.tables import format_table
from repro.hw.hwpolicy import HardwareRLPolicy
from repro.hw.latency import compare_latency
from repro.thermal.rc import default_thermal_model
from repro.thermal.throttle import ThermalThrottle


def main() -> None:
    chip = exynos5422()
    scenario = get_scenario("camera_preview")

    # 1. Train the software policy, then quantise it into the datapath.
    print("training the software policy ...")
    training = train_policy(chip, scenario, episodes=12, episode_duration_s=15.0)
    hw_policies = {}
    for name, soft in training.policies.items():
        hard = HardwareRLPolicy(soft.config, online=False)
        hard.load_from_software(soft)
        hw_policies[name] = hard
        print(
            f"  {name}: Q-table quantised to {hard.qformat} "
            f"({hard.datapath.bram_bits() // 8} bytes of BRAM)"
        )

    # 2. Run the hardware policy with thermals + throttling in the loop.
    thermal = default_thermal_model(chip.cluster_names)
    sim = Simulator(
        chip,
        scenario.trace(20.0, seed=100),
        hw_policies,
        thermal=thermal,
        throttle=ThermalThrottle(trip_c=85.0),
    )
    result = sim.run()
    print()
    print(result.summary())
    print(f"peak junction temperature: {thermal.max_temperature_c:.1f} C")
    for name, policy in hw_policies.items():
        print(
            f"  {name}: modelled HW decision latency "
            f"{policy.mean_decision_latency_s * 1e6:.3f} us/step "
            f"over {policy.decisions} decisions"
        )

    # 3. The latency story: hardware vs software decision paths.
    rows = []
    for freq_mhz in (200, 600, 1000, 1400):
        cmp = compare_latency(freq_mhz * 1e6)
        rows.append((f"{freq_mhz} MHz", cmp.software_s * 1e6,
                     cmp.hardware_s * 1e6, cmp.speedup))
    best = compare_latency(0.2e9, cold=True, n_clusters=2)
    print()
    print(
        format_table(
            ["governor CPU clock", "SW [us]", "HW [us]", "speedup"],
            rows,
            title="decision latency: software vs FPGA implementation",
        )
    )
    print(f"best case (cold cache, batched clusters): {best.speedup:.1f}x")


if __name__ == "__main__":
    main()
