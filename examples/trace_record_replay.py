#!/usr/bin/env python3
"""Record/fit/replay: distil a short "recorded" trace into a generative
phase machine, then use the fitted machine to train the policy on
unlimited synthetic data and evaluate back on the original recording.

This is the workflow for users with real device traces: a few minutes
of recording becomes arbitrarily much statistically-similar training
data.

Run:
    python examples/trace_record_replay.py
"""

from repro import Simulator, create, exynos5422, get_scenario, train_policy
from repro.core.trainer import evaluate_policy
from repro.workload import Scenario
from repro.workload.characterize import profile
from repro.workload.fit import fit_phase_machine


def main() -> None:
    chip = exynos5422()

    # 1. "Record" 30 s of device activity (stand-in: a gaming trace).
    recording = get_scenario("gaming").trace(30.0, seed=2024)
    print("recorded trace:")
    print(profile(recording).summary())

    # 2. Fit a 3-phase generative model to the recording.
    fit = fit_phase_machine(recording, n_phases=3, window_s=0.25)
    print("\nfitted demand levels (cycles/window):",
          [f"{level:.3g}" for level in fit.levels])
    for phase in fit.machine.phases:
        if phase.emits:
            print(f"  {phase.name}: period {phase.period_s * 1e3:.1f} ms, "
                  f"work {phase.work_mean:.3g} (cv {phase.work_cv:.2f}), "
                  f"dwell ~{phase.dwell_mean_s:.2f} s")

    # 3. Train the RL policy on *generated* traces from the fitted model.
    fitted_scenario = Scenario("fitted", "fit of the recording",
                               lambda: fit.machine)
    training = train_policy(chip, fitted_scenario, episodes=15,
                            episode_duration_s=20.0)

    # 4. Evaluate on the original recording vs ondemand.
    rl = evaluate_policy(chip, training.policies, recording)
    ondemand = Simulator(chip, recording, lambda c: create("ondemand")).run()
    print()
    print(rl.summary())
    print(ondemand.summary())
    saving = 100 * (1 - rl.energy_per_qos_j / ondemand.energy_per_qos_j)
    print(f"\npolicy trained purely on fitted synthetic data is "
          f"{saving:.1f}% better than ondemand on the real recording")


if __name__ == "__main__":
    main()
