#!/usr/bin/env python3
"""Quickstart: train the RL power-management policy and compare it to
ondemand on a gaming workload.

Run:
    python examples/quickstart.py
"""

from repro import (
    Simulator,
    create,
    evaluate_policy,
    exynos5422,
    get_scenario,
    improvement_percent,
    train_policy,
)


def main() -> None:
    chip = exynos5422()  # a big.LITTLE 4+4 mobile MPSoC
    scenario = get_scenario("gaming")  # menu / 60 fps gameplay / level loads

    # Train the proposed Q-learning policy online over a few episodes.
    print("training the RL policy on the gaming scenario ...")
    training = train_policy(chip, scenario, episodes=12, episode_duration_s=20.0)
    for record in training.history[-3:]:
        print(
            f"  episode {record.episode:2d}: "
            f"E/QoS = {record.energy_per_qos_j * 1e3:.2f} mJ/unit, "
            f"QoS = {record.mean_qos:.3f}"
        )

    # Evaluate greedily on a held-out trace, against the ondemand governor.
    eval_trace = scenario.trace(20.0, seed=100)
    rl = evaluate_policy(chip, training.policies, eval_trace)
    ondemand = Simulator(chip, eval_trace, lambda c: create("ondemand")).run()

    print()
    print(rl.summary())
    print(ondemand.summary())
    gain = improvement_percent(ondemand.energy_per_qos_j, rl.energy_per_qos_j)
    print(f"\nRL policy uses {gain:.1f}% less energy per unit QoS than ondemand.")


if __name__ == "__main__":
    main()
