"""OPP tables: validation, ordering, and lookup semantics."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import OPPError
from repro.soc.opp import OperatingPoint, OPPTable, make_table


class TestOperatingPoint:
    def test_basic_fields(self):
        opp = OperatingPoint(freq_hz=1e9, voltage_v=1.0)
        assert opp.freq_hz == 1e9
        assert opp.freq_mhz == 1000.0

    @pytest.mark.parametrize("freq", [0.0, -1.0])
    def test_rejects_nonpositive_frequency(self, freq):
        with pytest.raises(OPPError):
            OperatingPoint(freq_hz=freq, voltage_v=1.0)

    @pytest.mark.parametrize("volt", [0.0, -0.5])
    def test_rejects_nonpositive_voltage(self, volt):
        with pytest.raises(OPPError):
            OperatingPoint(freq_hz=1e9, voltage_v=volt)

    def test_ordering_is_by_frequency(self):
        slow = OperatingPoint(1e8, 0.9)
        fast = OperatingPoint(2e9, 1.2)
        assert slow < fast


class TestOPPTable:
    def table(self):
        return make_table([200, 600, 1000, 1400], [0.9, 0.95, 1.0, 1.1])

    def test_sorted_ascending(self):
        table = OPPTable(
            [OperatingPoint(1e9, 1.0), OperatingPoint(2e8, 0.9)]
        )
        assert table.frequencies_hz == (2e8, 1e9)

    def test_rejects_empty(self):
        with pytest.raises(OPPError):
            OPPTable([])

    def test_rejects_duplicate_frequency(self):
        with pytest.raises(OPPError, match="duplicate"):
            OPPTable([OperatingPoint(1e9, 1.0), OperatingPoint(1e9, 1.1)])

    def test_rejects_voltage_decreasing_with_frequency(self):
        with pytest.raises(OPPError, match="non-decreasing"):
            OPPTable([OperatingPoint(1e8, 1.1), OperatingPoint(1e9, 0.9)])

    def test_allows_equal_voltage_steps(self):
        table = OPPTable([OperatingPoint(1e8, 1.0), OperatingPoint(1e9, 1.0)])
        assert len(table) == 2

    def test_len_iter_getitem(self):
        table = self.table()
        assert len(table) == 4
        assert [p.freq_mhz for p in table] == [200, 600, 1000, 1400]
        assert table[0].freq_mhz == 200
        assert table[-1].freq_mhz == 1400

    def test_getitem_out_of_range(self):
        with pytest.raises(OPPError, match="out of range"):
            self.table()[4]

    def test_min_max_and_max_index(self):
        table = self.table()
        assert table.min_freq_hz == 200e6
        assert table.max_freq_hz == 1400e6
        assert table.max_index == 3

    def test_index_of_exact(self):
        assert self.table().index_of(600e6) == 1

    def test_index_of_missing_raises(self):
        with pytest.raises(OPPError, match="not in OPP table"):
            self.table().index_of(601e6)

    @pytest.mark.parametrize(
        "freq_mhz,expected",
        [(100, 0), (200, 0), (201, 1), (600, 1), (1000, 2), (1399, 3), (1400, 3), (9999, 3)],
    )
    def test_ceil_index(self, freq_mhz, expected):
        assert self.table().ceil_index(freq_mhz * 1e6) == expected

    @pytest.mark.parametrize(
        "freq_mhz,expected",
        [(100, 0), (200, 0), (599, 0), (600, 1), (1001, 2), (1400, 3), (9999, 3)],
    )
    def test_floor_index(self, freq_mhz, expected):
        assert self.table().floor_index(freq_mhz * 1e6) == expected

    @pytest.mark.parametrize("raw,clamped", [(-5, 0), (0, 0), (2, 2), (3, 3), (99, 3)])
    def test_clamp_index(self, raw, clamped):
        assert self.table().clamp_index(raw) == clamped

    def test_equality(self):
        assert self.table() == self.table()
        assert self.table() != make_table([200], [0.9])

    def test_make_table_length_mismatch(self):
        with pytest.raises(OPPError, match="equal length"):
            make_table([100, 200], [0.9])


@given(
    freqs=st.lists(
        st.integers(min_value=1, max_value=4000), min_size=1, max_size=12, unique=True
    )
)
def test_ceil_floor_consistency(freqs):
    """For any table, ceil(f) picks a frequency >= f (clamped at top) and
    floor(f) picks a frequency <= f (clamped at bottom)."""
    freqs = sorted(freqs)
    volts = [0.8 + 0.001 * i for i in range(len(freqs))]
    table = make_table(freqs, volts)
    for probe_mhz in [0.5, freqs[0], freqs[-1], freqs[-1] + 100, sum(freqs) / len(freqs)]:
        probe = probe_mhz * 1e6
        ci, fi = table.ceil_index(probe), table.floor_index(probe)
        if probe <= table.max_freq_hz:
            assert table[ci].freq_hz >= probe
        else:
            assert ci == table.max_index
        if probe >= table.min_freq_hz:
            assert table[fi].freq_hz <= probe
        else:
            assert fi == 0
        assert fi <= ci or probe < table.min_freq_hz
