"""Q-format fixed-point arithmetic."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import FixedPointError
from repro.hw.fixed_point import DEFAULT_QFORMAT, QFormat


class TestQFormat:
    def test_widths(self):
        fmt = QFormat(7, 8)
        assert fmt.width == 16
        assert fmt.scale == 256
        assert str(fmt) == "Q7.8"

    def test_ranges(self):
        fmt = QFormat(3, 4)
        assert fmt.max_value == pytest.approx(127 / 16)
        assert fmt.min_value == pytest.approx(-8.0)
        assert fmt.resolution == pytest.approx(1 / 16)

    def test_validation(self):
        with pytest.raises(FixedPointError):
            QFormat(-1, 4)
        with pytest.raises(FixedPointError):
            QFormat(0, 0)


class TestQuantize:
    fmt = QFormat(3, 4)

    def test_exact_values(self):
        assert self.fmt.quantize(1.0) == 16
        assert self.fmt.quantize(-2.5) == -40

    def test_rounds_to_nearest(self):
        assert self.fmt.quantize(0.03) == 0  # 0.48 LSB -> 0
        assert self.fmt.quantize(0.04) == 1  # 0.64 LSB -> 1

    def test_saturates_by_default(self):
        assert self.fmt.quantize(100.0) == self.fmt.raw_max
        assert self.fmt.quantize(-100.0) == self.fmt.raw_min

    def test_strict_raises_on_overflow(self):
        with pytest.raises(FixedPointError):
            self.fmt.quantize(100.0, strict=True)

    def test_nan_rejected(self):
        with pytest.raises(FixedPointError):
            self.fmt.quantize(float("nan"))

    def test_dequantize_roundtrip_exact(self):
        for raw in range(self.fmt.raw_min, self.fmt.raw_max + 1):
            assert self.fmt.quantize(self.fmt.dequantize(raw)) == raw

    def test_dequantize_range_checked(self):
        with pytest.raises(FixedPointError):
            self.fmt.dequantize(self.fmt.raw_max + 1)

    @given(value=st.floats(min_value=-7.9, max_value=7.9))
    def test_quantization_error_bounded_by_half_lsb(self, value):
        raw = self.fmt.quantize(value)
        assert abs(self.fmt.dequantize(raw) - value) <= self.fmt.resolution / 2 + 1e-12


class TestArithmetic:
    fmt = QFormat(3, 4)

    def test_add(self):
        a, b = self.fmt.quantize(1.5), self.fmt.quantize(2.25)
        assert self.fmt.dequantize(self.fmt.add(a, b)) == pytest.approx(3.75)

    def test_add_saturates(self):
        top = self.fmt.raw_max
        assert self.fmt.add(top, top) == top

    def test_sub_saturates(self):
        bottom = self.fmt.raw_min
        assert self.fmt.sub(bottom, self.fmt.raw_max) == bottom

    def test_mul(self):
        a, b = self.fmt.quantize(1.5), self.fmt.quantize(2.0)
        assert self.fmt.dequantize(self.fmt.mul(a, b)) == pytest.approx(3.0)

    def test_mul_negative(self):
        a, b = self.fmt.quantize(-1.5), self.fmt.quantize(2.0)
        assert self.fmt.dequantize(self.fmt.mul(a, b)) == pytest.approx(-3.0)

    def test_mul_saturates(self):
        big = self.fmt.quantize(7.0)
        assert self.fmt.mul(big, big) == self.fmt.raw_max

    def test_shift_right_rounds(self):
        assert self.fmt.shift_right(5, 1) == 3  # 2.5 -> 3 (round half up)
        assert self.fmt.shift_right(-5, 1) == -3
        assert self.fmt.shift_right(4, 2) == 1

    def test_shift_zero_is_identity(self):
        assert self.fmt.shift_right(7, 0) == 7

    def test_shift_negative_rejected(self):
        with pytest.raises(FixedPointError):
            self.fmt.shift_right(1, -1)

    @given(
        a=st.floats(min_value=-3.0, max_value=3.0),
        b=st.floats(min_value=-2.0, max_value=2.0),
    )
    def test_mul_matches_float_within_tolerance(self, a, b):
        fmt = DEFAULT_QFORMAT
        raw = fmt.mul(fmt.quantize(a), fmt.quantize(b))
        # Two quantisations plus a product rescale: error bounded by a few
        # LSBs of the inputs' magnitudes.
        tolerance = fmt.resolution * (abs(a) + abs(b) + 1)
        assert abs(fmt.dequantize(raw) - a * b) <= tolerance
