"""Analysis helpers: statistics, tables, and the sweep harness."""

import importlib

import pytest

# ``repro.analysis`` re-exports the ``sweep`` *function*, which shadows the
# submodule attribute; go through importlib to get the module object.
sweep_module = importlib.import_module("repro.analysis.sweep")

from repro.analysis.stats import geomean, mean, normalize_to, stdev
from repro.analysis.sweep import run_baseline, sweep
from repro.analysis.tables import format_table
from repro.errors import ReproError
from repro.soc.presets import tiny_test_chip
from repro.workload.scenarios import Scenario
from repro.workload.phases import PhaseMachine, PhaseSpec


class TestStats:
    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0

    def test_mean_empty(self):
        with pytest.raises(ReproError):
            mean([])

    def test_geomean(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)

    def test_geomean_rejects_nonpositive(self):
        with pytest.raises(ReproError):
            geomean([1.0, 0.0])

    def test_stdev(self):
        assert stdev([1.0, 3.0]) == pytest.approx(2.0**0.5)

    def test_stdev_short(self):
        assert stdev([1.0]) == 0.0

    def test_normalize(self):
        assert normalize_to([2.0, 4.0], 2.0) == [1.0, 2.0]
        with pytest.raises(ReproError):
            normalize_to([1.0], 0.0)


class TestFormatTable:
    def test_basic(self):
        out = format_table(["a", "bb"], [[1, 2.5], ["x", 0.125]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert "a" in lines[0] and "bb" in lines[0]
        assert "2.5" in lines[2]
        assert "0.125" in lines[3]

    def test_title(self):
        out = format_table(["c"], [], title="hello")
        assert out.splitlines()[0] == "hello"

    def test_arity_checked(self):
        with pytest.raises(ReproError):
            format_table(["a", "b"], [[1]])

    def test_no_columns_rejected(self):
        with pytest.raises(ReproError):
            format_table([], [])

    def test_float_formatting(self):
        out = format_table(["x"], [[float("inf")], [float("nan")], [1234.5678]])
        assert "inf" in out and "nan" in out and "1235" in out


def quick_scenario() -> Scenario:
    def machine() -> PhaseMachine:
        return PhaseMachine(
            [PhaseSpec("p", 0.05, 3e6, 0.2, 1.5, dwell_mean_s=5.0, dwell_min_s=2.0)],
            [[1.0]],
        )

    return Scenario("quick", "single steady phase", machine)


class TestSweep:
    def test_run_baseline(self):
        chip = tiny_test_chip()
        result = run_baseline(chip, quick_scenario(), "ondemand", duration_s=3.0)
        assert result.qos.n_units > 0

    def test_sweep_grid_complete(self, monkeypatch):
        chip = tiny_test_chip()
        monkeypatch.setattr(sweep_module, "get_scenario", lambda name: quick_scenario())
        result = sweep(
            chip, ["quick"], ["performance", "powersave"], include_rl=True,
            duration_s=3.0, train_episodes=2,
        )
        assert result.scenarios() == ["quick"]
        assert result.governors() == ["performance", "powersave", "rl-policy"]
        assert result.cell("quick", "performance").energy_j > 0

    def test_sweep_without_rl(self, monkeypatch):
        chip = tiny_test_chip()
        monkeypatch.setattr(sweep_module, "get_scenario", lambda name: quick_scenario())
        result = sweep(chip, ["quick"], ["performance"], include_rl=False,
                       duration_s=2.0)
        assert result.governors() == ["performance"]

    def test_missing_cell_raises(self):
        from repro.analysis.sweep import SweepResult

        with pytest.raises(ReproError):
            SweepResult().cell("a", "b")

    def test_mean_and_improvement(self, monkeypatch):
        chip = tiny_test_chip()
        monkeypatch.setattr(sweep_module, "get_scenario", lambda name: quick_scenario())
        result = sweep(chip, ["quick"], ["performance", "powersave"],
                       include_rl=False, duration_s=3.0)
        perf = result.mean_energy_per_qos("performance")
        save = result.mean_energy_per_qos("powersave")
        # On a trivially feasible workload, powersave is strictly cheaper
        # per delivered QoS than flat-out.
        assert save < perf
        assert result.improvement_over("performance", "powersave") > 0

    def test_empty_scenarios_rejected(self):
        with pytest.raises(ReproError):
            sweep(tiny_test_chip(), [], ["performance"])
