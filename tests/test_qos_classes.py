"""QoS classes and weighted evaluation."""

import pytest

from repro.errors import ConfigurationError
from repro.qos.classes import (
    BACKGROUND,
    BEST_EFFORT,
    INTERACTIVE,
    QoSClass,
    QoSClassMap,
    default_mobile_classes,
    evaluate_jobs_weighted,
)
from repro.workload.task import Job, WorkUnit


def job(kind: str, lateness: float, uid: int, slack: float = 0.1) -> Job:
    u = WorkUnit(uid=uid, release_s=0.0, work=1e6, deadline_s=slack, kind=kind)
    j = Job(u)
    j.execute(1e6, now_s=slack + lateness)
    return j


class TestQoSClass:
    def test_weights_ordered(self):
        assert INTERACTIVE.weight > BEST_EFFORT.weight > BACKGROUND.weight

    def test_positive_weight_required(self):
        with pytest.raises(ConfigurationError):
            QoSClass("zero", weight=0.0)


class TestQoSClassMap:
    def test_default_class(self):
        m = QoSClassMap()
        assert m.class_of("anything") is BEST_EFFORT

    def test_explicit_assignment(self):
        m = QoSClassMap(kind_to_class={"gameplay": INTERACTIVE})
        assert m.weight_of("gameplay") == INTERACTIVE.weight
        assert m.weight_of("other") == BEST_EFFORT.weight

    def test_default_mobile_map_covers_scenarios(self):
        m = default_mobile_classes()
        assert m.class_of("gameplay") is INTERACTIVE
        assert m.class_of("background") is BACKGROUND
        assert m.class_of("page_load") is BEST_EFFORT  # default


class TestWeightedEvaluation:
    def test_all_on_time_is_one(self):
        jobs = [job("gameplay", -0.01, 0), job("background", -0.01, 1)]
        report = evaluate_jobs_weighted(jobs, default_mobile_classes())
        assert report.mean_qos == pytest.approx(1.0)

    def test_interactive_miss_hurts_more_than_background_miss(self):
        classes = default_mobile_classes()
        # Same lateness (half-grace): one interactive miss vs one
        # background miss, each paired with an on-time unit of the other
        # class.
        interactive_miss = [job("gameplay", 0.1, 0), job("background", -0.01, 1)]
        background_miss = [job("gameplay", -0.01, 2), job("background", 0.1, 3)]
        r_int = evaluate_jobs_weighted(interactive_miss, classes)
        r_bg = evaluate_jobs_weighted(background_miss, classes)
        assert r_int.mean_qos < r_bg.mean_qos

    def test_matches_unweighted_when_weights_equal(self):
        from repro.qos.metrics import evaluate_jobs

        jobs = [job("a", -0.01, 0), job("b", 0.05, 1), job("c", 0.25, 2)]
        flat = QoSClassMap(default=BEST_EFFORT)
        weighted = evaluate_jobs_weighted(jobs, flat)
        plain = evaluate_jobs(jobs)
        assert weighted.mean_qos == pytest.approx(plain.mean_qos)
        assert weighted.deadline_miss_rate == plain.deadline_miss_rate

    def test_unfinished_jobs_counted_dropped(self):
        unfinished = Job(WorkUnit(uid=9, release_s=0.0, work=1e6,
                                  deadline_s=0.1, kind="gameplay"))
        report = evaluate_jobs_weighted([unfinished], default_mobile_classes())
        assert report.n_dropped == 1
        assert report.mean_qos == 0.0

    def test_empty(self):
        report = evaluate_jobs_weighted([], default_mobile_classes())
        assert report.n_units == 0
        assert report.mean_qos == 1.0

    def test_bad_grace(self):
        with pytest.raises(ConfigurationError):
            evaluate_jobs_weighted([], default_mobile_classes(), grace_factor=0.0)
