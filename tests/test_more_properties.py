"""Additional property-based tests on newer modules."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw.fixed_point import QFormat
from repro.qos.classes import QoSClassMap
from repro.rl.reward import RewardConfig
from repro.sim.telemetry import initial_observation
from repro.workload.fit import fit_phase_machine
from repro.workload.generator import TraceGenerator
from repro.workload.mix import mix_scenarios
from repro.workload.phases import PhaseMachine, PhaseSpec


class TestFixedPointProperties:
    @given(
        a=st.integers(min_value=-2000, max_value=2000),
        b=st.integers(min_value=-2000, max_value=2000),
    )
    def test_add_commutative_and_bounded(self, a, b):
        fmt = QFormat(3, 4)
        a, b = fmt.saturate(a), fmt.saturate(b)
        assert fmt.add(a, b) == fmt.add(b, a)
        assert fmt.raw_min <= fmt.add(a, b) <= fmt.raw_max

    @given(
        a=st.integers(min_value=-500, max_value=500),
        b=st.integers(min_value=-500, max_value=500),
    )
    def test_mul_commutative(self, a, b):
        fmt = QFormat(5, 6)
        a, b = fmt.saturate(a), fmt.saturate(b)
        assert fmt.mul(a, b) == fmt.mul(b, a)

    @given(a=st.integers(min_value=-4000, max_value=4000),
           bits=st.integers(min_value=0, max_value=8))
    def test_shift_matches_rounded_division(self, a, bits):
        fmt = QFormat(7, 8)
        shifted = fmt.shift_right(a, bits)
        exact = a / (1 << bits)
        assert abs(shifted - exact) <= 0.5 + 1e-12


class TestRewardProperties:
    def _obs(self, energy_j, misses, slack):
        base = initial_observation("c", 0, 10, 1e9, 2e9, 0.01)
        return type(base)(
            **{**base.__dict__, "energy_j": energy_j,
               "deadline_misses": misses, "qos_slack": slack}
        )

    @given(
        e1=st.floats(min_value=0.0, max_value=1.0),
        e2=st.floats(min_value=0.0, max_value=1.0),
        slack=st.floats(min_value=0.0, max_value=1.0),
        misses=st.integers(min_value=0, max_value=5),
    )
    def test_reward_monotone_decreasing_in_energy(self, e1, e2, slack, misses):
        cfg = RewardConfig(energy_scale_j=0.5)
        lo, hi = sorted([e1, e2])
        r_lo = cfg.compute(self._obs(lo, misses, slack))
        r_hi = cfg.compute(self._obs(hi, misses, slack))
        assert r_lo >= r_hi

    @given(
        s1=st.floats(min_value=0.0, max_value=1.0),
        s2=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_reward_monotone_in_slack(self, s1, s2):
        cfg = RewardConfig(energy_scale_j=0.5)
        lo, hi = sorted([s1, s2])
        assert cfg.compute(self._obs(0.1, 0, lo)) <= cfg.compute(self._obs(0.1, 0, hi))


class TestFitProperties:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=200),
           n_phases=st.integers(min_value=1, max_value=3))
    def test_fit_always_yields_valid_machine(self, seed, n_phases):
        machine = PhaseMachine(
            [
                PhaseSpec("a", 0.05, 2e6, 0.3, 1.5, dwell_mean_s=1.0,
                          dwell_min_s=0.5),
                PhaseSpec("b", 0.02, 1e7, 0.3, 1.5, dwell_mean_s=1.0,
                          dwell_min_s=0.5),
            ],
            [[0.5, 0.5], [0.5, 0.5]],
        )
        trace = TraceGenerator(machine, seed=seed).generate(10.0)
        fit = fit_phase_machine(trace, n_phases=n_phases, window_s=0.5)
        # PhaseMachine construction itself validates row-stochasticity;
        # generating from the fit must also work.
        regen = TraceGenerator(fit.machine, seed=seed + 1).generate(5.0)
        assert regen.duration_s == 5.0
        assert sorted(fit.levels) == list(fit.levels)


class TestMixProperties:
    @settings(max_examples=10, deadline=None)
    @given(
        w1=st.floats(min_value=0.1, max_value=10.0),
        w2=st.floats(min_value=0.1, max_value=10.0),
        stickiness=st.floats(min_value=0.0, max_value=0.95),
    )
    def test_mix_machine_always_row_stochastic(self, w1, w2, stickiness):
        mix = mix_scenarios(
            {"audio_playback": w1, "idle": w2},
            switch_stickiness=stickiness,
        )
        machine = mix.machine()  # PhaseMachine validates rows sum to 1
        assert len(machine) > 0


class TestQoSClassMapProperties:
    @given(kind=st.text(min_size=1, max_size=10))
    def test_any_kind_has_positive_weight(self, kind):
        m = QoSClassMap()
        assert m.weight_of(kind) > 0
