"""Engine edge cases and cross-subsystem composition."""

import pytest

from repro.governors.performance import PerformanceGovernor
from repro.governors.powersave import PowersaveGovernor
from repro.idle.governor import MenuIdleGovernor
from repro.mem.dram import DRAMModel
from repro.qos.classes import default_mobile_classes
from repro.sim.engine import Simulator
from repro.soc.transition import DVFSTransitionModel
from repro.thermal.rc import default_thermal_model
from repro.thermal.throttle import ThermalThrottle
from repro.workload.trace import Trace

from conftest import unit


class TestEmptyAndBoundary:
    def test_empty_trace_runs(self, tiny_chip):
        trace = Trace(units=[], name="empty", duration_s=0.5)
        result = Simulator(tiny_chip, trace, lambda c: PerformanceGovernor()).run()
        assert result.qos.n_units == 0
        assert result.qos.mean_qos == 1.0
        assert result.total_energy_j > 0  # idle power still flows

    def test_unit_released_in_final_interval(self, tiny_chip):
        # Release at 0.495 in a 0.5 s trace: one interval to run.
        trace = Trace(units=[unit(release=0.495, work=1e6, deadline=0.6)],
                      duration_s=0.5)
        result = Simulator(tiny_chip, trace, lambda c: PerformanceGovernor()).run()
        assert result.qos.n_completed == 1

    def test_release_exactly_at_duration_boundary(self, tiny_chip):
        # A unit releasing exactly at the horizon edge must be handled
        # gracefully (float rounding decides whether the final interval
        # picks it up) and is accounted either as completed or dropped.
        trace = Trace(units=[unit(release=0.5, work=1e6, deadline=0.7)],
                      duration_s=0.5)
        result = Simulator(tiny_chip, trace, lambda c: PerformanceGovernor()).run()
        assert result.qos.n_units == 1
        assert result.qos.n_completed + result.qos.n_dropped == 1

    def test_many_jobs_same_deadline(self, tiny_chip):
        units = [unit(uid=i, release=0.0, work=1e6, deadline=0.1)
                 for i in range(10)]
        trace = Trace(units=units, duration_s=0.3)
        result = Simulator(tiny_chip, trace, lambda c: PerformanceGovernor()).run()
        assert result.qos.n_completed == 10

    def test_parallelism_above_core_count_clamps(self, tiny_chip):
        trace = Trace(units=[unit(work=1e6, deadline=0.1, parallelism=16)],
                      duration_s=0.2)
        result = Simulator(tiny_chip, trace, lambda c: PerformanceGovernor()).run()
        assert result.qos.n_completed == 1

    def test_sub_interval_trace(self, tiny_chip):
        trace = Trace(units=[unit(work=1e5, deadline=0.004)], duration_s=0.004)
        result = Simulator(tiny_chip, trace, lambda c: PerformanceGovernor()).run()
        assert result.intervals == 1


class TestAllSubsystemsComposed:
    def test_everything_on(self, big_little_chip):
        units = [
            unit(uid=i, release=i * 0.02, work=8e6, deadline=i * 0.02 + 0.03)
            for i in range(50)
        ]
        trace = Trace(units=units, duration_s=1.2)
        result = Simulator(
            big_little_chip,
            trace,
            lambda c: PerformanceGovernor(),
            thermal=default_thermal_model(big_little_chip.cluster_names),
            throttle=ThermalThrottle(trip_c=85.0),
            idle_governor=MenuIdleGovernor(),
            transition=DVFSTransitionModel(),
            memory=DRAMModel(),
            qos_classes=default_mobile_classes(),
            record_samples=True,
            record_observations=True,
        ).run()
        assert result.qos.n_units == 50
        assert result.qos.mean_qos > 0.9
        assert len(result.samples) == result.intervals
        assert result.observations["big"][0].temp_c is not None

    def test_qos_classes_change_score(self, tiny_chip):
        """A late interactive unit weighs more than a late background
        unit under the class map."""
        late_interactive = Trace(
            units=[
                unit(uid=0, work=4e7, deadline=0.02, kind="gameplay"),
                unit(uid=1, release=0.1, work=1e5, deadline=0.2, kind="background"),
            ],
            duration_s=0.4,
        )
        late_background = Trace(
            units=[
                unit(uid=0, work=1e5, deadline=0.02, kind="gameplay"),
                unit(uid=1, release=0.1, work=4e7, deadline=0.12, kind="background"),
            ],
            duration_s=0.4,
        )
        classes = default_mobile_classes()
        r_int = Simulator(tiny_chip, late_interactive,
                          lambda c: PowersaveGovernor(),
                          qos_classes=classes).run()
        r_bg = Simulator(tiny_chip, late_background,
                         lambda c: PowersaveGovernor(),
                         qos_classes=classes).run()
        assert r_int.qos.mean_qos < r_bg.qos.mean_qos

    def test_weighted_vs_unweighted_differ(self, tiny_chip):
        trace = Trace(
            units=[
                unit(uid=0, work=4e7, deadline=0.02, kind="gameplay"),
                unit(uid=1, release=0.1, work=1e5, deadline=0.2, kind="background"),
            ],
            duration_s=0.4,
        )
        weighted = Simulator(tiny_chip, trace, lambda c: PowersaveGovernor(),
                             qos_classes=default_mobile_classes()).run()
        tiny_chip.reset()
        plain = Simulator(tiny_chip, trace, lambda c: PowersaveGovernor()).run()
        assert weighted.qos.mean_qos != plain.qos.mean_qos


class TestGovernorMisbehaviour:
    def test_non_integer_decision_raises(self, tiny_chip, single_unit_trace):
        from repro.errors import GovernorError
        from repro.governors.base import Governor

        class BadGovernor(Governor):
            name = "bad"

            def decide(self, obs):
                return "fast"

        with pytest.raises(GovernorError, match="non-integer"):
            Simulator(tiny_chip, single_unit_trace, lambda c: BadGovernor()).run()

    def test_float_decision_is_coerced(self, tiny_chip, single_unit_trace):
        from repro.governors.base import Governor

        class FloatGovernor(Governor):
            name = "floaty"

            def decide(self, obs):
                return 2.0  # numpy-style float index

        result = Simulator(tiny_chip, single_unit_trace,
                           lambda c: FloatGovernor()).run()
        assert result.qos.mean_qos == 1.0
