"""Serve-side drift monitoring against a reference checkpoint.

The drift contract (PR 9): every decision is shadow-scored by a clone
of the reference policies; an up-to-date reference reports zero
disagreement, a stale one counts every divergent action; the counters
surface in stats replies, metrics, and ``kind="drift"`` ops records
that plug straight into the SLO gate — and shadow scoring never
changes the live decision stream.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.core.checkpoint import save_policies
from repro.core.trainer import train_policy
from repro.errors import ObsError, ServeError
from repro.obs import OpsLogger, capture, read_ops_log
from repro.obs.runtime import SloSpec, evaluate_slos, slos_from_mapping
from repro.serve import (
    DecisionSession,
    DriftMonitor,
    PolicyServer,
    ServeConfig,
    StatsRequest,
)
from repro.serve.protocol import observation_from_mapping
from repro.soc.presets import tiny_test_chip
from repro.workload.scenarios import get_scenario

N_DECISIONS = 8


@pytest.fixture(scope="module")
def trained():
    chip = tiny_test_chip()
    policies = train_policy(
        chip, get_scenario("audio_playback"), episodes=3,
        episode_duration_s=3.0,
    ).policies
    return chip, policies


def _stale_reference(chip, live):
    """A reference checkpoint guaranteed to disagree with ``live``.

    For every encoded state the reference Q-row is rewritten one-hot on
    an action whose *clamped OPP* (from the chip's resting operating
    point, which seeds every test observation's ``opp_index`` default)
    differs from the live policy's greedy choice — so each shadow-scored
    decision must count as a disagreement.
    """
    reference = train_policy(
        chip, get_scenario("audio_playback"), episodes=1,
        episode_duration_s=2.0,
    ).policies
    for name, policy in reference.items():
        opp0 = chip.cluster(name).opp_index
        table = chip.cluster(name).spec.opp_table
        deltas = policy.config.action_deltas
        values = policy.agent.table.values
        live_values = live[name].agent.table.values
        values[:] = 0.0
        for state in range(values.shape[0]):
            live_action = int(np.argmax(live_values[state]))
            live_opp = table.clamp_index(opp0 + deltas[live_action])
            ref_action = next(
                a for a, d in enumerate(deltas)
                if table.clamp_index(opp0 + d) != live_opp
            )
            values[state, ref_action] = 1.0
    return reference


def _decide_n(session, chip, n=N_DECISIONS) -> list[int]:
    return [
        session.decide(observation_from_mapping(
            {"cluster": chip.cluster_names[0], "utilization": (i % 10) / 10},
            chip,
        ))
        for i in range(n)
    ]


class TestDriftMonitor:
    def test_empty_reference_rejected(self):
        with pytest.raises(ServeError, match="non-empty"):
            DriftMonitor({})

    def test_identical_reference_never_disagrees(self, trained):
        chip, policies = trained
        monitor = DriftMonitor(policies)
        session = DecisionSession(policies, chip, drift=monitor)
        _decide_n(session, chip)
        assert monitor.decisions == N_DECISIONS
        assert monitor.disagreements == 0
        assert monitor.disagreement_fraction == 0.0

    def test_stale_reference_counts_every_disagreement(self, trained):
        chip, policies = trained
        monitor = DriftMonitor(_stale_reference(chip, policies))
        session = DecisionSession(policies, chip, drift=monitor)
        _decide_n(session, chip)
        assert monitor.decisions == N_DECISIONS
        # The doctored reference disagrees with the live greedy OPP in
        # every state, so every decision must burn the counter.
        assert monitor.disagreements == N_DECISIONS
        assert monitor.disagreement_fraction == 1.0

    def test_shadow_scoring_never_changes_decisions(self, trained):
        chip, policies = trained
        plain = _decide_n(DecisionSession(policies, chip), chip)
        shadowed = _decide_n(
            DecisionSession(
                policies, chip,
                drift=DriftMonitor(_stale_reference(chip, policies)),
            ),
            chip,
        )
        assert shadowed == plain

    def test_ops_log_gets_drift_records(self, trained, tmp_path):
        chip, policies = trained
        ops_log = OpsLogger(tmp_path / "drift-ops.jsonl")
        monitor = DriftMonitor(_stale_reference(chip, policies),
                               ops_log=ops_log)
        session = DecisionSession(policies, chip, drift=monitor)
        _decide_n(session, chip)
        records = [r for r in read_ops_log(ops_log.path)
                   if r["kind"] == "drift"]
        assert len(records) == N_DECISIONS
        failed = [r for r in records if r["outcome"] == "failed:drift"]
        assert len(failed) == monitor.disagreements
        assert all("q_delta" in r and r["q_delta"] >= 0.0 for r in records)
        assert all(r["action"] != r["reference_action"] for r in failed)

    def test_metrics_counters_increment(self, trained):
        chip, policies = trained
        monitor = DriftMonitor(_stale_reference(chip, policies))
        with capture(trace=False) as session_obs:
            session = DecisionSession(policies, chip, drift=monitor)
            _decide_n(session, chip)
        counters = session_obs.metrics.snapshot()["counters"]
        assert counters["serve.drift.decisions"] == N_DECISIONS
        assert counters["serve.drift.disagreements"] == monitor.disagreements
        histograms = session_obs.metrics.snapshot()["histograms"]
        assert histograms["serve.drift.q_delta"]["count"] == N_DECISIONS

    def test_from_checkpoint(self, trained, tmp_path):
        chip, policies = trained
        save_policies(policies, tmp_path / "ref")
        monitor = DriftMonitor.from_checkpoint(tmp_path / "ref")
        session = DecisionSession(policies, chip, drift=monitor)
        _decide_n(session, chip)
        assert monitor.disagreements == 0


class TestServerIntegration:
    def test_stats_reply_carries_drift_counters(self, trained):
        chip, policies = trained
        monitor = DriftMonitor(_stale_reference(chip, policies))
        server = PolicyServer(
            policies, chip, ServeConfig(workers=1), drift=monitor
        )

        async def run():
            await server.start()
            session = server.session()
            _decide_n(session, chip, n=3)
            reply = await server.request(StatsRequest())
            await server.shutdown()
            return reply

        reply = asyncio.run(run())
        assert reply.stats["drift_decisions"] == 3
        assert reply.stats["drift_disagreements"] == monitor.disagreements

    def test_from_checkpoint_with_reference(self, trained, tmp_path):
        chip, policies = trained
        save_policies(policies, tmp_path / "live")
        save_policies(policies, tmp_path / "ref")
        server = PolicyServer.from_checkpoint(
            tmp_path / "live", chip="tiny",
            drift_reference=tmp_path / "ref",
        )
        assert server.drift is not None
        session = server.session()
        _decide_n(session, chip, n=2)
        assert server.drift.decisions == 2
        assert server.drift.disagreements == 0

    def test_no_reference_means_no_monitor(self, trained):
        server = make_plain_server(trained)
        assert server.drift is None
        session = server.session()
        _decide_n(session, trained[0], n=2)


def make_plain_server(trained) -> PolicyServer:
    chip, policies = trained
    return PolicyServer(policies, chip, ServeConfig(workers=1))


class TestDriftSlos:
    def test_drift_is_a_first_class_slo_kind(self):
        spec = SloSpec(name="drift-budget", kind="drift", objective=0.9)
        assert spec.kind == "drift"

    def test_unknown_kind_still_rejected(self):
        with pytest.raises(ObsError, match="unknown kind"):
            SloSpec(name="x", kind="dance")

    def test_drift_slo_burns_budget_on_disagreement(self, trained, tmp_path):
        chip, policies = trained
        ops_log = OpsLogger(tmp_path / "ops.jsonl")
        monitor = DriftMonitor(_stale_reference(chip, policies),
                               ops_log=ops_log)
        session = DecisionSession(policies, chip, drift=monitor)
        _decide_n(session, chip)
        assert monitor.disagreements > 0
        slos = slos_from_mapping({"slos": [
            {"name": "drift-budget", "kind": "drift", "objective": 0.999},
        ]})
        report = evaluate_slos(read_ops_log(ops_log.path), slos)
        assert not report.ok
        assert report.failures[0].spec.name == "drift-budget"
