"""The RTL-level accelerator model and FPGA resource estimation."""

import pytest

from repro.errors import HardwareModelError
from repro.hw.fixed_point import QFormat
from repro.hw.pipeline import AcceleratorPipeline, PipelineSpec
from repro.hw.rtl import Request, RTLAccelerator
from repro.hw.synthesis import (
    ZYNQ7010_BUDGET,
    estimate_resources,
    fits_zynq7010,
)


class TestRTLAccelerator:
    def test_single_decision_latency(self):
        rtl = RTLAccelerator(n_actions=5)
        rtl.submit(Request(req_id=0, state=3, with_update=False))
        completions = rtl.run_until_idle()
        assert len(completions) == 1
        # encode(1) + read(2) + cmp(3) = 6 cycles, counted inclusively
        # from the acceptance cycle.
        assert completions[0].latency_cycles == rtl.step_cycles(False) - 1

    def test_step_with_update_latency(self):
        rtl = RTLAccelerator(n_actions=5)
        rtl.submit(Request(req_id=0, state=3, with_update=True))
        completions = rtl.run_until_idle()
        assert completions[0].latency_cycles == rtl.step_cycles(True) - 1

    def test_matches_analytical_pipeline_model(self):
        """The clocked model and the closed-form model agree on per-step
        cycles for several action-set sizes."""
        for n_actions in (2, 3, 5, 8, 9):
            rtl = RTLAccelerator(n_actions=n_actions)
            analytical = AcceleratorPipeline(PipelineSpec(), n_actions=n_actions)
            assert rtl.step_cycles(True) == analytical.step_cycles()
            assert rtl.step_cycles(False) == analytical.decision_cycles()

    def test_back_to_back_throughput(self):
        """N queued requests drain in ~N * step_cycles (serial FSM)."""
        rtl = RTLAccelerator(n_actions=5, queue_depth=16)
        n = 10
        for i in range(n):
            assert rtl.submit(Request(req_id=i, state=i))
        completions = rtl.run_until_idle()
        assert len(completions) == n
        assert [c.req_id for c in completions] == list(range(n))
        assert rtl.cycle == pytest.approx(n * rtl.step_cycles(True), abs=n)

    def test_queue_overflow_rejects(self):
        rtl = RTLAccelerator(queue_depth=2)
        assert rtl.submit(Request(0, 0))
        assert rtl.submit(Request(1, 0))
        assert not rtl.submit(Request(2, 0))
        assert rtl.rejected == 1

    def test_utilization_full_when_saturated(self):
        rtl = RTLAccelerator()
        for i in range(5):
            rtl.submit(Request(i, 0))
        rtl.run_until_idle()
        assert rtl.utilization > 0.95

    def test_idle_ticks_do_nothing(self):
        rtl = RTLAccelerator()
        for _ in range(10):
            assert rtl.tick() == []
        assert rtl.utilization == 0.0

    def test_validation(self):
        with pytest.raises(HardwareModelError):
            RTLAccelerator(n_actions=0)
        with pytest.raises(HardwareModelError):
            RTLAccelerator(queue_depth=0)

    def test_completions_in_fifo_order(self):
        rtl = RTLAccelerator()
        rtl.submit(Request(7, 0, with_update=True))
        rtl.submit(Request(8, 0, with_update=False))
        completions = rtl.run_until_idle()
        assert [c.req_id for c in completions] == [7, 8]
        # The second (no-update) request is faster once accepted.
        assert completions[1].latency_cycles < completions[0].latency_cycles


class TestSynthesisEstimates:
    def test_reference_design_fits_small_zynq(self):
        # The paper-scale design: 270 states x 5 actions in Q7.8.
        est = estimate_resources(270, 5, QFormat(7, 8))
        assert fits_zynq7010(est)

    def test_bram_scales_with_table(self):
        small = estimate_resources(64, 4, QFormat(7, 8))
        large = estimate_resources(4096, 8, QFormat(7, 8))
        assert large.bram_18k > small.bram_18k

    def test_bram_count_exact(self):
        # 1024 * 4 * 16 bits = 65536 bits = 3.56 -> 4 half-BRAMs.
        est = estimate_resources(1024, 4, QFormat(7, 8))
        assert est.bram_18k == 4

    def test_luts_scale_with_width(self):
        narrow = estimate_resources(256, 5, QFormat(3, 4))
        wide = estimate_resources(256, 5, QFormat(11, 12))
        assert wide.luts > narrow.luts

    def test_wide_words_lose_the_dsp(self):
        assert estimate_resources(64, 4, QFormat(7, 8)).dsps == 1
        huge = estimate_resources(64, 4, QFormat(15, 16))
        assert huge.dsps == 0
        assert huge.luts > estimate_resources(64, 4, QFormat(7, 8)).luts

    def test_fits_is_conjunctive(self):
        est = estimate_resources(270, 5, QFormat(7, 8))
        assert not est.fits(luts=est.luts - 1, ffs=10**6, bram_18k=10**3, dsps=10**2)

    def test_validation(self):
        with pytest.raises(HardwareModelError):
            estimate_resources(0, 5, QFormat(7, 8))

    def test_str_and_budget(self):
        est = estimate_resources(270, 5, QFormat(7, 8))
        assert "LUTs" in str(est)
        assert set(ZYNQ7010_BUDGET) == {"luts", "ffs", "bram_18k", "dsps"}
