"""Clusters and chips: DVFS control, capacity, lookups."""

import pytest

from repro.errors import ConfigurationError, OPPError
from repro.soc.chip import Chip
from repro.soc.cluster import Cluster, ClusterSpec
from repro.soc.core import CoreSpec
from repro.soc.opp import make_table


def spec(n_cores: int = 2) -> ClusterSpec:
    core = CoreSpec("c", capacity=1.0, ceff_f=1e-10, leak_a_per_v=0.01)
    return ClusterSpec(
        "cpu", core, n_cores=n_cores, opp_table=make_table([500, 1000, 1500], [0.9, 1.0, 1.1])
    )


class TestCluster:
    def test_starts_at_floor_opp(self):
        cluster = Cluster(spec())
        assert cluster.opp_index == 0
        assert cluster.freq_hz == 500e6

    def test_custom_initial_opp(self):
        cluster = Cluster(spec(), initial_opp_index=2)
        assert cluster.freq_hz == 1500e6

    def test_bad_initial_opp(self):
        with pytest.raises(OPPError):
            Cluster(spec(), initial_opp_index=3)

    def test_needs_at_least_one_core(self):
        with pytest.raises(ConfigurationError):
            spec(n_cores=0)

    def test_set_opp_index(self):
        cluster = Cluster(spec())
        cluster.set_opp_index(1)
        assert cluster.freq_hz == 1000e6
        assert cluster.voltage_v == 1.0

    def test_set_opp_out_of_range(self):
        cluster = Cluster(spec())
        with pytest.raises(OPPError):
            cluster.set_opp_index(5)

    @pytest.mark.parametrize("delta,expected", [(1, 1), (5, 2), (-1, 0), (-10, 0)])
    def test_step_opp_clamps(self, delta, expected):
        cluster = Cluster(spec())
        assert cluster.step_opp(delta) == expected

    def test_cycles_available_sums_cores(self):
        cluster = Cluster(spec(n_cores=2))
        assert cluster.cycles_available(0.01) == pytest.approx(2 * 500e6 * 0.01)

    def test_work_available_uses_capacity(self):
        core = CoreSpec("c", capacity=2.0, ceff_f=1e-10, leak_a_per_v=0.0)
        cspec = ClusterSpec("x", core, 2, make_table([1000], [1.0]))
        cluster = Cluster(cspec)
        assert cluster.work_available(0.01) == pytest.approx(2 * 2.0 * 1e9 * 0.01)

    def test_max_work_available_uses_top_opp(self):
        cluster = Cluster(spec())
        assert cluster.max_work_available(0.01) == pytest.approx(2 * 1500e6 * 0.01)

    def test_utilization_aggregates(self):
        cluster = Cluster(spec(n_cores=2))
        cluster.cores[0].record_interval(5e6 * 0.5, 500e6, 0.01)  # util 0.5
        cluster.cores[1].record_interval(0.0, 500e6, 0.01)
        assert cluster.utilization == pytest.approx(0.25)
        assert cluster.max_core_utilization == pytest.approx(0.5)

    def test_reset_returns_to_floor(self):
        cluster = Cluster(spec(), initial_opp_index=2)
        cluster.cores[0].record_interval(1e6, 1500e6, 0.01)
        cluster.reset()
        assert cluster.opp_index == 0
        assert cluster.cores[0].busy_cycles == 0.0


class TestChip:
    def test_requires_clusters(self):
        with pytest.raises(ConfigurationError):
            Chip("empty", [])

    def test_duplicate_cluster_names_rejected(self):
        with pytest.raises(ConfigurationError, match="duplicate"):
            Chip("dup", [spec(), spec()])

    def test_lookup_by_name(self):
        chip = Chip("one", [spec()])
        assert chip.cluster("cpu").spec.name == "cpu"

    def test_lookup_unknown_name(self):
        chip = Chip("one", [spec()])
        with pytest.raises(ConfigurationError, match="available"):
            chip.cluster("gpu")

    def test_n_cores_totals(self, duo_chip):
        assert duo_chip.n_cores == 4

    def test_cluster_names_order(self, duo_chip):
        assert duo_chip.cluster_names == ["big", "little"]

    def test_total_work_available(self, duo_chip):
        expected = sum(c.work_available(0.01) for c in duo_chip)
        assert duo_chip.total_work_available(0.01) == pytest.approx(expected)

    def test_reset_resets_all_clusters(self, duo_chip):
        for cluster in duo_chip:
            cluster.set_opp_index(1)
        duo_chip.reset()
        assert all(c.opp_index == 0 for c in duo_chip)
