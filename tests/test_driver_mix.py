"""The accelerator driver model and scenario mixing."""

import pytest

from repro.errors import HardwareModelError, WorkloadError
from repro.hw.driver import AcceleratorDriver, DriverSpec
from repro.hw.fixed_point import DEFAULT_QFORMAT
from repro.hw.registers import RegisterFile
from repro.workload.generator import TraceGenerator
from repro.workload.mix import mix_scenarios


def serving(action: int = 2):
    """A service that consumes the observation and answers ``action``."""

    def service(rf: RegisterFile) -> None:
        rf.consume_observation()
        rf.publish_decision(action)

    return service


def dead_service(rf: RegisterFile) -> None:
    """An accelerator that never answers."""
    rf.consume_observation()


class TestDriverPolling:
    def make(self, **kwargs) -> AcceleratorDriver:
        rf = RegisterFile(qformat=DEFAULT_QFORMAT)
        return AcceleratorDriver(rf, **kwargs)

    def test_successful_request(self):
        driver = self.make()
        txn = driver.request((1, 2, 3, 0), reward=-0.5, service=serving(3))
        assert txn.action == 3
        assert txn.seq == 1
        assert txn.polls == 1
        assert txn.latency_s > 0

    def test_sequence_tracks_across_requests(self):
        driver = self.make()
        for expected_seq in (1, 2, 3):
            txn = driver.request((0, 0, 0, 0), 0.0, serving())
            assert txn.seq == expected_seq

    def test_timeout_when_accelerator_dead(self):
        driver = self.make(spec=DriverSpec(timeout_s=1e-6))
        with pytest.raises(HardwareModelError, match="did not complete"):
            driver.request((0, 0, 0, 0), 0.0, dead_service)
        assert driver.timeouts == 1

    def test_mean_latency(self):
        driver = self.make()
        driver.request((0, 0, 0, 0), 0.0, serving())
        driver.request((0, 0, 0, 0), 0.0, serving())
        assert driver.mean_latency_s == pytest.approx(
            sum(t.latency_s for t in driver.transactions) / 2
        )

    def test_validation(self):
        with pytest.raises(HardwareModelError):
            DriverSpec(mode="telepathy")
        with pytest.raises(HardwareModelError):
            DriverSpec(poll_interval_s=0.0)
        with pytest.raises(HardwareModelError):
            AcceleratorDriver(RegisterFile(qformat=DEFAULT_QFORMAT),
                              compute_latency_s=-1.0)


class TestDriverInterrupt:
    def test_irq_mode_single_read(self):
        rf = RegisterFile(qformat=DEFAULT_QFORMAT)
        driver = AcceleratorDriver(rf, spec=DriverSpec(mode="interrupt"))
        txn = driver.request((0, 0, 0, 0), 0.0, serving(1))
        assert txn.polls == 1
        assert txn.action == 1

    def test_irq_latency_included(self):
        rf = RegisterFile(qformat=DEFAULT_QFORMAT)
        fast = AcceleratorDriver(
            rf, spec=DriverSpec(mode="interrupt", irq_latency_s=1e-6)
        )
        t_fast = fast.request((0, 0, 0, 0), 0.0, serving()).latency_s
        rf2 = RegisterFile(qformat=DEFAULT_QFORMAT)
        slow = AcceleratorDriver(
            rf2, spec=DriverSpec(mode="interrupt", irq_latency_s=50e-6)
        )
        t_slow = slow.request((0, 0, 0, 0), 0.0, serving()).latency_s
        assert t_slow > t_fast

    def test_irq_without_decision_raises(self):
        rf = RegisterFile(qformat=DEFAULT_QFORMAT)
        driver = AcceleratorDriver(rf, spec=DriverSpec(mode="interrupt"))
        with pytest.raises(HardwareModelError, match="mailbox empty"):
            driver.request((0, 0, 0, 0), 0.0, dead_service)


class TestMixScenarios:
    def test_builds_valid_machine(self):
        mix = mix_scenarios({"gaming": 1.0, "audio_playback": 1.0})
        machine = mix.machine()
        # Phases from both components, namespaced.
        names = machine.phase_names()
        assert any(n.startswith("gaming/") for n in names)
        assert any(n.startswith("audio_playback/") for n in names)

    def test_generates_traces_with_both_components(self):
        mix = mix_scenarios({"gaming": 1.0, "audio_playback": 1.0},
                            switch_stickiness=0.3)
        trace = TraceGenerator(mix.machine(), seed=0).generate(60.0)
        kinds = trace.kinds()
        assert any(k.startswith("gaming/") for k in kinds)
        assert any(k.startswith("audio_playback/") for k in kinds)

    def test_weights_shift_the_mix(self):
        # Escape mass is distributed to *other* components by weight, so
        # weights need >= 3 components to matter: compare a mix whose
        # escapes favour gaming against one favouring audio.
        heavy_gaming = mix_scenarios(
            {"idle": 1.0, "gaming": 20.0, "audio_playback": 1.0},
            switch_stickiness=0.0,
        )
        heavy_audio = mix_scenarios(
            {"idle": 1.0, "gaming": 1.0, "audio_playback": 20.0},
            switch_stickiness=0.0,
        )
        t_gaming = TraceGenerator(heavy_gaming.machine(), seed=1).generate(120.0)
        t_audio = TraceGenerator(heavy_audio.machine(), seed=1).generate(120.0)
        assert t_gaming.mean_demand_rate > t_audio.mean_demand_rate

    def test_validation(self):
        with pytest.raises(WorkloadError, match="at least two"):
            mix_scenarios({"gaming": 1.0})
        with pytest.raises(WorkloadError, match="positive"):
            mix_scenarios({"gaming": 1.0, "idle": 0.0})
        with pytest.raises(WorkloadError):
            mix_scenarios({"gaming": 1.0, "unknown-thing": 1.0})
        with pytest.raises(WorkloadError, match="stickiness"):
            mix_scenarios({"gaming": 1.0, "idle": 1.0}, switch_stickiness=1.0)

    def test_simulable(self, big_little_chip):
        from repro.governors.ondemand import OndemandGovernor
        from repro.sim.engine import Simulator

        mix = mix_scenarios({"web_browsing": 2.0, "video_playback": 1.0})
        trace = mix.trace(5.0, seed=0)
        result = Simulator(big_little_chip, trace,
                           lambda c: OndemandGovernor()).run()
        assert result.qos.n_units > 0
