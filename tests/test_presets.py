"""Chip presets: structure and published ratios."""

import pytest

from repro.soc.presets import PRESETS, exynos5422, symmetric_quad, tiny_test_chip


class TestExynos5422:
    def test_is_4_plus_4(self):
        chip = exynos5422()
        assert chip.cluster("big").n_cores == 4
        assert chip.cluster("little").n_cores == 4

    def test_big_tops_at_2ghz(self):
        chip = exynos5422()
        assert chip.cluster("big").spec.opp_table.max_freq_hz == pytest.approx(2.0e9)

    def test_little_tops_at_1p4ghz(self):
        chip = exynos5422()
        assert chip.cluster("little").spec.opp_table.max_freq_hz == pytest.approx(1.4e9)

    def test_big_little_iso_frequency_power_ratio(self):
        """At the same frequency and full load, the big core should burn
        roughly 4-6x the LITTLE core — the published Exynos ratio."""
        chip = exynos5422()
        big = chip.cluster("big").spec
        little = chip.cluster("little").spec
        f = 1.0e9
        vb = big.opp_table[big.opp_table.ceil_index(f)].voltage_v
        vl = little.opp_table[little.opp_table.ceil_index(f)].voltage_v
        p_big = big.core.ceff_f * vb * vb * f
        p_little = little.core.ceff_f * vl * vl * f
        assert 3.0 < p_big / p_little < 7.0

    def test_big_capacity_is_double(self):
        chip = exynos5422()
        assert chip.cluster("big").spec.core.capacity == pytest.approx(
            2.0 * chip.cluster("little").spec.core.capacity
        )

    def test_fresh_instances_are_independent(self):
        a, b = exynos5422(), exynos5422()
        a.cluster("big").set_opp_index(5)
        assert b.cluster("big").opp_index == 0


class TestOtherPresets:
    def test_symmetric_quad_is_one_cluster(self):
        chip = symmetric_quad()
        assert len(chip) == 1
        assert chip.n_cores == 4

    def test_tiny_chip_is_minimal(self):
        chip = tiny_test_chip()
        assert chip.n_cores == 1
        assert len(chip.clusters[0].spec.opp_table) == 3

    def test_registry_builds_every_preset(self):
        for name, factory in PRESETS.items():
            chip = factory()
            assert chip.n_cores >= 1, name
