"""The command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_list_parses(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.chip == "exynos5422"
        assert args.governor == "ondemand"

    def test_unknown_chip_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--chip", "snapdragon"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "exynos5422" in out
        assert "ondemand" in out
        assert "rl-policy" in out

    def test_run_tiny(self, capsys):
        code = main([
            "run", "--chip", "tiny", "--scenario", "audio_playback",
            "--governor", "ondemand", "--duration", "2.0",
        ])
        assert code == 0
        assert "E/QoS" in capsys.readouterr().out

    def test_run_unknown_governor_is_error(self, capsys):
        code = main([
            "run", "--chip", "tiny", "--scenario", "idle",
            "--governor", "warp", "--duration", "1.0",
        ])
        assert code == 1
        assert "error" in capsys.readouterr().err

    def test_latency_table(self, capsys):
        assert main(["latency", "--chip", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out

    def test_latency_json(self, capsys):
        assert main(["latency", "--chip", "tiny", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["chip"] == "tiny"
        assert payload["rows"] and {"label", "software_s", "hardware_s",
                                    "speedup"} <= set(payload["rows"][0])
        assert payload["typical_speedup"] > 1.0
        assert payload["best_case_speedup"] > payload["typical_speedup"]
        assert payload["paper"] == {
            "typical_speedup": 3.92, "best_case_speedup": 40.0,
        }

    def test_compare_quick(self, capsys):
        code = main([
            "compare", "--chip", "tiny", "--scenario", "audio_playback",
            "--governors", "performance,powersave",
            "--duration", "2.0", "--episodes", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "rl-policy" in out
        assert "performance" in out

    def test_train_and_run_checkpoint(self, capsys, tmp_path):
        ckpt = tmp_path / "ck"
        code = main([
            "train", "--chip", "tiny", "--scenario", "audio_playback",
            "--episodes", "2", "--duration", "2.0", "--out", str(ckpt),
        ])
        assert code == 0
        assert "checkpoint saved" in capsys.readouterr().out
        code = main([
            "run", "--chip", "tiny", "--scenario", "audio_playback",
            "--governor", f"checkpoint:{ckpt}", "--duration", "2.0",
        ])
        assert code == 0
        assert "rl-policy" in capsys.readouterr().out

    def test_train_save_flag_overrides_out(self, capsys, tmp_path):
        ckpt = tmp_path / "saved"
        code = main([
            "train", "--chip", "tiny", "--scenario", "audio_playback",
            "--episodes", "2", "--duration", "2.0", "--save", str(ckpt),
        ])
        assert code == 0
        assert str(ckpt) in capsys.readouterr().out
        manifest = json.loads((ckpt / "policy.json").read_text())
        assert manifest["engine_version"]

    def test_profile_scenario(self, capsys):
        code = main(["profile", "--scenario", "audio_playback", "--duration", "5.0"])
        assert code == 0
        assert "demand" in capsys.readouterr().out

    def test_profile_trace_csv(self, capsys, tmp_path):
        from repro.workload.scenarios import get_scenario

        path = tmp_path / "t.csv"
        get_scenario("audio_playback").trace(3.0, seed=0).to_csv(path)
        code = main(["profile", "--trace", str(path)])
        assert code == 0
        assert "demand" in capsys.readouterr().out

    def test_report(self, capsys, tmp_path):
        out = tmp_path / "REPORT.md"
        code = main(["report", "--experiments", "e4,a6", "--out", str(out)])
        assert code == 0
        assert out.is_file()
        assert "## E4" in out.read_text()

    def test_run_with_chip_file(self, capsys, tmp_path):
        import json

        from repro.soc.devicetree import chip_to_dict
        from repro.soc.presets import tiny_test_chip

        path = tmp_path / "soc.json"
        path.write_text(json.dumps(chip_to_dict(tiny_test_chip())))
        code = main([
            "run", "--chip-file", str(path), "--scenario", "audio_playback",
            "--governor", "ondemand", "--duration", "2.0",
        ])
        assert code == 0
        assert "ondemand" in capsys.readouterr().out

    def test_run_with_bad_chip_file(self, capsys, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{broken")
        code = main([
            "run", "--chip-file", str(path), "--scenario", "idle",
            "--duration", "1.0",
        ])
        assert code == 1
        assert "error" in capsys.readouterr().err

    def test_report_unknown_id(self, capsys, tmp_path):
        code = main([
            "report", "--experiments", "e99", "--out", str(tmp_path / "r.md"),
        ])
        assert code == 1
        assert "unknown experiment" in capsys.readouterr().err


class TestObservabilityCLI:
    def test_trace_command_writes_chrome_trace(self, capsys, tmp_path):
        import json

        out = tmp_path / "t.json"
        code = main([
            "trace", "idle", "--chip", "tiny", "--governor", "ondemand",
            "--duration", "1.0", "--out", str(out),
        ])
        assert code == 0
        stdout = capsys.readouterr().out
        assert "spans" in stdout and str(out) in stdout
        events = json.loads(out.read_text())["traceEvents"]
        assert any(e.get("name", "").startswith("engine.phase.")
                   for e in events)

    def test_trace_command_rl_policy_jsonl(self, capsys, tmp_path):
        from repro.obs import read_jsonl

        out = tmp_path / "t.jsonl"
        prom = tmp_path / "t.prom"
        code = main([
            "trace", "audio_playback", "--chip", "tiny",
            "--duration", "1.0", "--episodes", "2",
            "--format", "jsonl", "--out", str(out), "--metrics", str(prom),
        ])
        assert code == 0
        spans, instants, snapshot = read_jsonl(out)
        assert spans
        assert sum(1 for i in instants if i.name == "rl.episode") == 2
        assert snapshot["counters"]["rl.episodes"] == 2.0
        assert "repro_rl_episodes 2" in prom.read_text()

    def test_run_trace_and_metrics_flags(self, capsys, tmp_path):
        import json

        trace_file = tmp_path / "run.json"
        prom = tmp_path / "run.prom"
        code = main([
            "run", "--chip", "tiny", "--scenario", "idle",
            "--duration", "1.0", "--trace", str(trace_file),
            "--metrics", str(prom),
        ])
        assert code == 0
        assert json.loads(trace_file.read_text())["traceEvents"]
        assert "repro_sim_runs 1" in prom.read_text()

    def test_run_without_flags_leaves_obs_disabled(self, capsys):
        from repro.obs import OBS

        code = main([
            "run", "--chip", "tiny", "--scenario", "idle",
            "--duration", "1.0",
        ])
        assert code == 0
        assert not OBS.enabled

    def test_profile_prints_phase_breakdown(self, capsys, tmp_path):
        out = tmp_path / "prof.json"
        code = main([
            "profile", "--chip", "tiny", "--scenario", "idle",
            "--duration", "2.0", "--trace-out", str(out),
        ])
        assert code == 0
        stdout = capsys.readouterr().out
        assert "engine phase breakdown" in stdout
        assert "engine.phase.governor" in stdout
        assert out.is_file()

    def test_profile_from_saved_trace(self, capsys, tmp_path):
        """Offline re-profiling: no simulation, just the saved spans."""
        out = tmp_path / "prof.json"
        assert main([
            "profile", "--chip", "tiny", "--scenario", "idle",
            "--duration", "2.0", "--trace-out", str(out),
        ]) == 0
        capsys.readouterr()
        code = main(["profile", "--from-trace", str(out)])
        assert code == 0
        stdout = capsys.readouterr().out
        assert "engine phase breakdown" in stdout
        assert "engine.phase.governor" in stdout

    def test_trace_without_scenario_or_merge_is_error(self, capsys):
        code = main(["trace"])
        assert code == 1
        assert "scenario" in capsys.readouterr().err

    def test_log_level_flag_emits_diagnostics(self, capsys):
        code = main([
            "run", "--chip", "tiny", "--scenario", "idle",
            "--duration", "1.0", "--log-level", "info",
        ])
        assert code == 0
        err = capsys.readouterr().err
        assert "INFO repro.cli" in err and "scenario=idle" in err

    def test_log_level_defaults_to_quiet(self, capsys):
        code = main([
            "run", "--chip", "tiny", "--scenario", "idle",
            "--duration", "1.0",
        ])
        assert code == 0
        assert "INFO" not in capsys.readouterr().err

    def test_fleet_cache_round_trip_and_cache_commands(self, capsys,
                                                       tmp_path):
        import json

        flags = [
            "fleet", "--chip", "tiny", "--scenarios", "idle",
            "--governors", "performance,powersave", "--seeds", "1",
            "--duration", "1.0", "--jobs", "1", "--quiet",
            "--cache", "--cache-dir", str(tmp_path / "cache"),
        ]
        out_a, out_b = tmp_path / "a.json", tmp_path / "b.json"
        assert main(flags + ["--out", str(out_a)]) == 0
        capsys.readouterr()
        assert main(flags + ["--out", str(out_b)]) == 0
        stdout = capsys.readouterr().out
        assert "2 of 2 jobs served from the run cache" in stdout

        cold = json.loads(out_a.read_text())
        warm = json.loads(out_b.read_text())
        assert cold["cache_hits"] == 0 and warm["cache_hits"] == 2
        assert all(row["cached"] for row in warm["rows"])
        for a, b in zip(cold["rows"], warm["rows"]):
            assert b["energy_per_qos_j"] == a["energy_per_qos_j"]

        dir_flag = ["--cache-dir", str(tmp_path / "cache")]
        assert main(["cache", "list"] + dir_flag) == 0
        assert "tiny/idle/performance/s1" in capsys.readouterr().out
        assert main(["cache", "stats"] + dir_flag) == 0
        assert "entries:        2" in capsys.readouterr().out
        assert main(["cache", "clear"] + dir_flag) == 0
        assert "removed 2" in capsys.readouterr().out

    def test_fleet_no_cache_is_the_default(self, capsys, tmp_path,
                                           monkeypatch):
        from repro.cache import CACHE_ENV_VAR

        monkeypatch.setenv(CACHE_ENV_VAR, str(tmp_path / "untouched"))
        code = main([
            "fleet", "--chip", "tiny", "--scenarios", "idle",
            "--governors", "performance", "--seeds", "1",
            "--duration", "1.0", "--jobs", "1", "--quiet",
        ])
        assert code == 0
        assert not (tmp_path / "untouched").exists()

    def test_fleet_progress_none_is_silent(self, capsys, tmp_path):
        code = main([
            "fleet", "--chip", "tiny", "--scenarios", "idle",
            "--governors", "ondemand", "--seeds", "1",
            "--duration", "1.0", "--jobs", "1", "--progress", "none",
        ])
        assert code == 0
        assert capsys.readouterr().err == ""

    def test_fleet_progress_live_renders_bar(self, capsys):
        code = main([
            "fleet", "--chip", "tiny", "--scenarios", "idle",
            "--governors", "ondemand", "--seeds", "1",
            "--duration", "1.0", "--jobs", "1", "--progress", "live",
        ])
        assert code == 0
        err = capsys.readouterr().err
        assert "[#" in err and "1/1" in err

    def test_fleet_plain_progress_is_timestamped(self, capsys):
        import re

        code = main([
            "fleet", "--chip", "tiny", "--scenarios", "idle",
            "--governors", "ondemand", "--seeds", "1",
            "--duration", "1.0", "--jobs", "1",
        ])
        assert code == 0
        err = capsys.readouterr().err
        assert re.search(r"^\d{4}-\d{2}-\d{2}T\d{2}:\d{2}:\d{2} fleet:",
                         err, re.M)

    def test_fleet_metrics_flag_writes_merged_snapshot(self, capsys, tmp_path):
        prom = tmp_path / "fleet.prom"
        code = main([
            "fleet", "--chip", "tiny", "--scenarios", "idle",
            "--governors", "ondemand,powersave", "--seeds", "1",
            "--duration", "1.0", "--jobs", "1", "--quiet",
            "--metrics", str(prom),
        ])
        assert code == 0
        text = prom.read_text()
        assert "repro_sim_runs 2" in text
