"""The command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_list_parses(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.chip == "exynos5422"
        assert args.governor == "ondemand"

    def test_unknown_chip_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--chip", "snapdragon"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "exynos5422" in out
        assert "ondemand" in out
        assert "rl-policy" in out

    def test_run_tiny(self, capsys):
        code = main([
            "run", "--chip", "tiny", "--scenario", "audio_playback",
            "--governor", "ondemand", "--duration", "2.0",
        ])
        assert code == 0
        assert "E/QoS" in capsys.readouterr().out

    def test_run_unknown_governor_is_error(self, capsys):
        code = main([
            "run", "--chip", "tiny", "--scenario", "idle",
            "--governor", "warp", "--duration", "1.0",
        ])
        assert code == 1
        assert "error" in capsys.readouterr().err

    def test_latency_table(self, capsys):
        assert main(["latency", "--chip", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out

    def test_compare_quick(self, capsys):
        code = main([
            "compare", "--chip", "tiny", "--scenario", "audio_playback",
            "--governors", "performance,powersave",
            "--duration", "2.0", "--episodes", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "rl-policy" in out
        assert "performance" in out

    def test_train_and_run_checkpoint(self, capsys, tmp_path):
        ckpt = tmp_path / "ck"
        code = main([
            "train", "--chip", "tiny", "--scenario", "audio_playback",
            "--episodes", "2", "--duration", "2.0", "--out", str(ckpt),
        ])
        assert code == 0
        assert "checkpoint saved" in capsys.readouterr().out
        code = main([
            "run", "--chip", "tiny", "--scenario", "audio_playback",
            "--governor", f"checkpoint:{ckpt}", "--duration", "2.0",
        ])
        assert code == 0
        assert "rl-policy" in capsys.readouterr().out

    def test_profile_scenario(self, capsys):
        code = main(["profile", "--scenario", "audio_playback", "--duration", "5.0"])
        assert code == 0
        assert "demand" in capsys.readouterr().out

    def test_profile_trace_csv(self, capsys, tmp_path):
        from repro.workload.scenarios import get_scenario

        path = tmp_path / "t.csv"
        get_scenario("audio_playback").trace(3.0, seed=0).to_csv(path)
        code = main(["profile", "--trace", str(path)])
        assert code == 0
        assert "demand" in capsys.readouterr().out

    def test_report(self, capsys, tmp_path):
        out = tmp_path / "REPORT.md"
        code = main(["report", "--experiments", "e4,a6", "--out", str(out)])
        assert code == 0
        assert out.is_file()
        assert "## E4" in out.read_text()

    def test_run_with_chip_file(self, capsys, tmp_path):
        import json

        from repro.soc.devicetree import chip_to_dict
        from repro.soc.presets import tiny_test_chip

        path = tmp_path / "soc.json"
        path.write_text(json.dumps(chip_to_dict(tiny_test_chip())))
        code = main([
            "run", "--chip-file", str(path), "--scenario", "audio_playback",
            "--governor", "ondemand", "--duration", "2.0",
        ])
        assert code == 0
        assert "ondemand" in capsys.readouterr().out

    def test_run_with_bad_chip_file(self, capsys, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{broken")
        code = main([
            "run", "--chip-file", str(path), "--scenario", "idle",
            "--duration", "1.0",
        ])
        assert code == 1
        assert "error" in capsys.readouterr().err

    def test_report_unknown_id(self, capsys, tmp_path):
        code = main([
            "report", "--experiments", "e99", "--out", str(tmp_path / "r.md"),
        ])
        assert code == 1
        assert "unknown experiment" in capsys.readouterr().err
