"""The proposed policy: config, predictor, featurisation, governor loop."""

import pytest

from repro.core.config import PolicyConfig
from repro.core.policy import RLPowerManagementPolicy
from repro.core.predictor import WorkloadPredictor
from repro.core.state import StateFeaturizer
from repro.errors import PolicyError
from repro.governors.performance import PerformanceGovernor
from repro.sim.engine import Simulator
from repro.sim.telemetry import initial_observation
from repro.soc.presets import symmetric_quad, tiny_test_chip
from repro.workload.trace import Trace

from conftest import unit


class TestPolicyConfig:
    def test_defaults_are_valid(self):
        cfg = PolicyConfig()
        assert cfg.n_actions == 5
        assert cfg.n_states == 6 * 3 * 5 * 3

    def test_hold_action_required(self):
        with pytest.raises(PolicyError, match="hold"):
            PolicyConfig(action_deltas=(-1, 1))

    def test_duplicate_deltas_rejected(self):
        with pytest.raises(PolicyError, match="duplicate"):
            PolicyConfig(action_deltas=(0, 1, 1))

    def test_minimum_bins(self):
        with pytest.raises(PolicyError):
            PolicyConfig(util_bins=0)
        # One feature may be disabled (1 bin) for ablations...
        assert PolicyConfig(util_bins=1).n_states > 1
        # ...but not all of them at once.
        with pytest.raises(PolicyError):
            PolicyConfig(util_bins=1, trend_bins=1, opp_bins=1, slack_bins=1)


class TestWorkloadPredictor:
    def test_first_observation_snaps(self):
        pred = WorkloadPredictor()
        pred.observe(0.6)
        assert pred.level == 0.6
        assert pred.trend == 0.0

    def test_ewma_tracks_gradually(self):
        pred = WorkloadPredictor(alpha=0.5, phase_change_threshold=10.0)
        pred.observe(0.0)
        pred.observe(1.0)
        assert pred.level == pytest.approx(0.5)
        assert pred.trend == pytest.approx(0.5)

    def test_phase_change_snaps(self):
        pred = WorkloadPredictor(alpha=0.1, phase_change_threshold=0.3)
        pred.observe(0.1)
        pred.observe(0.9)  # jump of 0.8 > 0.3: snap, don't crawl
        assert pred.level == 0.9
        assert pred.phase_changes == 1

    def test_trend_sign_follows_direction(self):
        pred = WorkloadPredictor(alpha=0.5, phase_change_threshold=10.0)
        pred.observe(0.5)
        pred.observe(0.8)
        assert pred.trend > 0
        pred2 = WorkloadPredictor(alpha=0.5, phase_change_threshold=10.0)
        pred2.observe(0.8)
        pred2.observe(0.5)
        assert pred2.trend < 0

    def test_negative_load_rejected(self):
        with pytest.raises(PolicyError):
            WorkloadPredictor().observe(-0.1)

    def test_reset(self):
        pred = WorkloadPredictor()
        pred.observe(0.5)
        pred.reset()
        assert pred.level == 0.0


class TestStateFeaturizer:
    def obs(self, util=0.5, opp=2, slack=1.0):
        base = initial_observation("c", opp, 10, (opp + 1) * 2e8, 2e9, 0.01)
        return type(base)(
            **{**base.__dict__, "utilization": util,
               "max_core_utilization": util, "qos_slack": slack}
        )

    def test_encode_in_range(self):
        feat = StateFeaturizer(PolicyConfig(), n_opps=10)
        idx = feat.encode(self.obs())
        assert 0 <= idx < feat.n_states

    def test_distinct_loads_distinct_states(self):
        feat = StateFeaturizer(PolicyConfig(), n_opps=10)
        idle = feat.encode(self.obs(util=0.0, opp=9))
        feat.reset()
        busy = feat.encode(self.obs(util=1.0, opp=9))
        assert idle != busy

    def test_opp_bin_spreads_over_table(self):
        cfg = PolicyConfig()
        feat = StateFeaturizer(cfg, n_opps=10)
        digits_low = feat.digits(self.obs(opp=0))
        digits_high = feat.digits(self.obs(opp=9))
        assert digits_low[2] == 0
        assert digits_high[2] == cfg.opp_bins - 1

    def test_slack_bin(self):
        cfg = PolicyConfig(slack_bins=3)
        feat = StateFeaturizer(cfg, n_opps=10)
        critical = feat.digits(self.obs(slack=0.0))
        relaxed = feat.digits(self.obs(slack=1.0))
        assert critical[3] == 0
        assert relaxed[3] == 2


class TestRLPolicyGovernor:
    def test_decide_before_reset_raises(self):
        policy = RLPowerManagementPolicy()
        with pytest.raises(PolicyError):
            policy.decide(initial_observation("c", 0, 3, 5e8, 1.5e9, 0.01))

    def test_runs_in_simulator(self, tiny_chip, steady_trace):
        policy = RLPowerManagementPolicy()
        result = Simulator(tiny_chip, steady_trace, {"cpu": policy}).run()
        assert result.intervals > 0
        assert policy.agent is not None
        assert policy.agent.updates > 0

    def test_learning_persists_across_runs(self, tiny_chip, steady_trace):
        policy = RLPowerManagementPolicy()
        Simulator(tiny_chip, steady_trace, {"cpu": policy}).run()
        updates_after_first = policy.agent.updates
        Simulator(tiny_chip, steady_trace, {"cpu": policy}).run()
        assert policy.agent.updates > updates_after_first
        assert policy.episodes == 2

    def test_forget_clears_knowledge(self, tiny_chip, steady_trace):
        policy = RLPowerManagementPolicy()
        Simulator(tiny_chip, steady_trace, {"cpu": policy}).run()
        policy.forget()
        assert policy.agent is None
        assert policy.episodes == 0

    def test_offline_mode_does_not_learn(self, tiny_chip, steady_trace):
        policy = RLPowerManagementPolicy(online=True)
        Simulator(tiny_chip, steady_trace, {"cpu": policy}).run()
        updates = policy.agent.updates
        policy.online = False
        Simulator(tiny_chip, steady_trace, {"cpu": policy}).run()
        assert policy.agent.updates == updates

    def test_offline_is_deterministic(self, tiny_chip, steady_trace):
        policy = RLPowerManagementPolicy()
        Simulator(tiny_chip, steady_trace, {"cpu": policy}).run()
        policy.online = False
        a = Simulator(tiny_chip, steady_trace, {"cpu": policy}).run()
        b = Simulator(tiny_chip, steady_trace, {"cpu": policy}).run()
        assert a.total_energy_j == b.total_energy_j
        assert a.qos == b.qos

    def test_rebind_to_different_table_rejected(self, tiny_chip):
        policy = RLPowerManagementPolicy()
        policy.reset(tiny_chip.cluster("cpu"))
        other = symmetric_quad()
        with pytest.raises(PolicyError, match="OPP"):
            policy.reset(other.cluster("cpu"))

    def test_decisions_stay_in_table(self, tiny_chip):
        """Even while exploring, returned indices are valid for a tiny
        3-OPP table with +-2 action deltas."""
        trace = Trace(
            units=[unit(uid=i, release=i * 0.02, work=2e6, deadline=i * 0.02 + 0.05)
                   for i in range(40)],
            duration_s=1.0,
        )
        policy = RLPowerManagementPolicy()
        result = Simulator(tiny_chip, trace, {"cpu": policy},
                           record_samples=True).run()
        assert all(0 <= s.opp_indices["cpu"] <= 2 for s in result.samples)

    def test_q_coverage_grows(self, tiny_chip, steady_trace):
        policy = RLPowerManagementPolicy()
        assert policy.q_coverage == 0.0
        Simulator(tiny_chip, steady_trace, {"cpu": policy}).run()
        assert policy.q_coverage > 0.0

    def test_learns_to_back_off_an_idle_cluster(self):
        """On a almost-idle workload the learned policy must not sit at
        the top OPP — the energy term alone should push it down."""
        chip = tiny_test_chip()
        policy = RLPowerManagementPolicy()
        trace = Trace(
            units=[unit(uid=i, release=i * 0.5, work=1e5, deadline=i * 0.5 + 0.45)
                   for i in range(8)],
            duration_s=4.0,
        )
        for _ in range(6):
            Simulator(chip, trace, {"cpu": policy}).run()
        policy.online = False
        result = Simulator(chip, trace, {"cpu": policy}, record_samples=True).run()
        mean_opp = sum(s.opp_indices["cpu"] for s in result.samples) / len(result.samples)
        assert mean_opp < 1.5
        assert result.qos.mean_qos > 0.95

    def test_beats_performance_governor_on_energy(self, tiny_chip, steady_trace):
        perf = Simulator(tiny_chip, steady_trace, lambda c: PerformanceGovernor()).run()
        policy = RLPowerManagementPolicy()
        for _ in range(8):
            Simulator(tiny_chip, steady_trace, {"cpu": policy}).run()
        policy.online = False
        rl = Simulator(tiny_chip, steady_trace, {"cpu": policy}).run()
        assert rl.total_energy_j < perf.total_energy_j
