"""Policy introspection and accelerator power estimation."""

import pytest

from repro.core.config import PolicyConfig
from repro.core.introspect import decision_surface, sanity_report
from repro.core.policy import RLPowerManagementPolicy
from repro.errors import HardwareModelError, PolicyError
from repro.hw.fixed_point import QFormat
from repro.hw.pipeline import AcceleratorPipeline
from repro.hw.power import AcceleratorPowerModel, overhead_fraction
from repro.hw.synthesis import estimate_resources
from repro.sim.engine import Simulator
from repro.soc.presets import tiny_test_chip


@pytest.fixture(scope="module")
def trained_policy():
    from repro.workload.phases import PhaseMachine, PhaseSpec
    from repro.workload.generator import TraceGenerator

    chip = tiny_test_chip()
    # The hi phase is infeasible at the floor OPP (2e7 cycles per 20 ms
    # period needs 1e9/s average), so slack genuinely reaches the
    # critical bin during exploration.
    machine = PhaseMachine(
        [
            PhaseSpec("lo", 0.05, 2e6, 0.3, 1.5, dwell_mean_s=1.0, dwell_min_s=0.4),
            PhaseSpec("hi", 0.02, 2e7, 0.3, 1.5, dwell_mean_s=1.0, dwell_min_s=0.4),
        ],
        [[0.4, 0.6], [0.6, 0.4]],
    )
    policy = RLPowerManagementPolicy(PolicyConfig())
    for ep in range(10):
        trace = TraceGenerator(machine, seed=ep).generate(5.0)
        Simulator(chip, trace, {"cpu": policy}).run()
    return policy


class TestDecisionSurface:
    def test_shape_matches_config(self, trained_policy):
        surface = decision_surface(trained_policy)
        cfg = trained_policy.config
        assert surface.deltas.shape == (
            cfg.util_bins, cfg.trend_bins, cfg.opp_bins, cfg.slack_bins
        )
        assert surface.visits.shape == surface.deltas.shape

    def test_coverage_positive_but_partial(self, trained_policy):
        surface = decision_surface(trained_policy)
        assert 0.0 < surface.coverage <= 1.0

    def test_deltas_are_legal_actions(self, trained_policy):
        surface = decision_surface(trained_policy)
        legal = set(trained_policy.config.action_deltas)
        assert set(surface.deltas.flatten().tolist()) <= legal

    def test_critical_slack_ramps_harder_than_relaxed(self, trained_policy):
        """The learned policy must push frequency harder when deadline
        slack is critical than when it is relaxed — the sanity property
        that distinguishes learning from noise."""
        surface = decision_surface(trained_policy)
        cfg = trained_policy.config
        critical = surface.mean_delta(slack_bin=0)
        relaxed = surface.mean_delta(slack_bin=cfg.slack_bins - 1)
        assert critical > relaxed

    def test_mean_delta_empty_slice_raises(self, trained_policy):
        surface = decision_surface(trained_policy)
        # Force an empty visited slice by intersecting with an unvisited
        # corner if one exists; otherwise skip.
        unvisited = (~surface.visits).nonzero()
        if len(unvisited[0]) == 0:
            pytest.skip("every state visited")
        u, t, o, s = (int(x[0]) for x in unvisited)
        with pytest.raises(PolicyError):
            surface.mean_delta(util_bin=u, trend_bin=t, opp_bin=o, slack_bin=s)

    def test_render_slice(self, trained_policy):
        surface = decision_surface(trained_policy)
        text = surface.render_slice(slack_bin=0)
        assert "greedy OPP delta" in text
        assert "util\\opp" in text

    def test_sanity_report(self, trained_policy):
        report = sanity_report(trained_policy)
        assert "coverage" in report
        assert "critical slack" in report

    def test_untrained_policy_rejected(self):
        with pytest.raises(PolicyError):
            decision_surface(RLPowerManagementPolicy())


class TestAcceleratorPower:
    def reference(self):
        cfg = PolicyConfig()
        resources = estimate_resources(cfg.n_states, cfg.n_actions, QFormat(7, 8))
        pipeline = AcceleratorPipeline(n_actions=cfg.n_actions)
        return resources, pipeline

    def test_step_energy_tiny(self):
        resources, pipeline = self.reference()
        model = AcceleratorPowerModel()
        e = model.step_energy_j(resources, pipeline.step_cycles())
        assert 0 < e < 1e-9  # well under a nanojoule per decision

    def test_average_power_milliwatts(self):
        resources, pipeline = self.reference()
        model = AcceleratorPowerModel()
        # Two clusters at 100 decisions/s each.
        p = model.average_power_w(resources, pipeline.step_cycles(), 200.0)
        assert p < 0.01  # < 10 mW

    def test_overhead_negligible_vs_savings(self):
        """The E1 savings are hundreds of mW; the accelerator costs mW.
        The hardware policy pays for itself thousands of times over."""
        resources, pipeline = self.reference()
        model = AcceleratorPowerModel()
        accel_w = model.average_power_w(resources, pipeline.step_cycles(), 200.0)
        savings_w = 0.3  # typical E1-scale chip-power saving
        assert overhead_fraction(accel_w, savings_w) < 0.05

    def test_power_scales_with_rate(self):
        resources, pipeline = self.reference()
        model = AcceleratorPowerModel()
        slow = model.average_power_w(resources, pipeline.step_cycles(), 100.0)
        fast = model.average_power_w(resources, pipeline.step_cycles(), 10_000.0)
        assert fast > slow

    def test_validation(self):
        resources, pipeline = self.reference()
        model = AcceleratorPowerModel()
        with pytest.raises(HardwareModelError):
            model.step_energy_j(resources, 0)
        with pytest.raises(HardwareModelError):
            model.average_power_w(resources, 10, -1.0)
        with pytest.raises(HardwareModelError):
            overhead_fraction(0.01, 0.0)
        with pytest.raises(HardwareModelError):
            AcceleratorPowerModel(lut_energy_j=-1.0)
