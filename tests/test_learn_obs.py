"""The learning ledger, convergence detectors, and their gates.

Covers the PR 9 learning-observability stack end to end: Welford
TD-error statistics against numpy ground truth, the ``LearnRecorder``
sole-writer contract, the declarative :class:`ConvergenceSpec`
detectors, the ``repro learn report|gate`` CLI, the bit-identity of
training with and without a recorder, and the parity between E5's
legacy tail heuristic and the shared plateau detector it was refactored
onto.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import main
from repro.core.trainer import train_curriculum, train_policy
from repro.errors import ObsError, PolicyError
from repro.experiments.learning import (
    E5_CONVERGENCE,
    e5_convergence_episode,
    e6_adaptation,
)
from repro.obs import (
    DEFAULT_CONVERGENCE,
    LEARN_RECORD_FIELDS,
    LEARN_RENDERERS,
    ConvergenceSpec,
    LearnRecorder,
    evaluate_learning,
    format_learn_summary,
    gate_learn_log,
    is_plateau,
    learn_gate,
    learn_record,
    load_convergence_spec,
    plateau_episode,
    read_learn_log,
    spec_from_mapping,
    summarize_learning,
)
from repro.rl.stats import TDErrorStats
from repro.soc.presets import tiny_test_chip
from repro.workload.scenarios import get_scenario

DATA = Path(__file__).parent / "data"
HEALTHY_LEDGER = DATA / "learn-log-fixture.jsonl"
DIVERGENT_LEDGER = DATA / "learn-log-divergent.jsonl"
SPEC_FILE = DATA / "learn-spec.json"
E5_CURVE = DATA / "e5-curve-fixture.json"

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


# ---------------------------------------------------------------------------
# TDErrorStats: Welford variance + parallel merge vs numpy
# ---------------------------------------------------------------------------


class TestTDErrorStats:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(finite_floats, min_size=1, max_size=200))
    def test_variance_matches_numpy(self, values):
        stats = TDErrorStats()
        for v in values:
            stats.push(v)
        assert stats.variance == pytest.approx(
            float(np.var(values)), rel=1e-9, abs=1e-6
        )
        assert stats.mean_abs == pytest.approx(
            float(np.mean(np.abs(values))), rel=1e-9, abs=1e-9
        )

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(finite_floats, min_size=0, max_size=100),
        st.lists(finite_floats, min_size=0, max_size=100),
    )
    def test_merge_matches_concatenation(self, a, b):
        sa, sb = TDErrorStats(), TDErrorStats()
        for v in a:
            sa.push(v)
        for v in b:
            sb.push(v)
        merged = sa.merge(sb)
        both = a + b
        assert merged.count == len(both)
        if both:
            assert merged.variance == pytest.approx(
                float(np.var(both)), rel=1e-9, abs=1e-6
            )
            assert merged.max_abs == pytest.approx(
                float(np.max(np.abs(both)))
            )
            assert merged.last == (b[-1] if b else a[-1])
        else:
            assert merged.variance == 0.0

    def test_merge_does_not_mutate_operands(self):
        sa, sb = TDErrorStats(), TDErrorStats()
        sa.push(1.0)
        sb.push(2.0)
        sa.merge(sb)
        assert sa.count == 1 and sb.count == 1

    def test_reset_clears_welford_state(self):
        stats = TDErrorStats()
        stats.push(3.0)
        stats.reset()
        assert stats.count == 0
        assert stats.variance == 0.0
        assert stats.snapshot()["variance"] == 0.0

    def test_snapshot_reports_variance(self):
        stats = TDErrorStats()
        for v in (1.0, 2.0, 3.0):
            stats.push(v)
        snap = stats.snapshot()
        assert snap["variance"] == pytest.approx(np.var([1.0, 2.0, 3.0]))


# ---------------------------------------------------------------------------
# learn_record validation + LearnRecorder sole-writer contract
# ---------------------------------------------------------------------------


class TestLearnRecord:
    def test_record_has_every_schema_field(self):
        record = learn_record(episode=0, scenario="gaming", ts=1.0)
        assert set(LEARN_RECORD_FIELDS) <= set(record)

    def test_negative_episode_rejected(self):
        with pytest.raises(ObsError, match="episode"):
            learn_record(episode=-1, scenario="gaming")

    def test_empty_scenario_rejected(self):
        with pytest.raises(ObsError, match="scenario"):
            learn_record(episode=0, scenario="")

    def test_fraction_fields_bounded(self):
        for field in ("coverage", "churn", "epsilon"):
            with pytest.raises(ObsError, match=field):
                learn_record(episode=0, scenario="gaming", **{field: 1.5})

    def test_negative_norms_rejected(self):
        with pytest.raises(ObsError, match="q_norm_l2"):
            learn_record(episode=0, scenario="gaming", q_norm_l2=-1.0)

    def test_explicit_ts_and_extra_fields_pass_through(self):
        record = learn_record(
            episode=2, scenario="gaming", ts=123.0, run="r1"
        )
        assert record["ts"] == 123.0 and record["run"] == "r1"


class TestLearnRecorder:
    def test_roundtrip_and_written_counter(self, tmp_path):
        recorder = LearnRecorder(tmp_path / "deep" / "dir" / "train.jsonl")
        recorder.log(learn_record(episode=0, scenario="gaming", ts=1.0))
        recorder.log(learn_record(episode=1, scenario="gaming", ts=2.0))
        assert recorder.written == 2
        records = read_learn_log(recorder.path)
        assert [r["episode"] for r in records] == [0, 1]

    def test_lines_are_sorted_key_json(self, tmp_path):
        recorder = LearnRecorder(tmp_path / "train.jsonl")
        recorder.log(learn_record(episode=0, scenario="gaming", ts=1.0))
        line = recorder.path.read_text().splitlines()[0]
        keys = list(json.loads(line))
        assert keys == sorted(keys)

    def test_read_missing_file_raises(self, tmp_path):
        with pytest.raises(ObsError):
            read_learn_log(tmp_path / "absent.jsonl")

    def test_read_rejects_non_json_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n")
        with pytest.raises(ObsError):
            read_learn_log(path)


# ---------------------------------------------------------------------------
# Plateau primitives + ConvergenceSpec
# ---------------------------------------------------------------------------


class TestPlateau:
    def test_flat_window_is_plateau(self):
        assert is_plateau([2.0, 2.0, 2.0], 0.0)

    def test_positive_series_matches_ratio_form(self):
        # For positive values: plateau <=> max/min < 1 + tol.
        values = [1.0, 1.2, 1.1]
        assert is_plateau(values, 0.25) == (max(values) / min(values) < 1.25)
        assert not is_plateau(values, 0.1)

    def test_empty_window_raises(self):
        with pytest.raises(ObsError):
            is_plateau([], 0.1)

    def test_negative_tolerance_raises(self):
        with pytest.raises(ObsError):
            is_plateau([1.0], -0.1)

    def test_plateau_episode_finds_first_window(self):
        values = [10.0, 5.0, 2.0, 2.01, 2.02, 2.0]
        assert plateau_episode(values, window=3, tol=0.10) == 4

    def test_plateau_episode_none_when_moving(self):
        assert plateau_episode([1.0, 2.0, 4.0, 8.0], 3, 0.1) is None

    def test_plateau_episode_short_series_is_none(self):
        assert plateau_episode([1.0], 4, 0.1) is None

    def test_plateau_window_below_two_raises(self):
        with pytest.raises(ObsError):
            plateau_episode([1.0, 1.0], 1, 0.1)


class TestConvergenceSpec:
    def test_defaults_are_valid(self):
        assert DEFAULT_CONVERGENCE.window == 4

    def test_invalid_window_rejected(self):
        with pytest.raises(ObsError):
            ConvergenceSpec(window=1)

    def test_unknown_mapping_keys_rejected(self):
        with pytest.raises(ObsError, match="unknown"):
            spec_from_mapping({"window": 4, "bogus": 1})

    def test_committed_spec_file_loads(self):
        spec = load_convergence_spec(SPEC_FILE)
        assert spec.window == 8
        assert spec.max_q_abs == 1000.0

    def test_non_json_spec_file_raises(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text("[]")
        with pytest.raises(ObsError):
            load_convergence_spec(path)


# ---------------------------------------------------------------------------
# evaluate_learning + gate over the committed fixtures
# ---------------------------------------------------------------------------


def _records(**series):
    """Synthesise schema-valid records from per-field value lists."""
    n = max(len(v) for v in series.values())
    out = []
    for i in range(n):
        fields = {k: v[i] for k, v in series.items()}
        out.append(learn_record(episode=i, scenario="gaming", ts=float(i),
                                **fields))
    return out


class TestEvaluateLearning:
    def test_short_ledger_is_no_data_and_passes(self):
        report = evaluate_learning(
            _records(reward=[1.0, 1.0]), DEFAULT_CONVERGENCE
        )
        windowed = [v for v in report.verdicts if v.name != "q-explosion"]
        assert all(v.status == "no-data" for v in windowed)
        assert report.ok and report.converged_episode is None

    def test_empty_ledger_passes(self):
        report = evaluate_learning([], DEFAULT_CONVERGENCE)
        assert report.ok
        assert all(v.status == "no-data" for v in report.verdicts)

    def test_q_explosion_detected_anywhere_in_ledger(self):
        records = _records(q_max_abs=[1.0, 5000.0, 1.0, 1.0, 1.0])
        report = evaluate_learning(records, DEFAULT_CONVERGENCE)
        verdict = {v.name: v for v in report.verdicts}["q-explosion"]
        assert verdict.status == "fail" and verdict.value == 5000.0

    def test_converged_episode_reads_episode_field(self):
        records = _records(reward=[-10.0, -5.0, -1.0, -1.0, -1.0, -1.0])
        report = evaluate_learning(records, DEFAULT_CONVERGENCE)
        assert report.converged_episode == 5

    def test_healthy_fixture_passes_both_specs(self):
        for spec in (DEFAULT_CONVERGENCE, load_convergence_spec(SPEC_FILE)):
            result = gate_learn_log(HEALTHY_LEDGER, spec)
            assert result.exit_code == 0, [
                (v.name, v.status) for v in result.report.failures
            ]

    def test_divergent_fixture_fails_every_detector(self):
        result = gate_learn_log(
            DIVERGENT_LEDGER, load_convergence_spec(SPEC_FILE)
        )
        assert result.exit_code == 1
        assert {v.name for v in result.report.failures} == {
            "td-slope", "churn", "reward-plateau", "churn-oscillation",
            "q-explosion",
        }

    def test_warn_only_forces_exit_zero(self):
        result = gate_learn_log(DIVERGENT_LEDGER, warn_only=True)
        assert result.exit_code == 0 and not result.report.ok

    def test_renderers_cover_all_formats(self):
        report = evaluate_learning(read_learn_log(DIVERGENT_LEDGER))
        assert set(LEARN_RENDERERS) == {"text", "json", "github"}
        text = LEARN_RENDERERS["text"](report)
        assert "FAIL" in text
        payload = json.loads(LEARN_RENDERERS["json"](report))
        assert payload["ok"] is False
        github = LEARN_RENDERERS["github"](report)
        assert "::error" in github

    def test_summary_over_fixture(self):
        summary = summarize_learning(read_learn_log(HEALTHY_LEDGER))
        assert summary["episodes"] == 8
        assert summary["scenarios"] == ["audio_playback"]
        text = format_learn_summary(summary)
        assert "8 episode(s)" in text

    def test_learn_gate_result_carries_report(self):
        report = evaluate_learning(read_learn_log(HEALTHY_LEDGER))
        result = learn_gate(report)
        assert result.report is report and result.exit_code == 0


# ---------------------------------------------------------------------------
# CLI: repro learn report | gate, repro train --learn-log
# ---------------------------------------------------------------------------


class TestLearnCli:
    def test_gate_divergent_fixture_exits_nonzero(self, capsys):
        code = main([
            "learn", "gate", "--learn-log", str(DIVERGENT_LEDGER),
            "--spec", str(SPEC_FILE),
        ])
        assert code == 1
        assert "FAIL" in capsys.readouterr().out

    def test_gate_healthy_fixture_passes(self, capsys):
        code = main(["learn", "gate", "--learn-log", str(HEALTHY_LEDGER)])
        assert code == 0
        assert "converged" in capsys.readouterr().out

    def test_gate_warn_only_exits_zero(self, capsys):
        code = main([
            "learn", "gate", "--learn-log", str(DIVERGENT_LEDGER),
            "--warn-only",
        ])
        assert code == 0
        assert "warn-only" in capsys.readouterr().err

    def test_report_json_carries_summary_and_verdicts(self, capsys):
        code = main([
            "learn", "report", "--learn-log", str(HEALTHY_LEDGER),
            "--format", "json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["episodes"] == 8
        assert payload["report"]["ok"] is True

    def test_report_text_renders_summary(self, capsys):
        code = main(["learn", "report", "--learn-log", str(HEALTHY_LEDGER)])
        assert code == 0
        out = capsys.readouterr().out
        assert "episode(s)" in out and "detector(s)" in out

    def test_train_learn_log_writes_ledger(self, tmp_path, capsys):
        ledger = tmp_path / "train.jsonl"
        code = main([
            "train", "--chip", "tiny", "--scenario", "audio_playback",
            "--episodes", "2", "--duration", "2",
            "--save", str(tmp_path / "ck"), "--learn-log", str(ledger),
        ])
        assert code == 0
        assert "learning ledger: 2 record(s)" in capsys.readouterr().out
        records = read_learn_log(ledger)
        assert [r["episode"] for r in records] == [0, 1]
        assert all(set(LEARN_RECORD_FIELDS) <= set(r) for r in records)


# ---------------------------------------------------------------------------
# Trainer integration: bit-identity, churn, curriculum indices
# ---------------------------------------------------------------------------


class TestTrainerLedger:
    def _train(self, recorder=None):
        return train_policy(
            tiny_test_chip(), get_scenario("audio_playback"),
            episodes=3, episode_duration_s=2.0, recorder=recorder,
        )

    def test_recorder_is_bit_identical(self, tmp_path):
        plain = self._train()
        ledgered = self._train(LearnRecorder(tmp_path / "t.jsonl"))
        assert [(r.reward, r.energy_per_qos_j, r.td_error_mean_abs)
                for r in plain.history] == [
            (r.reward, r.energy_per_qos_j, r.td_error_mean_abs)
            for r in ledgered.history
        ]
        for name, policy in plain.policies.items():
            assert np.array_equal(
                ledgered.policies[name].agent.table.values,
                policy.agent.table.values,
            )

    def test_first_episode_churn_is_zero(self, tmp_path):
        recorder = LearnRecorder(tmp_path / "t.jsonl")
        self._train(recorder)
        records = read_learn_log(recorder.path)
        assert records[0]["churn"] == 0.0
        assert all(0.0 <= r["churn"] <= 1.0 for r in records)

    def test_ledger_carries_learner_state(self, tmp_path):
        recorder = LearnRecorder(tmp_path / "t.jsonl")
        result = self._train(recorder)
        records = read_learn_log(recorder.path)
        assert len(records) == len(result.history)
        last = records[-1]
        assert last["q_norm_l2"] > 0.0
        assert last["updates"] > 0
        assert last["scenario"] == "audio_playback"

    def test_curriculum_episodes_are_global(self, tmp_path):
        recorder = LearnRecorder(tmp_path / "c.jsonl")
        train_curriculum(
            tiny_test_chip(),
            [get_scenario("audio_playback"), get_scenario("idle")],
            episodes_per_scenario=2, episode_duration_s=2.0,
            recorder=recorder,
        )
        records = read_learn_log(recorder.path)
        assert [r["episode"] for r in records] == [0, 1, 2, 3]
        assert [r["scenario"] for r in records] == [
            "audio_playback", "audio_playback", "idle", "idle",
        ]


class TestFleetLedger:
    def test_rl_job_writes_per_job_ledger(self, tmp_path):
        from repro.fleet import FleetSpec, run_fleet

        spec = FleetSpec(
            scenarios=("audio_playback",), governors=(),
            include_rl=True, seeds=(100,), chips=("tiny",),
            duration_s=2.0, train_episodes=2,
            learn_log_dir=str(tmp_path / "ledgers"),
        )
        result = run_fleet(spec, jobs=1)
        assert not result.failures
        ledgers = sorted((tmp_path / "ledgers").glob("*.jsonl"))
        assert len(ledgers) == 1
        assert "rl-policy" in ledgers[0].name
        records = read_learn_log(ledgers[0])
        assert [r["episode"] for r in records] == [0, 1]

    def test_learn_log_dir_is_cache_identity(self):
        from repro.fleet import JobSpec

        spec = JobSpec(scenario="idle", governor="rl-policy",
                       learn_log_dir="ledgers")
        assert spec.to_mapping()["learn_log_dir"] == "ledgers"


# ---------------------------------------------------------------------------
# E5 parity: legacy tail heuristic == shared plateau detector
# ---------------------------------------------------------------------------


class TestE5Parity:
    def _curve(self) -> list[float]:
        return json.loads(E5_CURVE.read_text())["energy_per_qos_j"]

    def test_legacy_ratio_equals_plateau_on_every_window(self):
        values = self._curve()
        w, tol = E5_CONVERGENCE.window, E5_CONVERGENCE.reward_plateau_tol
        assert tol == 0.25 and w == 4  # the legacy max/min < 1.25 over 4
        for i in range(w - 1, len(values)):
            tail = values[i - w + 1 : i + 1]
            legacy = max(tail) / min(tail) < 1.25
            assert is_plateau(tail, tol) == legacy, (i, tail)

    def test_convergence_episode_matches_legacy_scan(self):
        values = self._curve()
        w = E5_CONVERGENCE.window
        legacy = next(
            (
                i
                for i in range(w - 1, len(values))
                if max(values[i - w + 1 : i + 1])
                / min(values[i - w + 1 : i + 1])
                < 1.25
            ),
            None,
        )
        assert e5_convergence_episode(values) == legacy

    def test_monotone_descent_never_plateaus(self):
        values = [16.0, 8.0, 4.0, 2.0, 1.0]
        assert e5_convergence_episode(values) is None


# ---------------------------------------------------------------------------
# experiments/learning.py edge cases
# ---------------------------------------------------------------------------


class TestLearningEdgeCases:
    def test_zero_episode_training_rejected(self):
        with pytest.raises(PolicyError, match="episode"):
            train_policy(
                tiny_test_chip(), get_scenario("idle"), episodes=0,
                episode_duration_s=2.0,
            )

    def test_single_episode_e6_segment(self, tmp_path):
        recorder = LearnRecorder(tmp_path / "e6.jsonl")
        result = e6_adaptation(
            segments=["audio_playback"], segment_duration_s=2.0,
            train_episodes=1, train_episode_s=2.0,
            chip=tiny_test_chip(), recorder=recorder,
        )
        assert len(result.segments) == 1
        assert result.segments[0].scenario == "audio_playback"
        # Only the travelling policy ledgers; its one episode is there.
        records = read_learn_log(recorder.path)
        assert [r["episode"] for r in records] == [0]

    def test_evaluate_policy_on_untrained_policies(self):
        from repro.core.trainer import evaluate_policy, make_policies

        chip = tiny_test_chip()
        policies = make_policies(chip)
        trace = get_scenario("idle").trace(2.0, seed=7)
        result = evaluate_policy(chip, policies, trace)
        # An all-default Q-table must still produce a finite, sane run.
        assert result.total_energy_j > 0.0
        assert 0.0 <= result.qos.mean_qos <= 1.0
        for policy in policies.values():
            assert policy.online is False or policy.agent is not None
