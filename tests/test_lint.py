"""The static-analysis engine: rules, suppression, baseline, CLI gate."""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.cli import main
from repro.errors import LintError
from repro.lint import (
    Baseline,
    Finding,
    ImportMap,
    all_rules,
    check_paths,
    check_source,
    filter_findings,
    iter_python_files,
    module_relpath,
    noqa_map,
    render,
    render_github,
    render_json,
    render_text,
    rule_catalogue,
    select_rules,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"


def lint(source: str, path: str, **kwargs):
    """Lint dedented source as if it lived at a package-relative path."""
    return check_source(textwrap.dedent(source), path, **kwargs)


def codes(result) -> list[str]:
    return [f.code for f in result.findings]


# ---------------------------------------------------------------------------
# Engine plumbing
# ---------------------------------------------------------------------------


class TestModuleRelpath:
    def test_src_layout(self):
        assert module_relpath("src/repro/sim/engine.py") == "sim/engine.py"

    def test_absolute_path(self):
        assert (
            module_relpath("/root/repo/src/repro/qos/metrics.py")
            == "qos/metrics.py"
        )

    def test_virtual_fixture_path(self):
        assert module_relpath("sim/x.py") == "sim/x.py"

    def test_src_anchor_without_repro(self):
        assert module_relpath("/tmp/t/src/sim/x.py") == "sim/x.py"


class TestImportMap:
    def map_for(self, source: str) -> ImportMap:
        import ast

        return ImportMap(ast.parse(textwrap.dedent(source)))

    def test_plain_and_aliased_imports(self):
        import ast

        m = self.map_for("import numpy as np\nimport time\n")
        np_call = ast.parse("np.random.rand()").body[0].value
        assert m.resolve(np_call.func) == "numpy.random.rand"
        t_call = ast.parse("time.time()").body[0].value
        assert m.resolve(t_call.func) == "time.time"

    def test_from_import(self):
        import ast

        m = self.map_for("from time import time\n")
        call = ast.parse("time()").body[0].value
        assert m.resolve(call.func) == "time.time"


class TestSelection:
    def test_all_codes_registered(self):
        expected = {
            "RPL001", "RPL002", "RPL003", "RPL101", "RPL102",
            "RPL201", "RPL202", "RPL203", "RPL301", "RPL401", "RPL402",
            "RPL501", "RPL601", "RPL701", "RPL801", "RPL802",
            "RPL901", "RPL902", "RPL903", "RPL904", "RPL910",
        }
        assert set(all_rules()) == expected

    def test_prefix_select_expands_family(self):
        chosen = {r.code for r in select_rules(select=["RPL0"])}
        assert chosen == {"RPL001", "RPL002", "RPL003"}

    def test_ignore_removes_codes(self):
        chosen = {r.code for r in select_rules(ignore=["RPL1", "RPL2"])}
        assert "RPL101" not in chosen and "RPL201" not in chosen
        assert "RPL001" in chosen

    def test_unknown_selector_raises(self):
        with pytest.raises(LintError):
            select_rules(select=["RPL999"])

    def test_syntax_error_raises(self):
        with pytest.raises(LintError):
            check_source("def broken(:\n", "sim/x.py")

    def test_missing_path_raises(self):
        with pytest.raises(LintError):
            list(iter_python_files(["/nonexistent/nowhere.py"]))


# ---------------------------------------------------------------------------
# Determinism rules (RPL001-003)
# ---------------------------------------------------------------------------


class TestWallClock:
    def test_time_time_flagged(self):
        r = lint("import time\nx = time.time()\n", "sim/x.py")
        assert codes(r) == ["RPL001"]

    def test_datetime_now_flagged(self):
        r = lint(
            "import datetime\nts = datetime.datetime.now()\n",
            "fleet/worker.py",
        )
        assert codes(r) == ["RPL001"]

    def test_perf_counter_allowed(self):
        r = lint("import time\nx = time.perf_counter()\n", "sim/x.py")
        assert codes(r) == []

    def test_out_of_scope_path_unflagged(self):
        r = lint("import time\nx = time.time()\n", "fleet/events.py")
        assert codes(r) == []


class TestGlobalRng:
    def test_stdlib_random_flagged(self):
        r = lint("import random\nx = random.random()\n", "rl/x.py")
        assert codes(r) == ["RPL002"]

    def test_numpy_global_state_flagged(self):
        r = lint("import numpy as np\nx = np.random.rand(3)\n", "sim/x.py")
        assert codes(r) == ["RPL002"]

    def test_unseeded_default_rng_flagged(self):
        r = lint(
            "import numpy as np\nrng = np.random.default_rng()\n", "rl/x.py"
        )
        assert codes(r) == ["RPL002"]

    def test_seeded_default_rng_allowed(self):
        r = lint(
            "import numpy as np\nrng = np.random.default_rng(42)\n", "rl/x.py"
        )
        assert codes(r) == []

    def test_seed_none_still_flagged(self):
        r = lint(
            "import numpy as np\nrng = np.random.default_rng(seed=None)\n",
            "rl/x.py",
        )
        assert codes(r) == ["RPL002"]


class TestSetIteration:
    def test_for_over_set_call_flagged(self):
        r = lint("for c in set(items):\n    use(c)\n", "sim/x.py")
        assert codes(r) == ["RPL003"]

    def test_comprehension_over_set_literal_flagged(self):
        r = lint("out = [f(x) for x in {1, 2, 3}]\n", "sim/x.py")
        assert codes(r) == ["RPL003"]

    def test_set_algebra_flagged(self):
        r = lint("for k in set(a) - set(b):\n    use(k)\n", "sim/x.py")
        assert codes(r) == ["RPL003"]

    def test_sorted_set_allowed(self):
        r = lint("for c in sorted(set(items)):\n    use(c)\n", "sim/x.py")
        assert codes(r) == []


# ---------------------------------------------------------------------------
# Unit rules (RPL101-102)
# ---------------------------------------------------------------------------


class TestMixedUnits:
    def test_scale_mismatch_add_flagged(self):
        r = lint("total = freq_mhz + freq_hz\n", "soc/x.py")
        assert codes(r) == ["RPL101"]
        assert "scales" in r.findings[0].message

    def test_dimension_mismatch_compare_flagged(self):
        r = lint("if power_w > energy_j:\n    pass\n", "power/x.py")
        assert codes(r) == ["RPL101"]
        assert "dimensions" in r.findings[0].message

    def test_augmented_accumulation_flagged(self):
        r = lint("total_j += extra_mj\n", "power/x.py")
        assert codes(r) == ["RPL101"]

    def test_attribute_and_call_operands(self):
        r = lint("d = cur.freq_mhz - prev.freq_hz\n", "soc/x.py")
        assert codes(r) == ["RPL101"]

    def test_same_unit_allowed(self):
        r = lint("total_j = idle_j + busy_j\n", "power/x.py")
        assert codes(r) == []

    def test_multiplication_exempt(self):
        r = lint("e_j = power_w * dt_s\n", "power/x.py")
        assert codes(r) == []


class TestSuffixlessQuantity:
    def test_suffixless_power_function_flagged(self):
        r = lint(
            "def leakage_power(temp_c: float) -> float:\n    return temp_c\n",
            "power/x.py",
        )
        assert codes(r) == ["RPL102"]

    def test_unit_suffix_allowed(self):
        r = lint(
            "def leakage_power_w(temp_c: float) -> float:\n    return temp_c\n",
            "power/x.py",
        )
        assert codes(r) == []

    def test_dimensionless_suffix_allowed(self):
        r = lint(
            "def energy_ratio(a_j: float, b_j: float) -> float:\n"
            "    return a_j\n",
            "qos/x.py",
        )
        assert codes(r) == []

    def test_private_and_out_of_scope_unflagged(self):
        private = lint(
            "def _power(t: float) -> float:\n    return t\n", "power/x.py"
        )
        elsewhere = lint(
            "def leakage_power(t: float) -> float:\n    return t\n", "cli.py"
        )
        assert codes(private) == [] and codes(elsewhere) == []


# ---------------------------------------------------------------------------
# Fixed-point rules (RPL201-203)
# ---------------------------------------------------------------------------


class TestFixedPoint:
    def test_float_literal_in_update_flagged(self):
        r = lint(
            "def update(td: int) -> int:\n    return td * 0.25\n",
            "hw/datapath.py",
        )
        assert codes(r) == ["RPL201"]

    def test_float_in_conversion_helper_allowed(self):
        r = lint(
            "def quantize(v: float) -> int:\n    return int(v * 256.0)\n",
            "hw/fixed_point.py",
        )
        assert codes(r) == []

    def test_float_default_and_class_field_allowed(self):
        r = lint(
            """\
            class Config:
                gamma: float = 0.85

            def step(x: int, alpha_f: float = 0.5) -> int:
                return x
            """,
            "hw/datapath.py",
        )
        assert codes(r) == []

    def test_true_division_flagged_shift_not(self):
        flagged = lint(
            "def update(a: int, b: int) -> int:\n    return a / b\n",
            "hw/datapath.py",
        )
        shifted = lint(
            "def update(a: int) -> int:\n    return a >> 4\n",
            "hw/datapath.py",
        )
        assert codes(flagged) == ["RPL202"] and codes(shifted) == []

    def test_wide_qformat_flagged_against_fallback(self):
        r = lint(
            "fmt = QFormat(int_bits=15, frac_bits=16)\n", "hw/datapath.py"
        )
        assert "RPL203" in codes(r)

    def test_q7_8_fits(self):
        r = lint("fmt = QFormat(int_bits=7, frac_bits=8)\n", "hw/policy.py")
        assert codes(r) == []

    def test_width_read_from_register_map(self, tmp_path):
        registers = tmp_path / "src" / "repro" / "hw" / "registers.py"
        registers.parent.mkdir(parents=True)
        registers.write_text('"""Map."""\nOBS1_REWARD_BITS = 8\n')
        r = lint(
            "fmt = QFormat(int_bits=3, frac_bits=8)\n",
            "hw/datapath.py",
            project_root=tmp_path,
        )
        assert "RPL203" in codes(r)
        assert "8" in r.findings[-1].message

    def test_repo_register_constant_drives_the_rule(self):
        from repro.hw.registers import OBS1_REWARD_BITS
        from repro.lint.rules.fixedpoint import _reward_field_bits

        class Ctx:
            project_root = REPO_ROOT

        assert _reward_field_bits(Ctx) == OBS1_REWARD_BITS


# ---------------------------------------------------------------------------
# Observability guard rule (RPL301)
# ---------------------------------------------------------------------------


class TestObsGuard:
    def test_unguarded_probe_flagged(self):
        r = lint(
            "def step(tracer):\n    tracer.instant('tick', {})\n",
            "sim/x.py",
        )
        assert codes(r) == ["RPL301"]

    def test_if_guard_allowed(self):
        r = lint(
            """\
            def step(tracer):
                if tracer:
                    tracer.instant('tick', {})
            """,
            "sim/x.py",
        )
        assert codes(r) == []

    def test_else_branch_of_guard_still_flagged(self):
        r = lint(
            """\
            def step(tracer):
                if tracer:
                    pass
                else:
                    tracer.instant('tick', {})
            """,
            "sim/x.py",
        )
        assert codes(r) == ["RPL301"]

    def test_conditional_expression_allowed(self):
        r = lint(
            "def step(tracer):\n"
            "    t = tracer.begin('phase') if tracer else None\n",
            "sim/x.py",
        )
        assert codes(r) == []

    def test_early_return_guard_allowed(self):
        r = lint(
            """\
            from repro.obs import OBS

            def emit():
                if not OBS.enabled:
                    return
                OBS.metrics.counter('runs', 1)
            """,
            "rl/x.py",
        )
        assert codes(r) == []

    def test_obs_alias_tracked(self):
        r = lint(
            """\
            from repro.obs import OBS

            def emit():
                m = OBS.metrics
                m.counter('runs', 1)
            """,
            "rl/x.py",
        )
        assert codes(r) == ["RPL301"]

    def test_exporters_out_of_scope(self):
        r = lint(
            "def export(tracer):\n    tracer.instant('tick', {})\n",
            "obs/export.py",
        )
        assert codes(r) == []


# ---------------------------------------------------------------------------
# Exception-policy rules (RPL401-402)
# ---------------------------------------------------------------------------


class TestExceptionPolicy:
    def test_bare_except_flagged(self):
        r = lint(
            "try:\n    run()\nexcept:\n    pass\n", "fleet/runner.py"
        )
        assert "RPL401" in codes(r)

    def test_swallowed_broad_except_flagged(self):
        r = lint(
            "try:\n    run()\nexcept Exception:\n    pass\n",
            "fleet/runner.py",
        )
        assert codes(r) == ["RPL402"]

    def test_recording_handler_allowed(self):
        r = lint(
            """\
            try:
                run()
            except Exception as exc:
                failures.append(JobFailure(error=repr(exc)))
            """,
            "fleet/worker.py",
        )
        assert codes(r) == []

    def test_logging_handler_allowed(self):
        r = lint(
            "try:\n    run()\nexcept Exception:\n    log.warning('boom')\n",
            "fleet/runner.py",
        )
        assert codes(r) == []

    def test_reraising_handler_allowed(self):
        r = lint(
            "try:\n    run()\nexcept Exception:\n    raise\n",
            "fleet/runner.py",
        )
        assert codes(r) == []

    def test_outside_fleet_unflagged(self):
        r = lint("try:\n    run()\nexcept:\n    pass\n", "analysis/x.py")
        assert codes(r) == []


# ---------------------------------------------------------------------------
# RPL5xx: performance-ledger discipline
# ---------------------------------------------------------------------------


class TestLedgerDiscipline:
    def test_ad_hoc_open_append_flagged(self):
        r = lint(
            """\
            import json

            def save(payload):
                with open(".repro/perf-ledger.jsonl", "a") as fh:
                    json.dump(payload, fh)
            """,
            "analysis/report.py",
        )
        assert "RPL501" in codes(r)

    def test_json_dump_to_ledger_variable_flagged(self):
        r = lint(
            """\
            import json

            def save(ledger_file, payload):
                json.dump(payload, ledger_file)
            """,
            "cli.py",
        )
        assert codes(r) == ["RPL501"]

    def test_write_text_on_ledger_path_flagged(self):
        r = lint(
            "def f(ledger_path, line):\n"
            "    ledger_path.write_text(line)\n",
            "experiments/e1.py",
        )
        assert codes(r) == ["RPL501"]

    def test_blessed_writer_module_exempt(self):
        r = lint(
            """\
            import json

            def append(self, record):
                with self.path.open("a") as fh:
                    fh.write(json.dumps(record) + "\\n")
            """,
            "perf/ledger.py",
        )
        assert codes(r) == []

    def test_non_ledger_writes_unflagged(self):
        r = lint(
            """\
            import json

            def save(path, payload):
                with open(path, "w") as fh:
                    json.dump(payload, fh)
            """,
            "analysis/export.py",
        )
        assert codes(r) == []

    def test_record_run_call_is_the_sanctioned_path(self):
        r = lint(
            "from repro.perf import record_run\n"
            "record_run('bench', 'e4', {'x': 1.0})\n",
            "benchmarks_helper.py",
        )
        assert codes(r) == []

    def test_catalogue_lists_rpl501(self):
        assert "RPL501" in all_rules()
        assert any(line.startswith("RPL501") for line in
                   rule_catalogue().splitlines())


# ---------------------------------------------------------------------------
# RPL6xx: run-cache discipline
# ---------------------------------------------------------------------------


class TestCacheDiscipline:
    def test_open_under_default_cache_dir_flagged(self):
        r = lint(
            """\
            import json

            def sneak(key, payload):
                with open(f".repro/cache/{key}.json", "w") as fh:
                    json.dump(payload, fh)
            """,
            "analysis/export.py",
        )
        assert "RPL601" in codes(r)

    def test_write_text_on_cache_dir_variable_flagged(self):
        r = lint(
            "def f(cache_dir, key, body):\n"
            "    (cache_dir / key).write_text(body)\n",
            "fleet/runner.py",
        )
        assert codes(r) == ["RPL601"]

    def test_json_dump_to_cache_path_flagged(self):
        r = lint(
            """\
            import json

            def save(cache_path, payload):
                json.dump(payload, cache_path)
            """,
            "cli.py",
        )
        assert codes(r) == ["RPL601"]

    def test_blessed_store_module_exempt(self):
        r = lint(
            """\
            import json

            def store(self, entry):
                tmp = self.cache_dir / "x.tmp"
                tmp.write_text(json.dumps(entry))
            """,
            "cache/store.py",
        )
        assert codes(r) == []

    def test_unrelated_caches_unflagged(self):
        # functools-style memo caches and generic writes stay in scope
        # of nothing: only the run-cache directory names trigger.
        r = lint(
            """\
            import json

            def save(path, cache):
                with open(path, "w") as fh:
                    json.dump(cache, fh)
            """,
            "analysis/export.py",
        )
        assert codes(r) == []

    def test_runcache_store_is_the_sanctioned_path(self):
        r = lint(
            "from repro.cache import RunCache\n"
            "RunCache().store(spec, measurement)\n",
            "fleet/runner.py",
        )
        assert codes(r) == []

    def test_catalogue_lists_rpl601(self):
        assert "RPL601" in all_rules()
        assert any(line.startswith("RPL601") for line in
                   rule_catalogue().splitlines())


# ---------------------------------------------------------------------------
# Serve-loop discipline (RPL701)
# ---------------------------------------------------------------------------


class TestServeDiscipline:
    def test_time_sleep_in_async_handler_flagged(self):
        r = lint(
            """\
            import time

            async def handle(request):
                time.sleep(0.1)
            """,
            "serve/server.py",
        )
        assert codes(r) == ["RPL701"]

    def test_from_import_sleep_flagged(self):
        r = lint(
            "from time import sleep\n"
            "async def handle(request):\n"
            "    sleep(1)\n",
            "serve/client.py",
        )
        assert codes(r) == ["RPL701"]

    def test_sync_open_in_async_handler_flagged(self):
        r = lint(
            "async def handle(path):\n"
            "    with open(path) as fh:\n"
            "        return fh.read()\n",
            "serve/server.py",
        )
        assert codes(r) == ["RPL701"]

    def test_path_write_text_flagged(self):
        r = lint(
            "async def dump(path, body):\n"
            "    path.write_text(body)\n",
            "serve/server.py",
        )
        assert codes(r) == ["RPL701"]

    def test_asyncio_sleep_unflagged(self):
        r = lint(
            "import asyncio\n"
            "async def handle(request):\n"
            "    await asyncio.sleep(0.1)\n",
            "serve/server.py",
        )
        assert codes(r) == []

    def test_executor_offload_is_the_sanctioned_path(self):
        r = lint(
            """\
            import asyncio

            async def handle(spec):
                loop = asyncio.get_running_loop()
                return await loop.run_in_executor(None, simulate, spec)
            """,
            "serve/server.py",
        )
        assert codes(r) == []

    def test_sync_function_bodies_unflagged(self):
        r = lint(
            "import time\n"
            "def warmup():\n"
            "    time.sleep(0.1)\n",
            "serve/server.py",
        )
        assert codes(r) == []

    def test_nested_sync_helper_unflagged(self):
        r = lint(
            """\
            async def handle(path):
                def emit(line):
                    open(path, "a").write(line)
                return emit
            """,
            "serve/client.py",
        )
        assert codes(r) == []

    def test_outside_serve_scope_unflagged(self):
        r = lint(
            "import time\n"
            "async def handle(request):\n"
            "    time.sleep(0.1)\n",
            "fleet/runner.py",
        )
        assert codes(r) == []

    def test_serve_package_is_clean(self):
        result = check_paths([SRC / "repro" / "serve"], select=["RPL701"])
        assert result.findings == []

    def test_catalogue_lists_rpl701(self):
        assert "RPL701" in all_rules()
        assert any(line.startswith("RPL701") for line in
                   rule_catalogue().splitlines())


# ---------------------------------------------------------------------------
# Ops-log discipline (RPL801)
# ---------------------------------------------------------------------------


class TestOpsLogDiscipline:
    def test_open_append_to_ops_log_path_flagged(self):
        r = lint(
            """\
            import json

            def save(payload):
                with open("serve-ops-log.jsonl", "a") as fh:
                    json.dump(payload, fh)
            """,
            "serve/server.py",
        )
        assert "RPL801" in codes(r)

    def test_json_dump_to_ops_log_variable_flagged(self):
        r = lint(
            """\
            import json

            def save(ops_log_file, payload):
                json.dump(payload, ops_log_file)
            """,
            "cli.py",
        )
        assert codes(r) == ["RPL801"]

    def test_write_text_on_opslog_path_flagged(self):
        r = lint(
            "def f(opslog_path, line):\n"
            "    opslog_path.write_text(line)\n",
            "fleet/runner.py",
        )
        assert codes(r) == ["RPL801"]

    def test_blessed_writer_module_exempt(self):
        r = lint(
            """\
            import json

            def log(self, record):
                with self.path.open("a") as fh:
                    fh.write(json.dumps(record) + "\\n")
            """,
            "obs/opslog.py",
        )
        assert codes(r) == []

    def test_non_ops_writes_unflagged(self):
        r = lint(
            """\
            import json

            def save(path, payload):
                with open(path, "w") as fh:
                    json.dump(payload, fh)
            """,
            "analysis/export.py",
        )
        assert codes(r) == []

    def test_logger_call_is_the_sanctioned_path(self):
        r = lint(
            "from repro.obs import OpsLogger\n"
            "OpsLogger('ops.jsonl').log({'kind': 'decision'})\n",
            "serve/server.py",
        )
        assert codes(r) == []

    def test_catalogue_lists_rpl801(self):
        assert "RPL801" in all_rules()
        assert any(line.startswith("RPL801") for line in
                   rule_catalogue().splitlines())


# ---------------------------------------------------------------------------
# Learning-ledger discipline (RPL802)
# ---------------------------------------------------------------------------


class TestLearnLogDiscipline:
    def test_open_append_to_learn_log_path_flagged(self):
        r = lint(
            """\
            import json

            def save(payload):
                with open("train-learn-log.jsonl", "a") as fh:
                    json.dump(payload, fh)
            """,
            "core/trainer.py",
        )
        assert "RPL802" in codes(r)

    def test_json_dump_to_learn_log_variable_flagged(self):
        r = lint(
            """\
            import json

            def save(learn_log_file, payload):
                json.dump(payload, learn_log_file)
            """,
            "cli.py",
        )
        assert codes(r) == ["RPL802"]

    def test_write_text_on_learnlog_path_flagged(self):
        r = lint(
            "def f(learnlog_path, line):\n"
            "    learnlog_path.write_text(line)\n",
            "fleet/worker.py",
        )
        assert codes(r) == ["RPL802"]

    def test_blessed_writer_module_exempt(self):
        r = lint(
            """\
            import json

            def log(self, record):
                with self.path.open("a") as fh:
                    fh.write(json.dumps(record) + "\\n")
            """,
            "obs/learn.py",
        )
        assert codes(r) == []

    def test_non_learn_writes_unflagged(self):
        r = lint(
            """\
            import json

            def save(path, payload):
                with open(path, "w") as fh:
                    json.dump(payload, fh)
            """,
            "analysis/export.py",
        )
        assert codes(r) == []

    def test_recorder_call_is_the_sanctioned_path(self):
        r = lint(
            "from repro.obs import LearnRecorder\n"
            "LearnRecorder('learn.jsonl').log({'episode': 0})\n",
            "core/trainer.py",
        )
        assert codes(r) == []

    def test_catalogue_lists_rpl802(self):
        assert "RPL802" in all_rules()
        assert any(line.startswith("RPL802") for line in
                   rule_catalogue().splitlines())


# ---------------------------------------------------------------------------
# Suppression
# ---------------------------------------------------------------------------


class TestSuppression:
    def test_bare_noqa_silences_line(self):
        r = lint("import time\nx = time.time()  # noqa\n", "sim/x.py")
        assert codes(r) == []
        assert [f.code for f in r.suppressed] == ["RPL001"]

    def test_coded_noqa_matching(self):
        r = lint("import time\nx = time.time()  # noqa: RPL001\n", "sim/x.py")
        assert codes(r) == [] and len(r.suppressed) == 1

    def test_coded_noqa_other_code_keeps_finding(self):
        r = lint("import time\nx = time.time()  # noqa: RPL003\n", "sim/x.py")
        assert codes(r) == ["RPL001"] and r.suppressed == []

    def test_noqa_map_parses_code_lists(self):
        m = noqa_map("a  # noqa: RPL001, rpl002\nb  # noqa\n")
        assert m == {1: {"RPL001", "RPL002"}, 2: None}


# ---------------------------------------------------------------------------
# Baseline
# ---------------------------------------------------------------------------


def _finding(line_text: str, code: str = "RPL001", line: int = 2) -> Finding:
    return Finding(
        path="sim/x.py", line=line, col=0, code=code,
        message="m", rule="r", line_text=line_text,
    )


class TestBaseline:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "baseline.json"
        Baseline.from_findings([_finding("x = time.time()")]).save(path)
        loaded = Baseline.load(path)
        assert len(loaded) == 1

    def test_filter_partitions_new_accepted_stale(self, tmp_path):
        old = _finding("x = time.time()")
        gone = _finding("y = time.time()", line=9)
        baseline = Baseline.from_findings([old, gone])
        fresh = _finding("z = random.random()", code="RPL002", line=5)
        split = filter_findings([old, fresh], baseline)
        assert split.accepted == [old]
        assert split.new == [fresh]
        assert split.stale == [gone.fingerprint(0)]

    def test_fingerprint_survives_line_drift(self):
        before = _finding("x = time.time()", line=2)
        after = _finding("x = time.time()", line=40)
        assert before.fingerprint(0) == after.fingerprint(0)

    def test_duplicate_lines_numbered_by_occurrence(self):
        a = _finding("x = time.time()", line=2)
        b = _finding("x = time.time()", line=7)
        baseline = Baseline.from_findings([a, b])
        assert len(baseline) == 2
        split = filter_findings([a, b], baseline)
        assert split.new == [] and split.stale == []

    def test_missing_and_malformed_raise(self, tmp_path):
        with pytest.raises(LintError):
            Baseline.load(tmp_path / "absent.json")
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(LintError):
            Baseline.load(bad)
        wrong = tmp_path / "wrong.json"
        wrong.write_text('{"version": 99, "findings": {}}')
        with pytest.raises(LintError):
            Baseline.load(wrong)


# ---------------------------------------------------------------------------
# Output formats
# ---------------------------------------------------------------------------


class TestOutput:
    FINDINGS = [_finding("x = time.time()")]

    def test_text_has_location_and_summary(self):
        out = render_text(self.FINDINGS, files_checked=3)
        assert "sim/x.py:2:0: RPL001" in out
        assert "1 finding, 3 files checked" in out

    def test_json_schema(self):
        data = json.loads(
            render_json(self.FINDINGS, files_checked=3, suppressed=1)
        )
        assert data["version"] == 1
        assert data["summary"]["by_code"] == {"RPL001": 1}
        assert data["findings"][0]["path"] == "sim/x.py"

    def test_github_annotations_escape_newlines(self):
        f = Finding(
            path="sim/x.py", line=2, col=0, code="RPL001",
            message="bad%\nworse", rule="r",
        )
        out = render_github([f])
        assert out.startswith("::error file=sim/x.py,line=2,col=1,")
        assert "%25" in out and "%0A" in out and "\n" not in out

    def test_render_dispatch(self):
        assert render("text", []) == render_text([])

    def test_catalogue_lists_every_code(self):
        table = rule_catalogue()
        for code in all_rules():
            assert code in table


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


@pytest.fixture()
def violating_tree(tmp_path):
    """A tiny src tree with one RPL001 violation."""
    pkg = tmp_path / "src" / "sim"
    pkg.mkdir(parents=True)
    (pkg / "engine.py").write_text(
        '"""Engine."""\nimport time\n\nSTART = time.time()\n'
    )
    return tmp_path / "src"


class TestCheckCli:
    def test_finding_exits_1(self, violating_tree, capsys):
        code = main(["check", str(violating_tree), "--no-baseline"])
        assert code == 1
        assert "RPL001" in capsys.readouterr().out

    def test_ignore_family_exits_0(self, violating_tree):
        code = main(
            ["check", str(violating_tree), "--no-baseline", "--ignore", "RPL0"]
        )
        assert code == 0

    def test_json_format_parses(self, violating_tree, capsys):
        main(["check", str(violating_tree), "--no-baseline", "--format", "json"])
        data = json.loads(capsys.readouterr().out)
        assert data["summary"]["count"] == 1

    def test_baseline_write_then_gate(self, violating_tree, tmp_path, capsys):
        baseline = tmp_path / "lint-baseline.json"
        assert main(
            ["check", str(violating_tree),
             "--baseline", str(baseline), "--write-baseline"]
        ) == 0
        assert baseline.is_file()
        capsys.readouterr()
        assert main(
            ["check", str(violating_tree), "--baseline", str(baseline)]
        ) == 0
        assert "accepted by baseline" in capsys.readouterr().out

    def test_default_baseline_discovered_in_cwd(
        self, violating_tree, tmp_path, monkeypatch
    ):
        monkeypatch.chdir(tmp_path)
        assert main(["check", str(violating_tree), "--write-baseline"]) == 0
        assert (tmp_path / "lint-baseline.json").is_file()
        assert main(["check", str(violating_tree)]) == 0

    def test_stale_entries_reported(self, violating_tree, tmp_path, capsys):
        baseline = tmp_path / "b.json"
        main(["check", str(violating_tree),
              "--baseline", str(baseline), "--write-baseline"])
        engine = violating_tree / "sim" / "engine.py"
        engine.write_text('"""Engine."""\nSTART = 0.0\n')
        capsys.readouterr()
        assert main(
            ["check", str(violating_tree), "--baseline", str(baseline)]
        ) == 0
        assert "stale" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        assert main(["check", "--list-rules"]) == 0
        assert "RPL301" in capsys.readouterr().out

    def test_bad_selector_is_cli_error(self, violating_tree, capsys):
        code = main(["check", str(violating_tree), "--select", "RPL999"])
        assert code == 1
        assert "error" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# The repo gate and regression sentinels
# ---------------------------------------------------------------------------


class TestRepoGate:
    def test_src_tree_clean_against_committed_baseline(self):
        result = check_paths([SRC], project_root=REPO_ROOT)
        baseline_path = REPO_ROOT / "lint-baseline.json"
        findings = result.findings
        if baseline_path.is_file():
            findings = filter_findings(
                findings, Baseline.load(baseline_path)
            ).new
        assert findings == [], [f.location() for f in findings]

    def _mutated(self, relpath: str, old: str, new: str):
        source = (SRC / "repro" / relpath).read_text(encoding="utf-8")
        assert old in source, f"sentinel {old!r} missing from {relpath}"
        return check_source(
            source.replace(old, new),
            f"src/repro/{relpath}",
            project_root=REPO_ROOT,
        )

    def test_removing_engine_obs_guard_is_caught(self):
        r = self._mutated("sim/engine.py", "if OBS.enabled:", "if True:")
        assert "RPL301" in codes(r)

    def test_unseeding_the_agent_rng_is_caught(self):
        r = self._mutated(
            "rl/double_q.py", "default_rng(", "default_rng() or ("
        )
        assert "RPL002" in codes(r)

    def test_float_leak_into_datapath_is_caught(self):
        r = self._mutated("hw/datapath.py", "return td", "return td * 0.25")
        assert "RPL201" in codes(r)

    def test_wall_clock_in_worker_is_caught(self):
        r = self._mutated(
            "fleet/worker.py", "time.perf_counter()", "time.time()"
        )
        assert "RPL001" in codes(r)

    def test_renaming_metric_back_is_caught(self):
        r = self._mutated(
            "qos/energy_per_qos.py",
            "def energy_per_qos_j(",
            "def energy_per_qos(",
        )
        assert "RPL102" in codes(r)
