"""Hardware equivalence verification and the report generator."""

import pytest

from repro.analysis.report import ReportConfig, generate_report
from repro.errors import HardwareModelError, ReproError
from repro.hw.fixed_point import QFormat
from repro.hw.verification import sweep_formats, verify_equivalence


class TestVerifyEquivalence:
    def test_q78_is_tight(self):
        report = verify_equivalence(qformat=QFormat(7, 8), steps=1500, seed=1)
        fmt = QFormat(7, 8)
        # Accumulated rounding stays within a handful of LSBs and the
        # decision mismatch rate is low.
        assert report.acceptable(error_lsb=32, resolution=fmt.resolution)
        assert report.decision_mismatch_rate < 0.05

    def test_narrow_format_diverges_more(self):
        wide = verify_equivalence(qformat=QFormat(7, 8), steps=1000, seed=2)
        narrow = verify_equivalence(qformat=QFormat(3, 2), steps=1000, seed=2)
        assert narrow.max_abs_error > wide.max_abs_error

    def test_deterministic_for_seed(self):
        a = verify_equivalence(steps=500, seed=7)
        b = verify_equivalence(steps=500, seed=7)
        assert a == b

    def test_reward_range_checked(self):
        with pytest.raises(HardwareModelError, match="exceeds"):
            verify_equivalence(qformat=QFormat(2, 2), reward_range=(-100.0, 0.0))
        with pytest.raises(HardwareModelError, match="bad reward range"):
            verify_equivalence(reward_range=(1.0, -1.0))

    def test_summary_renders(self):
        report = verify_equivalence(steps=200)
        assert "greedy mismatch" in report.summary()

    def test_sweep_formats(self):
        out = sweep_formats([QFormat(3, 4), QFormat(7, 8)], steps=300, seed=0)
        assert set(out) == {"Q3.4", "Q7.8"}
        with pytest.raises(HardwareModelError):
            sweep_formats([])


class TestGenerateReport:
    def test_small_report(self, tmp_path):
        config = ReportConfig(
            experiments=["e4", "a6"],  # the two cheap, deterministic ones
            title="smoke report",
        )
        path = tmp_path / "report.md"
        text = generate_report(config, path=path)
        assert text.startswith("# smoke report")
        assert "## E4" in text
        assert "## A6" in text
        assert path.read_text() == text

    def test_order_is_canonical(self):
        config = ReportConfig(experiments=["a6", "e4"])
        text = generate_report(config)
        assert text.index("## E4") < text.index("## A6")

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ReproError, match="unknown experiment"):
            generate_report(ReportConfig(experiments=["e99"]))

    def test_sweep_shared_between_headline_views(self):
        """e1+e3 together run the sweep once (smoke-scale)."""
        config = ReportConfig(
            experiments=["e1", "e3"], duration_s=3.0, train_episodes=1
        )
        text = generate_report(config)
        assert "## E1" in text and "## E3" in text
