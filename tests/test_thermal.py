"""Thermal RC network and throttling."""

import pytest

from repro.errors import ConfigurationError
from repro.soc.cluster import Cluster, ClusterSpec
from repro.soc.core import CoreSpec
from repro.soc.opp import make_table
from repro.thermal.rc import ThermalModel, ThermalNodeSpec, default_thermal_model
from repro.thermal.throttle import ThermalThrottle


def one_node_model(r=10.0, c=0.5, ambient=25.0) -> ThermalModel:
    return ThermalModel([ThermalNodeSpec("cpu", r, c)], ambient_c=ambient,
                        coupling_r_c_per_w=None)


class TestThermalModel:
    def test_starts_at_ambient(self):
        model = one_node_model(ambient=25.0)
        assert model.temperature_c("cpu") == 25.0

    def test_heats_toward_steady_state(self):
        model = one_node_model(r=10.0, c=0.5)
        # Steady state for 2 W: ambient + P*R = 25 + 20 = 45 C.
        for _ in range(10000):
            model.step({"cpu": 2.0}, 0.01)
        assert model.temperature_c("cpu") == pytest.approx(45.0, abs=0.5)

    def test_cools_back_to_ambient(self):
        model = one_node_model()
        for _ in range(2000):
            model.step({"cpu": 2.0}, 0.01)
        for _ in range(20000):
            model.step({"cpu": 0.0}, 0.01)
        assert model.temperature_c("cpu") == pytest.approx(25.0, abs=0.5)

    def test_monotone_heating_step(self):
        model = one_node_model()
        t0 = model.temperature_c("cpu")
        model.step({"cpu": 5.0}, 0.01)
        assert model.temperature_c("cpu") > t0

    def test_unknown_node_power_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown nodes"):
            one_node_model().step({"gpu": 1.0}, 0.01)

    def test_unknown_node_query_rejected(self):
        with pytest.raises(ConfigurationError):
            one_node_model().temperature_c("gpu")

    def test_coupling_pulls_nodes_together(self):
        nodes = [ThermalNodeSpec("a", 10.0, 0.5), ThermalNodeSpec("b", 10.0, 0.5)]
        coupled = ThermalModel(nodes, coupling_r_c_per_w=2.0)
        isolated = ThermalModel(nodes, coupling_r_c_per_w=None)
        for _ in range(3000):
            coupled.step({"a": 2.0}, 0.01)
            isolated.step({"a": 2.0}, 0.01)
        # The unheated node warms only via coupling.
        assert coupled.temperature_c("b") > isolated.temperature_c("b")
        assert coupled.temperature_c("a") < isolated.temperature_c("a")

    def test_reset_returns_to_ambient(self):
        model = one_node_model()
        model.step({"cpu": 10.0}, 1.0)
        model.reset()
        assert model.temperature_c("cpu") == 25.0

    def test_max_temperature(self):
        nodes = [ThermalNodeSpec("a", 10.0, 0.5), ThermalNodeSpec("b", 10.0, 0.5)]
        model = ThermalModel(nodes, coupling_r_c_per_w=None)
        model.step({"a": 5.0}, 0.1)
        assert model.max_temperature_c == model.temperature_c("a")

    def test_duplicate_names_rejected(self):
        with pytest.raises(ConfigurationError, match="duplicate"):
            ThermalModel([ThermalNodeSpec("a", 1, 1), ThermalNodeSpec("a", 1, 1)])

    def test_default_model_covers_clusters(self):
        model = default_thermal_model(["big", "little"])
        assert model.temperature_c("big") == 25.0
        assert model.temperature_c("little") == 25.0


class TestThrottle:
    def cluster(self) -> Cluster:
        core = CoreSpec("c", 1.0, 1e-10, 0.01)
        return Cluster(
            ClusterSpec("cpu", core, 1, make_table([500, 1000, 1500, 2000],
                                                   [0.9, 1.0, 1.1, 1.2])),
            initial_opp_index=3,
        )

    def hot_model(self, temp: float) -> ThermalModel:
        model = one_node_model()
        model._temps["cpu"] = temp
        return model

    def test_no_throttle_below_trip(self):
        cluster = self.cluster()
        throttle = ThermalThrottle(trip_c=85.0)
        throttle.apply(cluster, self.hot_model(60.0))
        assert cluster.opp_index == 3
        assert throttle.throttle_level("cpu") == 0

    def test_throttle_engages_above_trip(self):
        cluster = self.cluster()
        throttle = ThermalThrottle(trip_c=85.0)
        throttle.apply(cluster, self.hot_model(90.0))
        assert cluster.opp_index == 2
        assert throttle.throttle_level("cpu") == 1

    def test_throttle_steps_accumulate(self):
        cluster = self.cluster()
        throttle = ThermalThrottle(trip_c=85.0)
        model = self.hot_model(95.0)
        for _ in range(3):
            throttle.apply(cluster, model)
        assert cluster.opp_index == 0
        assert throttle.throttle_level("cpu") == 3

    def test_throttle_releases_with_hysteresis(self):
        cluster = self.cluster()
        throttle = ThermalThrottle(trip_c=85.0, hysteresis_c=5.0)
        throttle.apply(cluster, self.hot_model(90.0))
        # Inside the hysteresis band: the level holds.
        throttle.apply(cluster, self.hot_model(82.0))
        assert throttle.throttle_level("cpu") == 1
        # Below trip - hysteresis: one step released.
        throttle.apply(cluster, self.hot_model(75.0))
        assert throttle.throttle_level("cpu") == 0

    def test_level_never_exceeds_table(self):
        cluster = self.cluster()
        throttle = ThermalThrottle(trip_c=85.0)
        model = self.hot_model(120.0)
        for _ in range(20):
            throttle.apply(cluster, model)
        assert throttle.throttle_level("cpu") <= cluster.spec.opp_table.max_index

    def test_reset(self):
        cluster = self.cluster()
        throttle = ThermalThrottle()
        throttle.apply(cluster, self.hot_model(95.0))
        throttle.reset()
        assert throttle.throttle_level("cpu") == 0

    def test_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            ThermalThrottle(hysteresis_c=-1.0)
        with pytest.raises(ConfigurationError):
            ThermalThrottle(step_opps=0)
