"""Built-in mobile scenarios: registry, statistics, determinism."""

import statistics

import pytest

from repro.errors import WorkloadError
from repro.workload.scenarios import EVALUATION_SET, SCENARIOS, get_scenario


class TestRegistry:
    def test_ten_scenarios_registered(self):
        assert len(SCENARIOS) == 10

    def test_evaluation_set_has_six(self):
        assert len(EVALUATION_SET) == 6
        assert all(name in SCENARIOS for name in EVALUATION_SET)

    def test_get_scenario(self):
        assert get_scenario("gaming").name == "gaming"

    def test_get_unknown_scenario(self):
        with pytest.raises(WorkloadError, match="available"):
            get_scenario("doom-scrolling")

    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_every_scenario_generates(self, name):
        trace = get_scenario(name).trace(5.0, seed=0)
        assert len(trace) > 0
        assert trace.duration_s == pytest.approx(5.0)

    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_determinism(self, name):
        scenario = get_scenario(name)
        a = scenario.trace(5.0, seed=3)
        b = scenario.trace(5.0, seed=3)
        assert list(a) == list(b)

    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_machine_is_fresh_each_call(self, name):
        scenario = get_scenario(name)
        assert scenario.machine() is not scenario.machine()


class TestScenarioStatistics:
    def test_gaming_is_heavier_than_audio(self):
        gaming = get_scenario("gaming").trace(20.0, seed=0)
        audio = get_scenario("audio_playback").trace(20.0, seed=0)
        assert gaming.mean_demand_rate > 5 * audio.mean_demand_rate

    def test_idle_is_lightest(self):
        idle = get_scenario("idle").trace(20.0, seed=0)
        for name in ("gaming", "web_browsing", "camera_preview"):
            other = get_scenario(name).trace(20.0, seed=0)
            assert idle.mean_demand_rate < other.mean_demand_rate

    def test_gaming_has_60fps_phase(self):
        trace = get_scenario("gaming").trace(30.0, seed=0)
        gameplay = [u for u in trace if u.kind == "gameplay"]
        assert gameplay, "gameplay phase never sampled in 30 s"
        # The dominant inter-frame gap within the phase is the 60 fps
        # period (segment boundaries can produce shorter one-off gaps).
        gaps = [b.release_s - a.release_s for a, b in zip(gameplay, gameplay[1:])]
        assert statistics.median(gaps) == pytest.approx(1 / 60, rel=0.01)

    def test_video_is_30fps(self):
        trace = get_scenario("video_playback").trace(10.0, seed=0)
        decode = [u for u in trace if u.kind == "decode"]
        gaps = [b.release_s - a.release_s for a, b in zip(decode, decode[1:])]
        assert statistics.median(gaps) == pytest.approx(1 / 30, rel=0.01)

    def test_demand_fits_on_exynos_chip(self):
        """Every scenario must be feasible at the top OPPs, otherwise even
        the performance governor could not deliver QoS."""
        from repro.soc.presets import exynos5422

        chip = exynos5422()
        peak_rate = sum(
            c.spec.core.capacity * c.spec.opp_table.max_freq_hz * c.n_cores
            for c in chip
        )
        for name in SCENARIOS:
            trace = get_scenario(name).trace(20.0, seed=0)
            assert trace.mean_demand_rate < 0.8 * peak_rate, name

    def test_scenarios_have_distinct_signatures(self):
        rates = {
            name: get_scenario(name).trace(20.0, seed=0).mean_demand_rate
            for name in EVALUATION_SET
        }
        values = sorted(rates.values())
        # No two scenarios within 1% of each other: they are genuinely
        # different workloads, not renames.
        for a, b in zip(values, values[1:]):
            assert b / a > 1.01
