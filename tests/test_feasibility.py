"""Trace feasibility analysis."""

import pytest

from repro.errors import WorkloadError
from repro.soc.presets import exynos5422, tiny_test_chip
from repro.workload.feasibility import check_feasibility
from repro.workload.scenarios import SCENARIOS, get_scenario
from repro.workload.trace import Trace

from conftest import unit


class TestUnitFeasibility:
    def test_easy_unit_feasible(self, tiny_chip):
        trace = Trace(units=[unit(work=1e6, deadline=0.1)], duration_s=0.2)
        report = check_feasibility(trace, tiny_chip)
        assert report.feasible
        assert report.infeasible_units == ()

    def test_impossible_unit_flagged(self, tiny_chip):
        # 1e9 cycles in 10 ms needs 1e11/s; tiny chip peaks at 1.5e9/s.
        trace = Trace(units=[unit(uid=7, work=1e9, deadline=0.01)], duration_s=0.2)
        report = check_feasibility(trace, tiny_chip)
        assert not report.feasible
        assert report.infeasible_units == (7,)

    def test_parallelism_helps_on_multicore(self):
        chip = exynos5422()
        # 9e7 cycles in 12 ms: one big core at 4e9/s takes 22.5 ms (no),
        # two take 11.25 ms (yes).
        serial = Trace(units=[unit(work=9e7, deadline=0.012)], duration_s=0.1)
        parallel = Trace(
            units=[unit(work=9e7, deadline=0.012, parallelism=2)], duration_s=0.1
        )
        assert not check_feasibility(serial, chip).feasible
        assert check_feasibility(parallel, chip).feasible


class TestAggregateBounds:
    def test_sustained_overload_detected(self, tiny_chip):
        # 2e7 cycles every 10 ms = 2e9/s sustained vs 1.5e9/s peak.
        units = [
            unit(uid=i, release=i * 0.01, work=2e7, deadline=i * 0.01 + 1.0)
            for i in range(100)
        ]
        report = check_feasibility(Trace(units=units, duration_s=1.0), tiny_chip)
        assert report.utilization_bound > 1.0
        assert not report.feasible

    def test_transient_burst_detected_by_window_bound(self, tiny_chip):
        # One 0.1 s window of overload in an otherwise idle second; generous
        # individual deadlines keep per-unit checks green.
        units = [
            unit(uid=i, release=0.001 * i, work=3e7, deadline=2.0)
            for i in range(10)
        ]
        report = check_feasibility(
            Trace(units=units, duration_s=2.0), tiny_chip, window_s=0.1
        )
        assert report.peak_window_bound > 1.0
        assert report.utilization_bound < 1.0

    def test_builtin_scenarios_feasible_on_exynos(self):
        """Aggregate demand always fits; the lognormal demand tail may
        make a sub-percent fraction of frames individually unmeetable —
        real-world jank the soft-QoS grace absorbs."""
        chip = exynos5422()
        for name in SCENARIOS:
            trace = get_scenario(name).trace(10.0, seed=0)
            report = check_feasibility(trace, chip, window_s=0.5)
            assert len(report.infeasible_units) <= 0.01 * report.n_units, name
            assert report.utilization_bound < 1.0, name
            assert report.peak_window_bound < 1.0, name

    def test_summary(self, tiny_chip):
        trace = Trace(units=[unit()], duration_s=0.2)
        assert "feasible" in check_feasibility(trace, tiny_chip).summary()

    def test_validation(self, tiny_chip):
        with pytest.raises(WorkloadError):
            check_feasibility(Trace(units=[], duration_s=1.0), tiny_chip)
        with pytest.raises(WorkloadError):
            check_feasibility(
                Trace(units=[unit()], duration_s=0.2), tiny_chip, window_s=0.0
            )


class TestNewScenarios:
    def test_video_call_is_steady(self):
        trace = get_scenario("video_call").trace(20.0, seed=0)
        from repro.workload.characterize import profile

        p = profile(trace)
        assert p.burstiness < 4.0  # steadier than app_launch-class bursts
        assert p.dominant_kind() == "call_steady"

    def test_social_media_is_bursty(self):
        from repro.workload.characterize import profile

        social = profile(get_scenario("social_media").trace(20.0, seed=0))
        call = profile(get_scenario("video_call").trace(20.0, seed=0))
        assert social.demand_cv > call.demand_cv
