"""The fleet subsystem: specs, runner, determinism, failure isolation."""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from repro.analysis.repeat import repeat_jobs_over_seeds
from repro.analysis.sweep import sweep
from repro.errors import ReproError
from repro.experiments import run_headline_sweep
from repro.fleet import (
    EventLog,
    FleetFinished,
    FleetProgress,
    FleetSpec,
    FleetStarted,
    JobDone,
    JobFailed,
    JobFailure,
    JobMeasurement,
    JobQueued,
    JobRetried,
    JobSpec,
    JobSuccess,
    execute_job,
    failure_table,
    fleet_summary,
    format_event,
    format_progress_line,
    merge_job_metrics,
    result_table,
    resolve_workers,
    run_fleet,
    run_job,
    split_by_seed,
    to_sweep_result,
)
from repro.soc.presets import tiny_test_chip

# Small, fast grid settings shared by the execution tests.
FAST = dict(duration_s=1.0, train_episodes=2)


def _measurement() -> JobMeasurement:
    return JobMeasurement(
        energy_j=1.0,
        mean_qos=0.9,
        deadline_miss_rate=0.1,
        energy_per_qos_j=1.0 / 0.9,
        sim_duration_s=1.0,
    )


# Module-level job functions: the pool pickles them by reference.
def _hang_forever(spec: JobSpec) -> JobMeasurement:
    time.sleep(60.0)
    return _measurement()


def _always_raise(spec: JobSpec) -> JobMeasurement:
    raise ValueError(f"boom in {spec.job_id}")


def _flaky_via_marker(spec: JobSpec) -> JobMeasurement:
    """Fails until a marker file exists; the governor field carries its
    path (``flaky:<path>``), so the state survives process boundaries."""
    marker = Path(spec.governor.removeprefix("flaky:"))
    if not marker.exists():
        marker.write_text("attempted")
        raise RuntimeError("first attempt always fails")
    return _measurement()


def _quick(spec: JobSpec) -> JobMeasurement:
    return _measurement()


def _flaky_with_metrics(spec: JobSpec) -> JobMeasurement:
    """Flaky-via-marker variant whose success carries a metric snapshot,
    so metric-merge double counting would be visible.  Jobs without the
    ``flaky:`` governor prefix succeed on the first attempt."""
    if spec.governor.startswith("flaky:"):
        marker = Path(spec.governor.removeprefix("flaky:"))
        if not marker.exists():
            marker.write_text("attempted")
            raise RuntimeError("first attempt always fails")
    m = _measurement()
    return JobMeasurement(
        energy_j=m.energy_j,
        mean_qos=m.mean_qos,
        deadline_miss_rate=m.deadline_miss_rate,
        energy_per_qos_j=m.energy_per_qos_j,
        sim_duration_s=m.sim_duration_s,
        metrics={"counters": {"sim.intervals": 100.0}},
    )


class TestJobSpec:
    def test_job_id(self):
        spec = JobSpec(scenario="gaming", governor="ondemand", seed=7,
                       chip="tiny")
        assert spec.job_id == "tiny/gaming/ondemand/s7"

    def test_flags(self):
        assert JobSpec(scenario="s", governor="rl-policy").is_rl
        assert JobSpec(scenario="s", governor="checkpoint:/x").is_checkpoint
        assert not JobSpec(scenario="s", governor="ondemand").is_rl

    def test_validation(self):
        with pytest.raises(ReproError):
            JobSpec(scenario="", governor="ondemand")
        with pytest.raises(ReproError):
            JobSpec(scenario="s", governor="ondemand", duration_s=0.0)
        with pytest.raises(ReproError):
            JobSpec(scenario="s", governor="ondemand", train_episodes=0)

    def test_mapping_round_trip(self):
        spec = JobSpec(scenario="gaming", governor="ondemand", seed=3,
                       duration_s=5.0)
        assert JobSpec.from_mapping(spec.to_mapping()) == spec

    def test_mapping_rejects_unknown_keys(self):
        with pytest.raises(ReproError, match="unknown job spec keys"):
            JobSpec.from_mapping({"scenario": "s", "governor": "g",
                                  "warp": 9})

    def test_chip_obj_not_serialisable(self):
        spec = JobSpec(scenario="s", governor="g", chip_obj=tiny_test_chip())
        with pytest.raises(ReproError, match="chip_obj"):
            spec.to_mapping()

    def test_with_seed(self):
        spec = JobSpec(scenario="s", governor="g", seed=1)
        assert spec.with_seed(9).seed == 9
        assert spec.seed == 1


class TestFleetSpec:
    def test_expand_order_and_count(self):
        spec = FleetSpec(
            scenarios=("a", "b"), governors=("g1", "g2"), seeds=(1, 2),
            chips=("tiny",),
        )
        jobs = spec.expand()
        assert len(jobs) == spec.n_jobs == 8
        # scenario-major, then governor, then seed.
        assert [(j.scenario, j.governor, j.seed) for j in jobs[:4]] == [
            ("a", "g1", 1), ("a", "g1", 2), ("a", "g2", 1), ("a", "g2", 2),
        ]

    def test_include_rl_appends_axis(self):
        spec = FleetSpec(scenarios=("a",), governors=("g",), include_rl=True)
        assert spec.governor_axis == ("g", "rl-policy")
        assert spec.expand()[-1].governor == "rl-policy"

    def test_lists_are_frozen_to_tuples(self):
        spec = FleetSpec(scenarios=["a"], governors=["g"], seeds=[1])
        assert spec.scenarios == ("a",)
        assert spec.seeds == (1,)

    def test_validation(self):
        with pytest.raises(ReproError):
            FleetSpec(scenarios=(), governors=("g",))
        with pytest.raises(ReproError):
            FleetSpec(scenarios=("a",), governors=())
        with pytest.raises(ReproError):
            FleetSpec(scenarios=("a",), governors=("g",), retries=-1)
        with pytest.raises(ReproError):
            FleetSpec(scenarios=("a",), governors=("g",), timeout_s=0.0)

    def test_mapping_round_trip(self):
        spec = FleetSpec(scenarios=("a",), governors=("g",), seeds=(1, 2),
                         timeout_s=5.0, retries=1)
        assert FleetSpec.from_mapping(spec.to_mapping()) == spec


class TestWorker:
    def test_execute_job_baseline(self):
        spec = JobSpec(scenario="audio_playback", governor="ondemand",
                       seed=1, chip="tiny", **FAST)
        m = execute_job(spec)
        assert m.energy_j > 0
        assert 0.0 <= m.mean_qos <= 1.0
        assert m.sim_duration_s == spec.duration_s

    def test_execute_job_unknown_chip(self):
        spec = JobSpec(scenario="idle", governor="ondemand",
                       chip="snapdragon", **FAST)
        with pytest.raises(ReproError, match="unknown chip preset"):
            execute_job(spec)

    def test_run_job_success_telemetry(self):
        outcome = run_job(JobSpec(scenario="s", governor="g"), index=3,
                          job_fn=_quick)
        assert isinstance(outcome, JobSuccess)
        assert outcome.index == 3
        assert outcome.attempts == 1
        assert outcome.wall_s >= 0.0
        assert outcome.sim_throughput >= 0.0

    def test_run_job_converts_exceptions(self):
        outcome = run_job(JobSpec(scenario="s", governor="g"), index=1,
                          job_fn=_always_raise)
        assert isinstance(outcome, JobFailure)
        assert outcome.error_type == "ValueError"
        assert "boom" in outcome.error
        assert "ValueError" in outcome.traceback_str
        assert not outcome.timed_out

    def test_run_job_timeout(self):
        start = time.perf_counter()
        outcome = run_job(JobSpec(scenario="s", governor="g"),
                          timeout_s=0.2, job_fn=_hang_forever)
        assert time.perf_counter() - start < 10.0
        assert isinstance(outcome, JobFailure)
        assert outcome.timed_out
        assert outcome.error_type == "JobTimeout"


class TestRunner:
    def test_resolve_workers(self):
        assert resolve_workers(4) == 4
        assert resolve_workers(None) >= 1
        assert resolve_workers(0) >= 1
        with pytest.raises(ReproError):
            resolve_workers(-2)

    def test_empty_grid_rejected(self):
        with pytest.raises(ReproError, match="at least one job"):
            run_fleet([])

    def test_serial_matches_parallel(self):
        spec = FleetSpec(
            scenarios=("audio_playback", "idle"),
            governors=("ondemand", "performance"),
            seeds=(1, 2), chips=("tiny",), **FAST,
        )
        serial = run_fleet(spec, jobs=1)
        parallel = run_fleet(spec, jobs=4)
        assert serial.sweep_result().rows == parallel.sweep_result().rows
        assert [o.job_id for o in serial.outcomes] == [
            o.job_id for o in parallel.outcomes
        ]

    def test_failure_isolation(self):
        """One bad governor name yields failure rows, not a dead grid."""
        spec = FleetSpec(
            scenarios=("idle",),
            governors=("ondemand", "warpdrive", "performance"),
            seeds=(1,), chips=("tiny",), **FAST,
        )
        result = run_fleet(spec, jobs=2)
        assert len(result.successes) == 2
        assert len(result.failures) == 1
        assert result.failures[0].spec.governor == "warpdrive"
        assert result.failures[0].error_type == "GovernorError"
        # Strict aggregation refuses the holed grid...
        with pytest.raises(ReproError, match="1 of 3 fleet jobs failed"):
            result.sweep_result()
        # ...but the lenient path still yields the good rows.
        rows = result.sweep_result(strict=False).rows
        assert [r.governor for r in rows] == ["ondemand", "performance"]

    def test_timeout_and_retry_in_pool(self, tmp_path):
        hang = JobSpec(scenario="s", governor="hang")
        outcome = run_fleet([hang], jobs=2, timeout_s=0.2, retries=1,
                            job_fn=_hang_forever).outcomes[0]
        assert isinstance(outcome, JobFailure)
        assert outcome.timed_out
        assert outcome.attempts == 2

    def test_flaky_job_recovers_on_retry(self, tmp_path):
        marker = tmp_path / "attempted"
        flaky = JobSpec(scenario="s", governor=f"flaky:{marker}")
        log = EventLog()
        result = run_fleet([flaky], jobs=2, retries=1, on_event=log,
                           job_fn=_flaky_via_marker)
        [outcome] = result.outcomes
        assert isinstance(outcome, JobSuccess)
        assert outcome.attempts == 2
        assert log.count(JobRetried) == 1
        assert log.count(JobFailed) == 1

    def test_flaky_retry_counts_exactly_once(self, tmp_path):
        """A job that fails attempt 1 and succeeds attempt 2 contributes
        exactly one outcome — no phantom rows in the sweep aggregation,
        no double-summed counters in the metric merge."""
        marker = tmp_path / "attempted"
        grid = [
            JobSpec(scenario="s", governor="steady-a"),
            JobSpec(scenario="s", governor=f"flaky:{marker}"),
            JobSpec(scenario="s", governor="steady-b"),
        ]
        for jobs in (1, 2):
            if marker.exists():
                marker.unlink()
            log = EventLog()
            result = run_fleet(grid, jobs=jobs, retries=1, on_event=log,
                               job_fn=_flaky_with_metrics)
            assert log.count(JobFailed) == 1
            assert log.count(JobRetried) == 1
            # One outcome per grid job, each index exactly once.
            assert len(result.outcomes) == 3
            assert [o.index for o in result.outcomes] == [0, 1, 2]
            assert all(isinstance(o, JobSuccess) for o in result.outcomes)
            assert [s.attempts for s in result.successes] == [1, 2, 1]
            # Aggregations see the job once, not per attempt.
            rows = to_sweep_result(result.successes).rows
            assert [r.governor for r in rows] == [s.governor for s in grid]
            merged = merge_job_metrics(result.successes)
            assert merged["counters"]["sim.intervals"] == 300.0

    def test_no_retry_by_default(self):
        result = run_fleet([JobSpec(scenario="s", governor="g")], jobs=1,
                           job_fn=_always_raise)
        assert result.failures[0].attempts == 1

    def test_event_stream(self):
        spec = FleetSpec(scenarios=("idle",), governors=("ondemand",),
                         seeds=(1, 2), chips=("tiny",), **FAST)
        log = EventLog()
        run_fleet(spec, jobs=2, on_event=log)
        assert log.count(FleetStarted) == 1
        assert log.count(JobQueued) == 2
        assert log.count(JobDone) == 2
        assert log.count(FleetProgress) == 2
        assert log.count(FleetFinished) == 1
        done = log.of_type(JobDone)[0]
        assert done.wall_s > 0.0
        assert done.sim_throughput > 0.0

    def test_speedup_accounting(self):
        spec = FleetSpec(scenarios=("idle",), governors=("ondemand",),
                         seeds=(1,), chips=("tiny",), **FAST)
        result = run_fleet(spec, jobs=1)
        assert result.wall_s > 0.0
        assert result.serial_wall_estimate_s == pytest.approx(
            sum(o.wall_s for o in result.outcomes)
        )
        assert result.speedup > 0.0


class TestDeterminism:
    """Parallel fleet rows must be bit-identical to serial harness runs."""

    def test_fleet_grid_matches_serial_headline_sweep(self):
        """The acceptance grid, scaled down: 2 scenarios x 6 governors
        x 2 seeds (+ RL + one injected failure) through 4 workers equals
        two serial ``run_headline_sweep`` calls."""
        scenarios = ("audio_playback", "idle")
        governors = ("performance", "powersave", "userspace", "ondemand",
                     "conservative", "interactive")
        seeds = (1, 2)
        spec = FleetSpec(
            scenarios=scenarios,
            governors=governors + ("warpdrive",),  # the injected failure
            seeds=seeds, chips=("tiny",), include_rl=True, **FAST,
        )
        fleet = run_fleet(spec, jobs=4)
        assert len(fleet.outcomes) == 2 * 8 * 2
        assert len(fleet.failures) == len(scenarios) * len(seeds)
        by_seed = split_by_seed(fleet.successes)
        for seed in seeds:
            serial = run_headline_sweep(
                chip=tiny_test_chip(),
                scenario_names=list(scenarios),
                governor_names=list(governors),
                eval_seed=seed,
                **FAST,
            )
            assert by_seed[seed].rows == serial.rows, seed

    def test_parallel_sweep_equals_serial_sweep(self):
        kwargs = dict(
            scenario_names=["audio_playback"],
            governor_names=["ondemand", "powersave"],
            include_rl=True, eval_seed=5, **FAST,
        )
        serial = sweep(tiny_test_chip(), jobs=1, **kwargs)
        parallel = sweep(tiny_test_chip(), jobs=2, **kwargs)
        assert serial.rows == parallel.rows

    def test_custom_chip_ships_to_workers(self, duo_chip):
        rows = sweep(
            duo_chip,
            scenario_names=["idle"],
            governor_names=["ondemand"],
            include_rl=False,
            eval_seed=1,
            jobs=2,
            **FAST,
        ).rows
        serial = sweep(
            duo_chip,
            scenario_names=["idle"],
            governor_names=["ondemand"],
            include_rl=False,
            eval_seed=1,
            jobs=1,
            **FAST,
        ).rows
        assert rows == serial


class TestAggregation:
    def _successes(self):
        spec = FleetSpec(scenarios=("idle",), governors=("ondemand",),
                         seeds=(1, 2), chips=("tiny",), **FAST)
        return run_fleet(spec, jobs=1).successes

    def test_order_independent(self):
        successes = self._successes()
        shuffled = list(reversed(successes))
        assert to_sweep_result(successes).rows == \
            to_sweep_result(shuffled).rows

    def test_seed_filter(self):
        successes = self._successes()
        only = to_sweep_result(successes, seed=2)
        assert len(only.rows) == 1
        by_seed = split_by_seed(successes)
        assert sorted(by_seed) == [1, 2]
        assert by_seed[2].rows == only.rows

    def test_tables_render(self):
        successes = self._successes()
        table = result_table(successes)
        assert "ondemand" in table and "wall [s]" in table
        assert failure_table([]) == ""
        failure = run_fleet([JobSpec(scenario="s", governor="g")], jobs=1,
                            job_fn=_always_raise).failures[0]
        assert "ValueError" in failure_table([failure])


class TestRepeatJobs:
    def test_matches_serial_values_and_order(self):
        spec = JobSpec(scenario="idle", governor="ondemand", chip="tiny",
                       **FAST)
        serial = repeat_jobs_over_seeds(spec, [3, 1, 2], jobs=1)
        parallel = repeat_jobs_over_seeds(spec, [3, 1, 2], jobs=3)
        assert serial.values == parallel.values
        assert serial.n == 3

    def test_unknown_metric_rejected(self):
        spec = JobSpec(scenario="idle", governor="ondemand", chip="tiny")
        with pytest.raises(ReproError, match="unknown metric"):
            repeat_jobs_over_seeds(spec, [1], metric="joules_per_vibe")

    def test_failures_raise(self):
        spec = JobSpec(scenario="idle", governor="warpdrive", chip="tiny",
                       **FAST)
        with pytest.raises(ReproError, match="fleet jobs failed"):
            repeat_jobs_over_seeds(spec, [1, 2], jobs=1)


class TestEvents:
    def test_format_event_lines(self):
        assert "2 jobs" in format_event(FleetStarted(n_jobs=2, workers=1))
        assert format_event(JobQueued(index=0, job_id="j")) is None
        line = format_event(JobDone(index=0, job_id="tiny/idle/ondemand/s1",
                                    wall_s=1.5, sim_throughput=12.0))
        assert "tiny/idle/ondemand/s1" in line
        failed = format_event(JobFailed(index=0, job_id="j", attempt=1,
                                        error="E: boom", timed_out=True,
                                        final=False))
        assert "timeout" in failed and "will retry" in failed
        assert "retry" in format_event(JobRetried(index=0, job_id="j",
                                                  attempt=2))
        assert "finished" in format_event(FleetFinished(done=1, failed=0,
                                                        wall_s=2.0))

    def test_summary_mentions_speedup(self):
        spec = FleetSpec(scenarios=("idle",), governors=("ondemand",),
                         seeds=(1,), chips=("tiny",), **FAST)
        summary = fleet_summary(run_fleet(spec, jobs=1))
        assert "speedup" in summary


class TestFleetCLI:
    def test_fleet_command_survives_bad_governor(self, capsys, tmp_path):
        from repro.cli import main

        out_file = tmp_path / "fleet.json"
        code = main([
            "fleet", "--chip", "tiny",
            "--scenarios", "audio_playback,idle",
            "--governors", "ondemand,warpdrive",
            "--seeds", "1,2", "--duration", "1.0",
            "--jobs", "2", "--quiet", "--out", str(out_file),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "fleet results" in out
        assert "failed jobs" in out
        assert "speedup" in out
        data = json.loads(out_file.read_text())
        assert len(data["rows"]) == 4
        assert len(data["failures"]) == 4
        assert data["failures"][0]["error_type"] == "GovernorError"

    def test_fleet_spec_file(self, capsys, tmp_path):
        from repro.cli import main

        spec = FleetSpec(scenarios=("idle",), governors=("ondemand",),
                         seeds=(1,), chips=("tiny",), **FAST)
        spec_file = tmp_path / "spec.json"
        spec_file.write_text(json.dumps(spec.to_mapping()))
        assert main(["fleet", "--spec", str(spec_file), "--quiet"]) == 0
        assert "fleet results" in capsys.readouterr().out

    def test_fleet_all_failed_is_error(self, capsys):
        from repro.cli import main

        code = main([
            "fleet", "--chip", "tiny", "--scenarios", "idle",
            "--governors", "warpdrive", "--seeds", "1",
            "--duration", "1.0", "--jobs", "1", "--quiet",
        ])
        assert code == 1

    def test_list_shows_descriptions(self, capsys):
        from repro.cli import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "menu / 60 fps gameplay / level loads" in out
        assert "background ticks and sync bursts" in out

    def test_compare_jobs_flag(self, capsys):
        from repro.cli import main

        code = main([
            "compare", "--chip", "tiny", "--scenario", "audio_playback",
            "--governors", "performance,powersave",
            "--duration", "1.0", "--episodes", "2", "--jobs", "2",
        ])
        assert code == 0
        assert "rl-policy" in capsys.readouterr().out


class TestFleetMetrics:
    def test_collect_metrics_travels_on_job_done(self):
        spec = FleetSpec(scenarios=("idle",), governors=("ondemand",),
                         seeds=(1,), chips=("tiny",), collect_metrics=True,
                         **FAST)
        log = EventLog()
        result = run_fleet(spec, jobs=1, on_event=log)
        success = result.successes[0]
        assert success.metrics is not None
        assert success.metrics["counters"]["sim.runs"] == 1.0
        done = log.of_type(JobDone)[0]
        assert done.metrics == success.metrics

    def test_metrics_off_by_default(self):
        spec = JobSpec(scenario="idle", governor="ondemand", chip="tiny",
                       duration_s=1.0)
        assert execute_job(spec).metrics is None
        assert run_job(spec).metrics is None

    def test_obs_state_restored_after_job(self):
        from repro.obs import OBS

        spec = JobSpec(scenario="idle", governor="ondemand", chip="tiny",
                       duration_s=1.0, collect_metrics=True)
        measurement = execute_job(spec)
        assert not OBS.enabled
        assert measurement.metrics["counters"]["sim.intervals"] > 0

    def test_merge_job_metrics_sums_counters(self):
        spec = FleetSpec(scenarios=("idle",),
                         governors=("ondemand", "powersave"),
                         seeds=(1,), chips=("tiny",), collect_metrics=True,
                         **FAST)
        result = run_fleet(spec, jobs=1)
        merged = merge_job_metrics(result.successes)
        assert merged["counters"]["sim.runs"] == 2.0
        # Gauges average, and record the contributing-job count.
        assert merged["gauges"]["sim.last_mean_qos.jobs"] == 2.0

    def test_merge_skips_jobs_without_snapshots(self):
        spec = JobSpec(scenario="idle", governor="ondemand", chip="tiny",
                       duration_s=1.0)
        outcome = run_job(spec)
        assert merge_job_metrics([outcome]) == {
            "counters": {}, "gauges": {}, "histograms": {}
        }

    def test_collect_metrics_round_trips_spec_mapping(self):
        spec = FleetSpec(scenarios=("idle",), governors=("ondemand",),
                         seeds=(1,), chips=("tiny",), collect_metrics=True)
        again = FleetSpec.from_mapping(spec.to_mapping())
        assert again.collect_metrics
        assert all(j.collect_metrics for j in again.expand())

    def test_parallel_jobs_carry_metrics(self):
        spec = FleetSpec(scenarios=("idle",),
                         governors=("ondemand", "powersave"),
                         seeds=(1,), chips=("tiny",), collect_metrics=True,
                         **FAST)
        result = run_fleet(spec, jobs=2)
        assert all(s.metrics is not None for s in result.successes)
        merged = merge_job_metrics(result.successes)
        assert merged["counters"]["sim.runs"] == 2.0


class TestFleetTracing:
    def _traced_spec(self, tmp_path, scenarios=("idle", "audio_playback")):
        return FleetSpec(scenarios=scenarios,
                         governors=("ondemand", "powersave"),
                         seeds=(1,), chips=("tiny",),
                         trace_dir=str(tmp_path), **FAST)

    def test_four_job_fleet_merges_to_one_lane_per_worker(self, tmp_path):
        """The acceptance check: >= 4 traced jobs stitch into one valid
        Chrome trace with one lane per worker pid."""
        from repro.fleet import trace_paths
        from repro.obs import merge_trace_files, trace_lanes, validate_chrome_trace

        spec = self._traced_spec(tmp_path)
        result = run_fleet(spec, jobs=2)
        assert len(result.successes) == 4
        paths = trace_paths(result.successes)
        assert len(paths) == 4
        assert all(Path(p).is_file() for p in paths)
        worker_pids = {s.metrics["meta"]["pid"] for s in result.successes}
        merged = merge_trace_files(paths, out=tmp_path / "merged.json")
        validate_chrome_trace(merged)
        assert set(trace_lanes(merged)) == worker_pids
        # Every lane carries engine spans, not just metadata.
        span_pids = {e["pid"] for e in merged["traceEvents"]
                     if e.get("ph") == "X" and
                     e["name"].startswith("engine.")}
        assert span_pids == worker_pids

    def test_trace_dir_implies_metrics_with_meta(self, tmp_path):
        spec = JobSpec(scenario="idle", governor="ondemand", chip="tiny",
                       duration_s=1.0, trace_dir=str(tmp_path))
        measurement = execute_job(spec)
        assert measurement.trace_path is not None
        assert Path(measurement.trace_path).parent == tmp_path
        assert measurement.metrics["meta"]["job_id"] == spec.job_id
        assert measurement.metrics["meta"]["pid"] > 0

    def test_trace_path_travels_on_events(self, tmp_path):
        spec = self._traced_spec(tmp_path, scenarios=("idle",))
        log = EventLog()
        result = run_fleet(spec, jobs=1, on_event=log)
        done = log.of_type(JobDone)
        assert {d.trace_path for d in done} == \
            {s.trace_path for s in result.successes}

    def test_trace_dir_round_trips_spec_mapping(self, tmp_path):
        spec = self._traced_spec(tmp_path, scenarios=("idle",))
        again = FleetSpec.from_mapping(spec.to_mapping())
        assert again.trace_dir == str(tmp_path)
        assert all(j.trace_dir == str(tmp_path) for j in again.expand())

    def test_no_trace_dir_means_no_trace_path(self):
        spec = JobSpec(scenario="idle", governor="ondemand", chip="tiny",
                       duration_s=1.0, collect_metrics=True)
        assert execute_job(spec).trace_path is None

    def test_cli_trace_dir_then_merge(self, capsys, tmp_path):
        from repro.cli import main
        from repro.obs import load_chrome_trace

        trace_dir = tmp_path / "traces"
        code = main([
            "fleet", "--chip", "tiny", "--scenarios", "idle",
            "--governors", "ondemand,powersave", "--seeds", "1,2",
            "--duration", "1.0", "--jobs", "2", "--quiet",
            "--trace-dir", str(trace_dir),
        ])
        assert code == 0
        assert "4 per-job trace(s)" in capsys.readouterr().out
        traces = sorted(trace_dir.glob("*.json"))
        assert len(traces) == 4
        merged = tmp_path / "merged.json"
        code = main([
            "trace", "--merge", *map(str, traces), "--out", str(merged),
        ])
        assert code == 0
        assert "lane(s)" in capsys.readouterr().out
        load_chrome_trace(merged)  # validates


class TestProgressRendering:
    def test_format_event_prefixes_timestamp(self):
        line = format_event(FleetStarted(n_jobs=2, workers=1),
                            ts="2026-01-02T03:04:05")
        assert line == "2026-01-02T03:04:05 fleet: 2 jobs on 1 process"

    def test_format_event_default_timestamp_is_iso(self):
        import re

        line = format_event(FleetFinished(done=1, failed=0, wall_s=1.0))
        assert re.match(r"^\d{4}-\d{2}-\d{2}T\d{2}:\d{2}:\d{2} ", line)

    def test_silent_events_stay_silent(self):
        assert format_event(JobQueued(index=0, job_id="j"),
                            ts="2026-01-01T00:00:00") is None

    def test_format_progress_line(self):
        line = format_progress_line(
            FleetProgress(done=1, failed=1, total=4, elapsed_s=2.5), width=8
        )
        assert line == "[####....] 2/4 (1 failed) 2.5 s"

    def test_progress_line_empty_grid_safe(self):
        line = format_progress_line(
            FleetProgress(done=0, failed=0, total=0, elapsed_s=0.0)
        )
        assert "0/0" in line
