"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.soc.chip import Chip
from repro.soc.cluster import ClusterSpec
from repro.soc.core import CoreSpec
from repro.soc.opp import make_table
from repro.soc.presets import exynos5422, tiny_test_chip
from repro.workload.task import WorkUnit
from repro.workload.trace import Trace


@pytest.fixture
def tiny_chip() -> Chip:
    """1 cluster, 1 core, 3 OPPs — the fastest thing that simulates."""
    return tiny_test_chip()


@pytest.fixture
def duo_chip() -> Chip:
    """A small 2-cluster big.LITTLE-style chip for scheduler tests."""
    big = CoreSpec(name="B", capacity=2.0, ceff_f=4e-10, leak_a_per_v=0.08, is_big=True)
    little = CoreSpec(name="L", capacity=1.0, ceff_f=1e-10, leak_a_per_v=0.02)
    return Chip(
        "duo",
        [
            ClusterSpec("big", big, n_cores=2,
                        opp_table=make_table([500, 1000, 2000], [0.9, 1.0, 1.2])),
            ClusterSpec("little", little, n_cores=2,
                        opp_table=make_table([300, 600, 1200], [0.9, 0.95, 1.1])),
        ],
    )


@pytest.fixture
def big_little_chip() -> Chip:
    """The full Exynos-5422-class preset."""
    return exynos5422()


def unit(
    uid: int = 0,
    release: float = 0.0,
    work: float = 1e6,
    deadline: float | None = None,
    kind: str = "work",
    parallelism: int = 1,
) -> WorkUnit:
    """Terse work-unit builder for tests."""
    return WorkUnit(
        uid=uid,
        release_s=release,
        work=work,
        deadline_s=deadline if deadline is not None else release + 0.1,
        kind=kind,
        min_parallelism=parallelism,
    )


@pytest.fixture
def single_unit_trace() -> Trace:
    """One 1e6-cycle unit released at t=0, due at t=0.1."""
    return Trace(units=[unit()], name="single", duration_s=0.2)


@pytest.fixture
def steady_trace() -> Trace:
    """Periodic 30 Hz units, comfortably feasible on the tiny chip."""
    units = [
        unit(uid=i, release=i / 30.0, work=5e6, deadline=i / 30.0 + 1 / 30.0)
        for i in range(30)
    ]
    return Trace(units=units, name="steady", duration_s=1.1)
