"""Exporter round-trips: Chrome trace_event, JSONL, Prometheus text."""

from __future__ import annotations

import json

import pytest

from repro.core.trainer import train_policy
from repro.errors import ObsError
from repro.governors import create
from repro.obs import (
    EPOCH_METADATA_NAME,
    MetricsRegistry,
    Tracer,
    capture,
    chrome_trace,
    load_chrome_trace,
    load_spans,
    merge_trace_files,
    merge_traces,
    prometheus_text,
    read_jsonl,
    span_tree,
    spans_from_chrome,
    trace_lanes,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.sim.engine import Simulator
from repro.soc.presets import tiny_test_chip
from repro.workload.scenarios import get_scenario


def _traced_run(duration_s: float = 1.0):
    trace = get_scenario("audio_playback").trace(duration_s, seed=3)
    with capture() as session:
        Simulator(tiny_test_chip(), trace, lambda c: create("ondemand")).run()
    return session


def _sample_tracer_and_metrics():
    tracer = Tracer()
    with tracer.span("outer", cat="test", run=1):
        with tracer.span("inner"):
            tracer.instant("mark", cat="test", k=2)
        with tracer.span("inner"):
            pass
    metrics = MetricsRegistry()
    metrics.counter("jobs").inc(3)
    metrics.gauge("qos").set(0.9)
    metrics.histogram("err", buckets=(1.0, 10.0)).observe(0.5)
    return tracer, metrics


class TestChromeTrace:
    def test_engine_round_trip_has_phases_per_interval(self, tmp_path):
        """The acceptance check: a written trace parses back into >= 4
        distinct engine phase spans *per interval*."""
        session = _traced_run()
        path = write_chrome_trace(tmp_path / "t.json", session.tracer,
                                  session.metrics)
        data = load_chrome_trace(path)  # validates the schema
        events = data["traceEvents"]
        intervals = [e for e in events
                     if e["ph"] == "X" and e["name"] == "engine.interval"]
        assert intervals
        phase_names = {e["name"] for e in events
                       if e["ph"] == "X" and e["name"].startswith("engine.phase.")}
        assert len(phase_names) >= 4
        for name in phase_names:
            count = sum(1 for e in events if e.get("name") == name)
            assert count == len(intervals)

    def test_rl_convergence_events_per_episode(self, tmp_path):
        episodes = 2
        with capture() as session:
            train_policy(
                tiny_test_chip(),
                get_scenario("audio_playback"),
                episodes=episodes,
                episode_duration_s=1.0,
            )
        path = write_chrome_trace(tmp_path / "rl.json", session.tracer,
                                  session.metrics)
        events = load_chrome_trace(path)["traceEvents"]
        rl = [e for e in events if e.get("name") == "rl.episode"]
        assert len(rl) == episodes
        for e in rl:
            assert e["ph"] == "i"
            assert {"td_error_mean_abs", "epsilon", "q_coverage"} <= set(e["args"])
        counters = {e["name"] for e in events if e["ph"] == "C"}
        assert "rl.episodes" in counters

    def test_structure_and_metadata(self):
        tracer, metrics = _sample_tracer_and_metrics()
        data = chrome_trace(tracer, metrics, process_name="unit")
        validate_chrome_trace(data)
        events = data["traceEvents"]
        assert events[0]["ph"] == "M"
        assert events[0]["args"]["name"] == "unit"
        assert sum(1 for e in events if e["ph"] == "X") == 3
        assert sum(1 for e in events if e["ph"] == "i") == 1
        # Counters and gauges each become a counter-track event.
        assert sum(1 for e in events if e["ph"] == "C") == 2

    def test_validate_rejects_malformed(self, tmp_path):
        with pytest.raises(ObsError, match="traceEvents"):
            validate_chrome_trace({})
        with pytest.raises(ObsError, match="missing"):
            validate_chrome_trace({"traceEvents": [{"ph": "X"}]})
        with pytest.raises(ObsError, match="finite"):
            validate_chrome_trace({"traceEvents": [
                {"ph": "X", "name": "x", "ts": float("nan"), "pid": 0,
                 "tid": 0, "dur": 1.0}
            ]})
        bad = tmp_path / "bad.json"
        bad.write_text("not json")
        with pytest.raises(ObsError, match="not JSON"):
            load_chrome_trace(bad)


class TestJsonl:
    def test_round_trip_identical_span_tree(self, tmp_path):
        tracer, metrics = _sample_tracer_and_metrics()
        path = write_jsonl(tmp_path / "t.jsonl", tracer, metrics)
        spans, instants, snapshot = read_jsonl(path)
        assert spans == tracer.spans
        assert instants == tracer.instants
        assert snapshot == metrics.snapshot()
        assert span_tree(spans) == span_tree(tracer.spans)

    def test_engine_dump_reloads(self, tmp_path):
        session = _traced_run()
        path = write_jsonl(tmp_path / "e.jsonl", session.tracer,
                           session.metrics)
        spans, instants, snapshot = read_jsonl(path)
        assert spans == session.tracer.spans
        assert [i.name for i in instants] == \
            [i.name for i in session.tracer.instants]
        assert snapshot["counters"]["sim.runs"] == 1.0
        tree = span_tree(spans)
        root = tree[None][0]
        assert root.name == "engine.run"
        assert all(s.name == "engine.interval" for s in tree[root.uid])

    def test_malformed_lines_raise(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("{not json}\n")
        with pytest.raises(ObsError, match="not JSON"):
            read_jsonl(bad)
        bad.write_text(json.dumps({"kind": "mystery"}) + "\n")
        with pytest.raises(ObsError, match="unknown kind"):
            read_jsonl(bad)


class TestPrometheus:
    def test_exposition_format(self):
        _, metrics = _sample_tracer_and_metrics()
        text = prometheus_text(metrics)
        lines = text.splitlines()
        assert "# TYPE repro_jobs counter" in lines
        assert "repro_jobs 3" in lines
        assert "repro_qos 0.9" in lines
        assert "# TYPE repro_err histogram" in lines
        assert 'repro_err_bucket{le="1"} 1' in lines
        assert 'repro_err_bucket{le="+Inf"} 1' in lines
        assert "repro_err_count 1" in lines

    def test_accepts_plain_snapshot_and_sanitises_names(self):
        reg = MetricsRegistry()
        reg.counter("sim.opp-switches").inc()
        text = prometheus_text(reg.snapshot(), prefix="x")
        assert "x_sim_opp_switches 1" in text

    def test_overflow_observations_land_in_inf_bucket(self):
        """Observations above the top bound appear only in +Inf, and the
        cumulative counts still total the observation count."""
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=(1.0, 10.0))
        for v in (0.5, 5.0, 100.0, 200.0):
            h.observe(v)
        lines = prometheus_text(reg).splitlines()
        assert 'repro_lat_bucket{le="1"} 1' in lines
        assert 'repro_lat_bucket{le="10"} 2' in lines
        assert 'repro_lat_bucket{le="+Inf"} 4' in lines
        assert "repro_lat_count 4" in lines

    def test_hostile_metric_names_are_escaped(self):
        reg = MetricsRegistry()
        reg.counter('evil"name{}\\').inc()
        reg.gauge("0starts.with-digit").set(1.0)
        text = prometheus_text(reg)
        for line in text.splitlines():
            name = line.split()[1] if line.startswith("#") else line.split()[0]
            name = name.split("{")[0]
            assert name[0].isalpha() or name[0] == "_"
            assert all(c.isalnum() or c == "_" for c in name)

    def test_constant_labels_attach_to_every_series(self):
        reg = MetricsRegistry()
        reg.counter("jobs").inc()
        reg.histogram("lat", buckets=(1.0,)).observe(0.5)
        text = prometheus_text(reg, labels={"job": "serve", "host": "a"})
        # Sorted label keys, merged with `le` on buckets.
        assert 'repro_jobs{host="a",job="serve"} 1' in text
        assert 'repro_lat_bucket{host="a",job="serve",le="1"} 1' in text
        assert 'repro_lat_bucket{host="a",job="serve",le="+Inf"} 1' in text
        assert 'repro_lat_sum{host="a",job="serve"}' in text
        assert 'repro_lat_count{host="a",job="serve"} 1' in text

    def test_hostile_label_values_are_escaped(self):
        """Backslashes, quotes, and newlines in label values must escape
        per the exposition format: \\ -> \\\\, " -> \\", newline -> \\n.
        """
        reg = MetricsRegistry()
        reg.counter("jobs").inc()
        text = prometheus_text(
            reg,
            labels={"path": 'C:\\tmp\\"x"', "note": "line1\nline2"},
        )
        line = next(
            ln for ln in text.splitlines() if ln.startswith("repro_jobs{")
        )
        assert "\n" not in line  # a raw newline would split the series
        assert '\\n' in line
        assert 'path="C:\\\\tmp\\\\\\"x\\""' in line
        assert 'note="line1\\nline2"' in line

    def test_hostile_label_names_are_sanitised(self):
        reg = MetricsRegistry()
        reg.counter("jobs").inc()
        text = prometheus_text(reg, labels={'0bad"name': "v"})
        line = next(
            ln for ln in text.splitlines() if ln.startswith("repro_jobs{")
        )
        label_name = line.split("{")[1].split("=")[0]
        assert label_name[0].isalpha() or label_name[0] == "_"
        assert all(c.isalnum() or c == "_" for c in label_name)


def _trace_with_epoch(pid: int, epoch_us: float, name: str):
    tracer = Tracer()
    with tracer.span(f"{name}.work"):
        pass
    return chrome_trace(tracer, process_name=name, pid=pid, epoch_us=epoch_us)


class TestTraceMerge:
    def test_epoch_shift_aligns_lanes(self):
        """The later-starting trace's events shift right by the epoch
        difference; the earliest trace defines t=0."""
        early = _trace_with_epoch(100, 1_000_000.0, "job-a")
        late = _trace_with_epoch(200, 1_000_500.0, "job-b")
        original = {e["pid"]: e["ts"]
                    for t in (early, late)
                    for e in t["traceEvents"] if e["ph"] == "X"}
        merged = merge_traces([early, late])
        validate_chrome_trace(merged)
        spans = {e["pid"]: e for e in merged["traceEvents"]
                 if e["ph"] == "X"}
        assert spans[100]["ts"] == pytest.approx(original[100])
        assert spans[200]["ts"] == pytest.approx(original[200] + 500.0)
        assert trace_lanes(merged) == [100, 200]

    def test_lane_labels_collect_job_names(self):
        a = _trace_with_epoch(7, 0.0, "job-a")
        b = _trace_with_epoch(7, 0.0, "job-b")  # same pool worker
        merged = merge_traces([a, b])
        labels = [e["args"]["name"] for e in merged["traceEvents"]
                  if e["ph"] == "M" and e["name"] == "process_name"]
        assert labels == ["job-a | job-b"]

    def test_unstamped_traces_keep_their_timestamps(self):
        tracer = Tracer()
        with tracer.span("x"):
            pass
        plain = chrome_trace(tracer, pid=3)  # no epoch metadata
        merged = merge_traces([plain])
        (span,) = [e for e in merged["traceEvents"] if e["ph"] == "X"]
        assert span["ts"] == pytest.approx(tracer.spans[0].start_us)

    def test_empty_input_raises(self):
        with pytest.raises(ObsError, match="at least one"):
            merge_traces([])
        with pytest.raises(ObsError, match="traceEvents"):
            merge_traces([{"not": "a trace"}])

    def test_merge_trace_files_round_trip(self, tmp_path):
        paths = []
        for k in range(2):
            data = _trace_with_epoch(k + 1, k * 100.0, f"job-{k}")
            p = tmp_path / f"t{k}.json"
            p.write_text(json.dumps(data))
            paths.append(p)
        out = tmp_path / "merged.json"
        merged = merge_trace_files(paths, out=out)
        assert trace_lanes(merged) == [1, 2]
        reloaded = load_chrome_trace(out)
        assert trace_lanes(reloaded) == [1, 2]


class TestLoadSpans:
    def test_sniffs_chrome_format(self, tmp_path):
        tracer, metrics = _sample_tracer_and_metrics()
        path = write_chrome_trace(tmp_path / "t.json", tracer, metrics)
        spans = load_spans(path)
        assert [s.name for s in spans] == [s.name for s in tracer.spans]
        assert [s.dur_us for s in spans] == [s.dur_us for s in tracer.spans]

    def test_sniffs_jsonl_format(self, tmp_path):
        tracer, metrics = _sample_tracer_and_metrics()
        path = write_jsonl(tmp_path / "t.jsonl", tracer, metrics)
        assert load_spans(path) == tracer.spans

    def test_spans_from_chrome_skips_non_complete_events(self):
        tracer, metrics = _sample_tracer_and_metrics()
        data = chrome_trace(tracer, metrics)
        spans = spans_from_chrome(data)
        assert len(spans) == 3  # instants and counter events dropped

    def test_garbage_raises(self, tmp_path):
        bad = tmp_path / "bad.txt"
        bad.write_text("neither format")
        with pytest.raises(ObsError):
            load_spans(bad)

    def test_epoch_metadata_name_is_stable(self):
        # Saved traces embed this name; renaming it orphans old files.
        assert EPOCH_METADATA_NAME == "trace_epoch_us"
