"""Exporter round-trips: Chrome trace_event, JSONL, Prometheus text."""

from __future__ import annotations

import json

import pytest

from repro.core.trainer import train_policy
from repro.errors import ObsError
from repro.governors import create
from repro.obs import (
    MetricsRegistry,
    Tracer,
    capture,
    chrome_trace,
    load_chrome_trace,
    prometheus_text,
    read_jsonl,
    span_tree,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.sim.engine import Simulator
from repro.soc.presets import tiny_test_chip
from repro.workload.scenarios import get_scenario


def _traced_run(duration_s: float = 1.0):
    trace = get_scenario("audio_playback").trace(duration_s, seed=3)
    with capture() as session:
        Simulator(tiny_test_chip(), trace, lambda c: create("ondemand")).run()
    return session


def _sample_tracer_and_metrics():
    tracer = Tracer()
    with tracer.span("outer", cat="test", run=1):
        with tracer.span("inner"):
            tracer.instant("mark", cat="test", k=2)
        with tracer.span("inner"):
            pass
    metrics = MetricsRegistry()
    metrics.counter("jobs").inc(3)
    metrics.gauge("qos").set(0.9)
    metrics.histogram("err", buckets=(1.0, 10.0)).observe(0.5)
    return tracer, metrics


class TestChromeTrace:
    def test_engine_round_trip_has_phases_per_interval(self, tmp_path):
        """The acceptance check: a written trace parses back into >= 4
        distinct engine phase spans *per interval*."""
        session = _traced_run()
        path = write_chrome_trace(tmp_path / "t.json", session.tracer,
                                  session.metrics)
        data = load_chrome_trace(path)  # validates the schema
        events = data["traceEvents"]
        intervals = [e for e in events
                     if e["ph"] == "X" and e["name"] == "engine.interval"]
        assert intervals
        phase_names = {e["name"] for e in events
                       if e["ph"] == "X" and e["name"].startswith("engine.phase.")}
        assert len(phase_names) >= 4
        for name in phase_names:
            count = sum(1 for e in events if e.get("name") == name)
            assert count == len(intervals)

    def test_rl_convergence_events_per_episode(self, tmp_path):
        episodes = 2
        with capture() as session:
            train_policy(
                tiny_test_chip(),
                get_scenario("audio_playback"),
                episodes=episodes,
                episode_duration_s=1.0,
            )
        path = write_chrome_trace(tmp_path / "rl.json", session.tracer,
                                  session.metrics)
        events = load_chrome_trace(path)["traceEvents"]
        rl = [e for e in events if e.get("name") == "rl.episode"]
        assert len(rl) == episodes
        for e in rl:
            assert e["ph"] == "i"
            assert {"td_error_mean_abs", "epsilon", "q_coverage"} <= set(e["args"])
        counters = {e["name"] for e in events if e["ph"] == "C"}
        assert "rl.episodes" in counters

    def test_structure_and_metadata(self):
        tracer, metrics = _sample_tracer_and_metrics()
        data = chrome_trace(tracer, metrics, process_name="unit")
        validate_chrome_trace(data)
        events = data["traceEvents"]
        assert events[0]["ph"] == "M"
        assert events[0]["args"]["name"] == "unit"
        assert sum(1 for e in events if e["ph"] == "X") == 3
        assert sum(1 for e in events if e["ph"] == "i") == 1
        # Counters and gauges each become a counter-track event.
        assert sum(1 for e in events if e["ph"] == "C") == 2

    def test_validate_rejects_malformed(self, tmp_path):
        with pytest.raises(ObsError, match="traceEvents"):
            validate_chrome_trace({})
        with pytest.raises(ObsError, match="missing"):
            validate_chrome_trace({"traceEvents": [{"ph": "X"}]})
        with pytest.raises(ObsError, match="finite"):
            validate_chrome_trace({"traceEvents": [
                {"ph": "X", "name": "x", "ts": float("nan"), "pid": 0,
                 "tid": 0, "dur": 1.0}
            ]})
        bad = tmp_path / "bad.json"
        bad.write_text("not json")
        with pytest.raises(ObsError, match="not JSON"):
            load_chrome_trace(bad)


class TestJsonl:
    def test_round_trip_identical_span_tree(self, tmp_path):
        tracer, metrics = _sample_tracer_and_metrics()
        path = write_jsonl(tmp_path / "t.jsonl", tracer, metrics)
        spans, instants, snapshot = read_jsonl(path)
        assert spans == tracer.spans
        assert instants == tracer.instants
        assert snapshot == metrics.snapshot()
        assert span_tree(spans) == span_tree(tracer.spans)

    def test_engine_dump_reloads(self, tmp_path):
        session = _traced_run()
        path = write_jsonl(tmp_path / "e.jsonl", session.tracer,
                           session.metrics)
        spans, instants, snapshot = read_jsonl(path)
        assert spans == session.tracer.spans
        assert [i.name for i in instants] == \
            [i.name for i in session.tracer.instants]
        assert snapshot["counters"]["sim.runs"] == 1.0
        tree = span_tree(spans)
        root = tree[None][0]
        assert root.name == "engine.run"
        assert all(s.name == "engine.interval" for s in tree[root.uid])

    def test_malformed_lines_raise(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("{not json}\n")
        with pytest.raises(ObsError, match="not JSON"):
            read_jsonl(bad)
        bad.write_text(json.dumps({"kind": "mystery"}) + "\n")
        with pytest.raises(ObsError, match="unknown kind"):
            read_jsonl(bad)


class TestPrometheus:
    def test_exposition_format(self):
        _, metrics = _sample_tracer_and_metrics()
        text = prometheus_text(metrics)
        lines = text.splitlines()
        assert "# TYPE repro_jobs counter" in lines
        assert "repro_jobs 3" in lines
        assert "repro_qos 0.9" in lines
        assert "# TYPE repro_err histogram" in lines
        assert 'repro_err_bucket{le="1"} 1' in lines
        assert 'repro_err_bucket{le="+Inf"} 1' in lines
        assert "repro_err_count 1" in lines

    def test_accepts_plain_snapshot_and_sanitises_names(self):
        reg = MetricsRegistry()
        reg.counter("sim.opp-switches").inc()
        text = prometheus_text(reg.snapshot(), prefix="x")
        assert "x_sim_opp_switches 1" in text
