"""The fixed-point Q-learning datapath versus the float reference."""

import pytest

from repro.errors import HardwareModelError
from repro.hw.datapath import QLearningDatapath
from repro.hw.fixed_point import QFormat
from repro.rl.qlearning import QLearningAgent
from repro.rl.qtable import QTable


class TestDatapathBasics:
    def test_fresh_table_is_zero(self):
        dp = QLearningDatapath(4, 3)
        assert dp.read_row(0) == [0, 0, 0]

    def test_argmax_priority_low_index(self):
        dp = QLearningDatapath(1, 4)
        assert dp.argmax(0) == 0
        dp.table[0, 1] = 5
        dp.table[0, 3] = 5
        assert dp.argmax(0) == 1

    def test_alpha_is_power_of_two(self):
        dp = QLearningDatapath(2, 2, alpha_shift=3)
        assert dp.alpha == pytest.approx(0.125)

    def test_bounds_checked(self):
        dp = QLearningDatapath(2, 2)
        with pytest.raises(HardwareModelError):
            dp.read_row(2)
        with pytest.raises(HardwareModelError):
            dp.update(0, 2, 0.0, 1)

    def test_bram_bits(self):
        dp = QLearningDatapath(270, 5, qformat=QFormat(7, 8))
        assert dp.bram_bits() == 270 * 5 * 16

    def test_validation(self):
        with pytest.raises(HardwareModelError):
            QLearningDatapath(0, 2)
        with pytest.raises(HardwareModelError):
            QLearningDatapath(2, 2, gamma=1.0)
        with pytest.raises(HardwareModelError):
            QLearningDatapath(2, 2, alpha_shift=-1)


class TestUpdateSemantics:
    def test_simple_update(self):
        # alpha = 0.5, gamma = 0: Q(0,0) <- 0 + 0.5 * (-2 - 0) = -1.
        dp = QLearningDatapath(2, 2, alpha_shift=1, gamma=0.0)
        dp.update(0, 0, reward=-2.0, next_state=1)
        assert dp.fmt.dequantize(int(dp.table[0, 0])) == pytest.approx(-1.0)

    def test_bootstrap_uses_next_state_max(self):
        dp = QLearningDatapath(2, 2, alpha_shift=0, gamma=0.5)
        dp.table[1, 0] = dp.fmt.quantize(4.0)
        dp.update(0, 0, reward=0.0, next_state=1)
        assert dp.fmt.dequantize(int(dp.table[0, 0])) == pytest.approx(2.0)

    def test_values_saturate_not_wrap(self):
        fmt = QFormat(3, 4)  # max ~7.94
        dp = QLearningDatapath(1, 1, qformat=fmt, alpha_shift=0, gamma=0.9)
        for _ in range(100):
            dp.update(0, 0, reward=7.9, next_state=0)
        assert int(dp.table[0, 0]) == fmt.raw_max

    def test_update_counter(self):
        dp = QLearningDatapath(2, 2)
        dp.update(0, 0, 0.0, 1)
        assert dp.updates == 1


class TestFloatInterchange:
    def test_load_and_dump_roundtrip(self):
        soft = QTable(3, 2)
        soft.set(0, 1, 1.25)
        soft.set(2, 0, -3.5)
        dp = QLearningDatapath(3, 2, qformat=QFormat(7, 8))
        dp.load_float_table(soft)
        back = dp.to_float_table()
        assert back.get(0, 1) == pytest.approx(1.25)
        assert back.get(2, 0) == pytest.approx(-3.5)

    def test_shape_mismatch_rejected(self):
        dp = QLearningDatapath(3, 2)
        with pytest.raises(HardwareModelError):
            dp.load_float_table(QTable(2, 2))

    def test_greedy_decisions_match_float_after_quantisation(self):
        """For a table with well-separated action values, the quantised
        datapath must pick the same greedy actions as the float agent."""
        soft = QTable(20, 5)
        import numpy as np

        rng = np.random.default_rng(0)
        for s in range(20):
            vals = rng.uniform(-10, 10, size=5)
            # Enforce separation of at least 4 LSBs of Q7.8.
            vals = np.round(vals * 16) / 16
            for a in range(5):
                soft.set(s, a, float(vals[a]))
        dp = QLearningDatapath(20, 5, qformat=QFormat(7, 8))
        dp.load_float_table(soft)
        for s in range(20):
            assert dp.argmax(s) == soft.argmax(s)


class TestFixedVsFloatLearning:
    def test_td_trajectory_stays_close_to_float(self):
        """Running the identical experience through the fixed-point
        datapath and the float agent keeps Q-values within quantisation
        tolerance for a short horizon."""
        import numpy as np

        rng = np.random.default_rng(1)
        dp = QLearningDatapath(8, 3, qformat=QFormat(7, 8), alpha_shift=2, gamma=0.75)
        agent = QLearningAgent(8, 3, alpha=0.25, gamma=0.75)
        for _ in range(300):
            s = int(rng.integers(8))
            a = int(rng.integers(3))
            r = float(rng.uniform(-2.0, 0.0))
            s2 = int(rng.integers(8))
            dp.update(s, a, r, s2)
            agent.update(s, a, r, s2)
        hard = dp.to_float_table()
        for s in range(8):
            for a in range(3):
                assert hard.get(s, a) == pytest.approx(
                    agent.table.get(s, a), abs=0.15
                )
