"""Trace context, ops log, SLO runtime, and end-to-end correlation."""

from __future__ import annotations

import asyncio
import json
from pathlib import Path
from typing import Any

import pytest

from repro import obs
from repro.cli import main
from repro.core.trainer import train_policy
from repro.errors import ObsError
from repro.fleet.events import (
    JobCached,
    JobDone,
    JobFailed,
    JobQueued,
    JobRetried,
)
from repro.obs import (
    DEFAULT_SLOS,
    SLO_RENDERERS,
    OpsLogger,
    SlidingWindow,
    SloSpec,
    TraceContext,
    bind,
    current_context,
    evaluate_slos,
    format_ops_summary,
    gate_ops_log,
    health_indicators,
    job_record_from_event,
    load_slo_config,
    new_trace_id,
    ops_record,
    read_ops_log,
    render_slo_github,
    render_slo_json,
    render_slo_text,
    slo_gate,
    slos_from_mapping,
    summarize_ops,
    tail_ops_log,
    trace_args,
)
from repro.obs.export import write_chrome_trace
from repro.obs.metrics import MetricsRegistry
from repro.serve import (
    DecisionRequest,
    HealthReply,
    HealthRequest,
    PolicyServer,
    ServeConfig,
    SimulationRequest,
    StatsReply,
    StatsRequest,
    observation_from_mapping,
    serve_once,
)
from repro.soc.presets import tiny_test_chip
from test_trainer import tiny_scenario

DATA = Path(__file__).parent / "data"
OPS_FIXTURE = DATA / "ops-log-fixture.jsonl"
SLO_CONFIG = DATA / "slo-config.json"


@pytest.fixture(scope="module")
def trained():
    chip = tiny_test_chip()
    result = train_policy(
        chip, tiny_scenario(), episodes=3, episode_duration_s=3.0
    )
    return chip, result.policies


def make_server(trained, ops_log=None, **config: Any) -> PolicyServer:
    chip, policies = trained
    return PolicyServer(
        policies, tiny_test_chip(), ServeConfig(**config), ops_log=ops_log
    )


def obs_for(chip, **fields: Any):
    payload = {"cluster": chip.cluster_names[0], **fields}
    return observation_from_mapping(payload, chip)


# ---------------------------------------------------------------------------
# Trace context
# ---------------------------------------------------------------------------


class TestTraceContext:
    def test_requires_trace_id(self):
        with pytest.raises(ObsError, match="trace_id"):
            TraceContext(trace_id="")

    def test_mapping_round_trip(self):
        ctx = TraceContext(trace_id="abc123", request_id="r1")
        assert TraceContext.from_mapping(ctx.to_mapping()) == ctx

    def test_from_mapping_rejects_unknown_keys(self):
        with pytest.raises(ObsError, match="unknown"):
            TraceContext.from_mapping({"trace_id": "x", "color": "red"})

    def test_new_trace_id_is_16_hex_and_distinct(self):
        ids = {new_trace_id() for _ in range(32)}
        assert len(ids) == 32
        assert all(len(i) == 16 and int(i, 16) >= 0 for i in ids)

    def test_bind_scopes_the_current_context(self):
        assert current_context() is None
        ctx = TraceContext(trace_id="deadbeef")
        with bind(ctx):
            assert current_context() == ctx
            inner = TraceContext(trace_id="feedface", request_id="r")
            with bind(inner):
                assert current_context() == inner
            assert current_context() == ctx
        assert current_context() is None

    def test_bind_none_is_a_passthrough(self):
        ctx = TraceContext(trace_id="deadbeef")
        with bind(ctx):
            with bind(None):
                assert current_context() == ctx

    def test_trace_args_reflect_binding(self):
        assert trace_args() == {}
        with bind(TraceContext(trace_id="deadbeef")):
            assert trace_args() == {"trace_id": "deadbeef"}
        with bind(TraceContext(trace_id="deadbeef", request_id="r1")):
            assert trace_args() == {"trace_id": "deadbeef",
                                    "request_id": "r1"}


# ---------------------------------------------------------------------------
# Ops records and the logger
# ---------------------------------------------------------------------------


class TestOpsRecord:
    def test_complete_record_with_defaults(self):
        r = ops_record("decision", "ok", 0.001, ts=5.0)
        assert r["kind"] == "decision" and r["outcome"] == "ok"
        assert r["ts"] == 5.0 and r["queue_wait_s"] == 0.0
        assert r["trace_id"] == "" and r["request_id"] == ""

    def test_extra_fields_preserved(self):
        r = ops_record("job", "ok", 1.0, job_id="j1", ts=0.0)
        assert r["job_id"] == "j1"

    def test_unknown_kind_rejected(self):
        with pytest.raises(ObsError, match="kind"):
            ops_record("dance", "ok", 0.0)

    def test_empty_outcome_rejected(self):
        with pytest.raises(ObsError, match="outcome"):
            ops_record("decision", "", 0.0)

    def test_negative_latency_rejected(self):
        with pytest.raises(ObsError, match="negative"):
            ops_record("decision", "ok", -0.1)
        with pytest.raises(ObsError, match="negative"):
            ops_record("decision", "ok", 0.1, queue_wait_s=-1.0)


class TestOpsLogger:
    def test_appends_one_sorted_json_line_per_record(self, tmp_path):
        logger = OpsLogger(tmp_path / "ops.jsonl")
        logger.log(ops_record("decision", "ok", 0.001, ts=1.0))
        logger.log(ops_record("health", "ok", 0.0, ts=2.0))
        assert logger.written == 2
        lines = (tmp_path / "ops.jsonl").read_text().splitlines()
        assert len(lines) == 2
        assert [json.loads(li)["kind"] for li in lines] == (
            ["decision", "health"]
        )

    def test_creates_parent_directories(self, tmp_path):
        logger = OpsLogger(tmp_path / "deep" / "nested" / "ops.jsonl")
        logger.log(ops_record("decision", "ok", 0.0, ts=0.0))
        assert logger.path.exists()

    def test_rejects_incomplete_records(self, tmp_path):
        logger = OpsLogger(tmp_path / "ops.jsonl")
        with pytest.raises(ObsError, match="missing fields"):
            logger.log({"kind": "decision", "outcome": "ok"})
        assert logger.written == 0

    def test_rejects_unserialisable_records(self, tmp_path):
        logger = OpsLogger(tmp_path / "ops.jsonl")
        record = ops_record("decision", "ok", 0.0, ts=0.0, chip=object())
        with pytest.raises(ObsError, match="serialisable"):
            logger.log(record)


class TestJobRecordFromEvent:
    def test_done_maps_to_ok_with_wall_time(self):
        r = job_record_from_event(
            JobDone(index=0, job_id="j1", wall_s=2.5, sim_throughput=4.0,
                    trace_id="abc")
        )
        assert r["kind"] == "job" and r["outcome"] == "ok"
        assert r["latency_s"] == 2.5 and r["trace_id"] == "abc"
        assert r["job_id"] == "j1"

    def test_cached_maps_to_cached(self):
        r = job_record_from_event(
            JobCached(index=0, job_id="j1", wall_s=0.001)
        )
        assert r["outcome"] == "cached"

    def test_final_failure_maps_to_failed_family(self):
        r = job_record_from_event(
            JobFailed(index=0, job_id="j1", attempt=3,
                      error="ReproError: unknown chip", timed_out=False,
                      final=True)
        )
        assert r["outcome"] == "failed:ReproError"
        assert r["detail"] == "ReproError: unknown chip"

    def test_non_terminal_events_produce_nothing(self):
        assert job_record_from_event(
            JobFailed(index=0, job_id="j", attempt=1, error="x",
                      timed_out=False, final=False)
        ) is None
        assert job_record_from_event(
            JobQueued(index=0, job_id="j")
        ) is None
        assert job_record_from_event(
            JobRetried(index=0, job_id="j", attempt=2)
        ) is None


class TestOpsReadSide:
    def test_fixture_round_trips(self):
        records = read_ops_log(OPS_FIXTURE)
        assert len(records) == 15
        assert all(set(r) >= {"ts", "kind", "trace_id", "request_id",
                              "outcome", "latency_s", "queue_wait_s"}
                   for r in records)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(ObsError, match="cannot read"):
            read_ops_log(tmp_path / "absent.jsonl")

    def test_malformed_line_raises_with_line_number(self, tmp_path):
        path = tmp_path / "ops.jsonl"
        path.write_text('{"kind": "decision"}\nnot json\n')
        with pytest.raises(ObsError, match="missing fields"):
            read_ops_log(path)
        path.write_text("not json\n")
        with pytest.raises(ObsError, match=":1 is not JSON"):
            read_ops_log(path)

    def test_tail_returns_newest_records(self):
        tail = tail_ops_log(OPS_FIXTURE, n=2)
        assert [r["kind"] for r in tail] == ["health", "stats"]
        with pytest.raises(ObsError, match="positive"):
            tail_ops_log(OPS_FIXTURE, n=0)

    def test_summary_counts_and_rates(self):
        summary = summarize_ops(read_ops_log(OPS_FIXTURE))
        assert summary["total"] == 15
        assert summary["by_kind"]["decision"] == 8
        assert summary["by_outcome"] == {"cached": 1, "ok": 13,
                                         "rejected": 1}
        assert summary["rejection_rate"] == pytest.approx(1 / 15)
        assert summary["distinct_trace_ids"] == 13
        assert summary["latency_s"]["max"] == pytest.approx(0.26)

    def test_summary_of_nothing_is_well_formed(self):
        summary = summarize_ops([])
        assert summary["total"] == 0
        assert summary["latency_s"] is None
        assert summary["rejection_rate"] == 0.0

    def test_format_summary_renders(self):
        text = format_ops_summary(summarize_ops(read_ops_log(OPS_FIXTURE)))
        assert "15 record(s)" in text
        assert "decision=8" in text
        assert "rejection rate" in text


# ---------------------------------------------------------------------------
# Sliding window + health indicators
# ---------------------------------------------------------------------------


def _snapshot(requests: int, latencies: list[float]) -> dict[str, Any]:
    reg = MetricsRegistry()
    counter = reg.counter("serve.requests")
    for _ in range(requests):
        counter.inc()
    hist = reg.histogram("serve.decision_latency_s",
                         buckets=(0.001, 0.01, 0.1))
    for value in latencies:
        hist.observe(value)
    return reg.snapshot()


class TestSlidingWindow:
    def test_constructor_validates(self):
        with pytest.raises(ObsError, match="positive"):
            SlidingWindow(window_s=0.0)
        with pytest.raises(ObsError, match="2 samples"):
            SlidingWindow(max_samples=1)

    def test_time_must_not_go_backwards(self):
        window = SlidingWindow()
        window.observe(_snapshot(1, []), at_s=10.0)
        with pytest.raises(ObsError, match="backwards"):
            window.observe(_snapshot(2, []), at_s=9.0)

    def test_delta_differences_counters_and_buckets(self):
        window = SlidingWindow()
        window.observe(_snapshot(3, [0.005]), at_s=0.0)
        window.observe(_snapshot(10, [0.005, 0.05, 0.05]), at_s=5.0)
        delta = window.delta()
        assert delta["counters"]["serve.requests"] == 7
        hist = delta["histograms"]["serve.decision_latency_s"]
        assert hist["count"] == 2
        assert sum(hist["bucket_counts"]) == 2

    def test_single_sample_delta_is_the_snapshot(self):
        window = SlidingWindow()
        window.observe(_snapshot(4, []), at_s=0.0)
        assert window.delta()["counters"]["serve.requests"] == 4
        assert window.span_s() == 0.0

    def test_old_samples_evicted_by_window(self):
        window = SlidingWindow(window_s=10.0)
        for i in range(6):
            window.observe(_snapshot(i, []), at_s=i * 5.0)
        # Samples older than newest-10s are gone, but >= 2 always stay.
        assert len(window) == 3
        assert window.span_s() == pytest.approx(10.0)

    def test_changed_bucket_bounds_raise(self):
        reg = MetricsRegistry()
        reg.histogram("h", buckets=(1.0,)).observe(0.5)
        first = reg.snapshot()
        other = MetricsRegistry()
        other.histogram("h", buckets=(2.0,)).observe(0.5)
        window = SlidingWindow()
        window.observe(first, at_s=0.0)
        window.observe(other.snapshot(), at_s=1.0)
        with pytest.raises(ObsError, match="bounds changed"):
            window.delta()

    def test_rate_sums_prefix_families(self):
        window = SlidingWindow()
        reg = MetricsRegistry()
        reg.counter("serve.rejected.overloaded").inc(2)
        reg.counter("serve.rejected.deadline").inc(1)
        reg.counter("serve.rejections_total").inc(50)  # not the prefix
        window.observe({"counters": {}, "gauges": {}, "histograms": {}},
                       at_s=0.0)
        window.observe(reg.snapshot(), at_s=3.0)
        assert window.rate("serve.rejected") == pytest.approx(1.0)

    def test_quantile_of_absent_histogram_is_none(self):
        window = SlidingWindow()
        window.observe(_snapshot(1, []), at_s=0.0)
        assert window.quantile("no.such.histogram", 0.5) is None

    def test_health_indicators_shape(self):
        window = SlidingWindow()
        window.observe(_snapshot(0, []), at_s=0.0)
        window.observe(_snapshot(8, [0.005] * 8), at_s=4.0)
        indicators = health_indicators(window)
        assert indicators["request_rate_per_s"] == pytest.approx(2.0)
        assert indicators["rejection_rate_per_s"] == 0.0
        assert 0.001 < indicators["decision_latency_p50_s"] <= 0.01
        assert indicators["window_s"] == pytest.approx(4.0)


# ---------------------------------------------------------------------------
# SLOs
# ---------------------------------------------------------------------------


class TestSloSpec:
    def test_validation(self):
        with pytest.raises(ObsError, match="name"):
            SloSpec(name="")
        with pytest.raises(ObsError, match="kind"):
            SloSpec(name="x", kind="dance")
        with pytest.raises(ObsError, match="objective"):
            SloSpec(name="x", objective=1.0)
        with pytest.raises(ObsError, match="max_latency_s"):
            SloSpec(name="x", max_latency_s=0.0)

    def test_goodness_and_scope(self):
        spec = SloSpec(name="lat", kind="decision", objective=0.9,
                       max_latency_s=0.01)
        good = {"kind": "decision", "outcome": "ok", "latency_s": 0.005}
        slow = {"kind": "decision", "outcome": "ok", "latency_s": 0.5}
        rejected = {"kind": "decision", "outcome": "rejected:overloaded",
                    "latency_s": 0.0}
        other = {"kind": "job", "outcome": "ok", "latency_s": 0.0}
        assert spec.is_good(good)
        assert not spec.is_good(slow)
        assert not spec.is_good(rejected)
        assert spec.applies_to(good) and not spec.applies_to(other)
        assert SloSpec(name="any", kind="any").applies_to(other)

    def test_cached_counts_as_good(self):
        spec = SloSpec(name="jobs", kind="job", objective=0.9)
        assert spec.is_good({"kind": "job", "outcome": "cached",
                             "latency_s": 0.0})


class TestSloConfig:
    def test_committed_config_loads(self):
        slos = load_slo_config(SLO_CONFIG)
        assert [s.name for s in slos] == [
            "decision-availability", "decision-latency",
            "simulation-availability",
        ]

    def test_unknown_keys_rejected(self):
        with pytest.raises(ObsError, match="unknown"):
            slos_from_mapping({"slos": [{"name": "x", "burn": 2}]})
        with pytest.raises(ObsError, match="unknown SLO config keys"):
            slos_from_mapping({"slos": [], "extra": 1})

    def test_duplicate_names_rejected(self):
        with pytest.raises(ObsError, match="duplicate"):
            slos_from_mapping({"slos": [{"name": "x"}, {"name": "x"}]})

    def test_empty_list_rejected(self):
        with pytest.raises(ObsError, match="non-empty"):
            slos_from_mapping({"slos": []})

    def test_unreadable_file_raises(self, tmp_path):
        with pytest.raises(ObsError, match="cannot read"):
            load_slo_config(tmp_path / "absent.json")
        bad = tmp_path / "bad.json"
        bad.write_text("[1, 2]")
        with pytest.raises(ObsError, match="JSON object"):
            load_slo_config(bad)


class TestSloEvaluation:
    def _records(self, ok: int, bad: int, kind: str = "decision"):
        records = []
        for i in range(ok):
            records.append(ops_record(kind, "ok", 0.001, ts=float(i)))
        for i in range(bad):
            records.append(
                ops_record(kind, "rejected:overloaded", 0.0, ts=float(i))
            )
        return records

    def test_empty_slo_list_raises(self):
        with pytest.raises(ObsError, match="empty SLO list"):
            evaluate_slos([], slos=())

    def test_no_data_passes(self):
        report = evaluate_slos([], slos=DEFAULT_SLOS)
        assert report.ok
        assert all(v.status == "no-data" for v in report.verdicts)

    def test_burn_rate_arithmetic(self):
        # 1 bad of 20 with a 10% budget: burn = 0.05 / 0.1 = 0.5 -> ok.
        spec = SloSpec(name="x", objective=0.9)
        [verdict] = evaluate_slos(self._records(19, 1), slos=[spec]).verdicts
        assert verdict.burn_rate == pytest.approx(0.5)
        assert verdict.status == "ok"
        assert verdict.good_fraction == pytest.approx(0.95)

    def test_burn_above_one_fails(self):
        spec = SloSpec(name="x", objective=0.99)
        report = evaluate_slos(self._records(18, 2), slos=[spec])
        [verdict] = report.verdicts
        assert verdict.burn_rate == pytest.approx(10.0)
        assert verdict.status == "fail"
        assert not report.ok and report.failures == (verdict,)

    def test_fixture_verdicts_are_deterministic(self):
        records = read_ops_log(OPS_FIXTURE)
        assert evaluate_slos(records, DEFAULT_SLOS).ok
        report = evaluate_slos(records, load_slo_config(SLO_CONFIG))
        assert [v.status for v in report.verdicts] == ["ok", "ok", "fail"]
        assert report.failures[0].burn_rate == pytest.approx(10 / 3)


class TestSloGate:
    def test_renderers_cover_the_cli_formats(self):
        assert set(SLO_RENDERERS) == {"text", "json", "github"}

    def test_text_render(self):
        report = evaluate_slos(read_ops_log(OPS_FIXTURE),
                               load_slo_config(SLO_CONFIG))
        text = render_slo_text(report)
        assert "FAIL" in text and "simulation-availability" in text
        assert "3 SLO(s): 1 failing, 2 passing" in text

    def test_json_render_parses(self):
        report = evaluate_slos(read_ops_log(OPS_FIXTURE), DEFAULT_SLOS)
        payload = json.loads(render_slo_json(report))
        assert payload["ok"] is True
        assert len(payload["verdicts"]) == 2

    def test_github_render_annotations(self):
        failing = evaluate_slos(read_ops_log(OPS_FIXTURE),
                                load_slo_config(SLO_CONFIG))
        assert "::error title=SLO violation::" in render_slo_github(failing)
        passing = evaluate_slos(read_ops_log(OPS_FIXTURE), DEFAULT_SLOS)
        assert "::notice" in render_slo_github(passing)
        nodata = evaluate_slos([], DEFAULT_SLOS)
        assert "::warning title=SLO no-data::" in render_slo_github(nodata)

    def test_gate_exit_codes(self):
        failing = evaluate_slos(read_ops_log(OPS_FIXTURE),
                                load_slo_config(SLO_CONFIG))
        assert slo_gate(failing).exit_code == 1
        assert slo_gate(failing, warn_only=True).exit_code == 0
        passing = evaluate_slos(read_ops_log(OPS_FIXTURE), DEFAULT_SLOS)
        assert slo_gate(passing).exit_code == 0

    def test_gate_ops_log_one_call_form(self):
        assert gate_ops_log(OPS_FIXTURE).exit_code == 0
        result = gate_ops_log(OPS_FIXTURE, load_slo_config(SLO_CONFIG))
        assert result.exit_code == 1


# ---------------------------------------------------------------------------
# CLI: repro ops / repro slo gate / repro decide correlation
# ---------------------------------------------------------------------------


class TestOpsCli:
    def test_tail(self, capsys):
        rc = main(["ops", "tail", str(OPS_FIXTURE), "-n", "3"])
        assert rc == 0
        lines = capsys.readouterr().out.splitlines()
        assert len(lines) == 3
        assert json.loads(lines[-1])["kind"] == "stats"

    def test_summary_text_and_json(self, capsys):
        assert main(["ops", "summary", str(OPS_FIXTURE)]) == 0
        assert "15 record(s)" in capsys.readouterr().out
        assert main(
            ["ops", "summary", str(OPS_FIXTURE), "--format", "json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["total"] == 15

    def test_missing_log_is_a_cli_error(self, tmp_path, capsys):
        rc = main(["ops", "summary", str(tmp_path / "absent.jsonl")])
        assert rc == 1
        assert "error:" in capsys.readouterr().err


class TestSloCli:
    def test_default_slos_pass_on_fixture(self, capsys):
        rc = main(["slo", "gate", "--ops-log", str(OPS_FIXTURE)])
        assert rc == 0
        assert "2 SLO(s): 0 failing" in capsys.readouterr().out

    def test_config_violation_fails_deterministically(self, capsys):
        rc = main([
            "slo", "gate", "--ops-log", str(OPS_FIXTURE),
            "--config", str(SLO_CONFIG),
        ])
        assert rc == 1
        assert "simulation-availability" in capsys.readouterr().out

    def test_warn_only_reports_but_passes(self, capsys):
        rc = main([
            "slo", "gate", "--ops-log", str(OPS_FIXTURE),
            "--config", str(SLO_CONFIG), "--warn-only",
            "--format", "github",
        ])
        assert rc == 0
        captured = capsys.readouterr()
        assert "::error title=SLO violation::" in captured.out
        assert "warn-only" in captured.err


# ---------------------------------------------------------------------------
# The server under correlation: echo, OOB kinds, ops log
# ---------------------------------------------------------------------------


class TestServerCorrelation:
    def test_client_trace_id_echoed_verbatim(self, trained):
        server = make_server(trained, workers=1)
        request = DecisionRequest(
            observation=obs_for(server.chip), request_id="r1",
            trace_id="feedfacecafebeef",
        )
        [reply] = asyncio.run(serve_once(server, [request]))
        assert reply.trace_id == "feedfacecafebeef"

    def test_no_id_stamped_when_correlation_inactive(self, trained):
        # Disabled hub + no ops log: the shipping path must not invent
        # ids (zero-overhead contract).
        server = make_server(trained, workers=1)
        [reply] = asyncio.run(serve_once(
            server, [DecisionRequest(observation=obs_for(server.chip))]
        ))
        assert reply.trace_id == ""

    def test_ops_log_stamps_fresh_ids(self, trained, tmp_path):
        ops_log = OpsLogger(tmp_path / "ops.jsonl")
        server = make_server(trained, workers=1, ops_log=ops_log)
        replies = asyncio.run(serve_once(server, [
            DecisionRequest(observation=obs_for(server.chip),
                            request_id=f"r{i}")
            for i in range(3)
        ]))
        ids = [r.trace_id for r in replies]
        assert all(len(i) == 16 for i in ids)
        assert len(set(ids)) == 3

    def test_ops_log_records_outcomes(self, trained, tmp_path):
        ops_log = OpsLogger(tmp_path / "ops.jsonl")
        server = make_server(trained, workers=1, queue_size=1,
                             ops_log=ops_log)

        async def run():
            await server.start()
            futures = [
                server.submit(DecisionRequest(
                    observation=obs_for(server.chip), request_id=f"r{i}"
                ))
                for i in range(4)
            ]
            replies = [await f for f in futures]
            await server.shutdown()
            return replies

        asyncio.run(run())
        records = read_ops_log(ops_log.path)
        outcomes = [r["outcome"] for r in records]
        assert outcomes.count("ok") == server.stats.served_decisions
        assert (
            outcomes.count("rejected:overloaded")
            == server.stats.rejected_overloaded
        )
        assert all(r["kind"] == "decision" for r in records)
        assert all(r["trace_id"] for r in records)

    def test_health_and_stats_bypass_the_queue(self, trained):
        # queue_size=1 with a queue already full: health/stats answer
        # anyway because they never enter the queue.
        server = make_server(trained, workers=1, queue_size=1)

        async def run():
            await server.start()
            blocked = [
                server.submit(DecisionRequest(
                    observation=obs_for(server.chip), request_id=f"r{i}"
                ))
                for i in range(3)
            ]
            health = await server.submit(HealthRequest(request_id="h"))
            stats = await server.submit(StatsRequest(request_id="s"))
            for f in blocked:
                await f
            await server.shutdown()
            return health, stats

        health, stats = asyncio.run(run())
        assert isinstance(health, HealthReply)
        assert health.status == "ok" and health.workers == 1
        assert isinstance(stats, StatsReply)
        assert stats.stats["served_health"] == 1
        assert stats.stats["served_stats"] == 1
        assert server.stats.served_health == 1
        # OOB kinds never count as served queue traffic.
        assert server.stats.served == server.stats.served_decisions

    def test_health_answers_while_draining(self, trained):
        server = make_server(trained, workers=1)

        async def run():
            await server.start()
            await server.shutdown()
            return await server.submit(HealthRequest(request_id="h"))

        reply = asyncio.run(run())
        assert isinstance(reply, HealthReply)
        assert reply.status == "stopped"

    def test_health_indicators_appear_under_observability(self, trained):
        server = make_server(trained, workers=1)

        async def run():
            await server.start()
            await server.submit(HealthRequest())
            for i in range(4):
                await server.request(DecisionRequest(
                    observation=obs_for(server.chip, utilization=i / 4)
                ))
            reply = await server.submit(HealthRequest())
            await server.shutdown()
            return reply

        with obs.capture(trace=False):
            reply = asyncio.run(run())
        assert reply.indicators["decision_latency_p50_s"] is not None
        assert reply.indicators["request_rate_per_s"] > 0


# ---------------------------------------------------------------------------
# The acceptance criterion: one trace_id across the merged timeline
# ---------------------------------------------------------------------------


class TestEndToEndCorrelation:
    DECISION_ID = "feedfeedfeedfeed"
    SIM_ID = "cafecafecafecafe"

    def _events_with(self, merged: dict, trace_id: str) -> list[dict]:
        return [
            e for e in merged["traceEvents"]
            if e.get("args", {}).get("trace_id") == trace_id
        ]

    def test_one_trace_id_spans_client_to_reply(self, trained, tmp_path):
        from repro.fleet.spec import JobSpec

        ops_log = OpsLogger(tmp_path / "ops.jsonl")
        server = make_server(trained, workers=1, ops_log=ops_log)
        spec = JobSpec(
            scenario="idle", governor="powersave", chip="tiny",
            duration_s=1.0, seed=5, trace_dir=str(tmp_path / "jobs"),
        )
        requests = [
            DecisionRequest(
                observation=obs_for(server.chip), request_id="d1",
                trace_id=self.DECISION_ID,
            ),
            SimulationRequest(
                spec=spec, request_id="s1", trace_id=self.SIM_ID
            ),
        ]
        with obs.capture() as session:
            replies = asyncio.run(serve_once(server, requests))

        assert replies[0].trace_id == self.DECISION_ID
        assert replies[1].trace_id == self.SIM_ID

        # Stitch the server-side trace and the fleet worker's
        # flight-recorder trace onto one clock.
        from repro.obs import merge_trace_files

        serve_trace = tmp_path / "serve.json"
        write_chrome_trace(
            serve_trace, session.tracer, session.metrics,
            process_name="serve", pid=1,
            epoch_us=session.tracer.epoch_s * 1e6,
        )
        job_traces = sorted((tmp_path / "jobs").glob("*.json"))
        assert len(job_traces) == 1
        merged = merge_trace_files([serve_trace, *job_traces])

        # The decision's id follows client -> queue -> session -> reply.
        decision_names = {
            e["name"] for e in self._events_with(merged, self.DECISION_ID)
        }
        assert {"serve.request.queued", "serve.session.decide",
                "serve.request.replied"} <= decision_names

        # The simulation's id additionally crosses into the fleet
        # worker and the engine: client -> queue -> worker -> engine ->
        # reply, one id across both trace files.
        sim_names = {
            e["name"] for e in self._events_with(merged, self.SIM_ID)
        }
        assert {"serve.request.queued", "serve.request.dequeued",
                "fleet.job", "engine.run",
                "serve.request.replied"} <= sim_names

        # And the same ids land in the ops log, one record per request.
        records = read_ops_log(ops_log.path)
        by_id = {r["trace_id"]: r for r in records}
        assert by_id[self.DECISION_ID]["kind"] == "decision"
        assert by_id[self.DECISION_ID]["outcome"] == "ok"
        assert by_id[self.SIM_ID]["kind"] == "simulation"
        assert by_id[self.SIM_ID]["outcome"] == "ok"

    def test_fleet_jobs_inherit_spec_trace_context(self, tmp_path):
        # The explicit hand-off: a JobSpec carrying a trace_context
        # re-binds it inside execute_job even though contextvars never
        # cross the executor boundary.
        from repro.fleet.spec import JobSpec
        from repro.fleet.worker import execute_job

        spec = JobSpec(
            scenario="idle", governor="powersave", chip="tiny",
            duration_s=1.0, seed=5, trace_dir=str(tmp_path),
            trace_context=TraceContext(trace_id="beefbeefbeefbeef"),
        )
        measurement = execute_job(spec)
        trace = json.loads(Path(measurement.trace_path).read_text())
        tagged = [
            e for e in trace["traceEvents"]
            if e.get("args", {}).get("trace_id") == "beefbeefbeefbeef"
        ]
        assert {"fleet.job", "engine.run"} <= {e["name"] for e in tagged}

    def test_run_fleet_logs_one_record_per_job(self, tmp_path):
        from repro.fleet import FleetSpec, run_fleet

        ops_log = OpsLogger(tmp_path / "fleet-ops.jsonl")
        spec = FleetSpec(
            scenarios=("idle",), governors=("performance", "powersave"),
            seeds=(100,), chips=("tiny",), duration_s=1.0,
        )
        result = run_fleet(spec, jobs=1, ops_log=ops_log)
        assert len(result.successes) == 2
        records = read_ops_log(ops_log.path)
        assert len(records) == 2
        assert all(r["kind"] == "job" and r["outcome"] == "ok"
                   for r in records)
        assert sorted(r["job_id"] for r in records) == sorted(
            s.job_id for s in result.successes
        )

    def test_trace_context_never_touches_cache_identity(self):
        from repro.fleet.spec import JobSpec

        plain = JobSpec(scenario="idle", governor="powersave", chip="tiny",
                        duration_s=1.0, seed=5)
        traced = JobSpec(scenario="idle", governor="powersave", chip="tiny",
                         duration_s=1.0, seed=5,
                         trace_context=TraceContext(trace_id="abcd"))
        assert plain.to_mapping() == traced.to_mapping()
        round_tripped = JobSpec.from_mapping({
            **traced.to_mapping(),
            "trace_context": {"trace_id": "abcd"},
        })
        assert round_tripped.trace_context == traced.trace_context
