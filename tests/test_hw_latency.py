"""Pipeline, interface, and latency models — including the paper's bands."""

import pytest

from repro.errors import HardwareModelError
from repro.hw.interface import CpuHwInterface, InterfaceSpec
from repro.hw.latency import (
    HardwareLatencyModel,
    SoftwareLatencyModel,
    compare_latency,
)
from repro.hw.pipeline import AcceleratorPipeline, PipelineSpec


class TestPipeline:
    def test_compare_tree_depth(self):
        assert AcceleratorPipeline(n_actions=5).compare_cycles == 3
        assert AcceleratorPipeline(n_actions=2).compare_cycles == 1
        assert AcceleratorPipeline(n_actions=1).compare_cycles == 1
        assert AcceleratorPipeline(n_actions=8).compare_cycles == 3
        assert AcceleratorPipeline(n_actions=9).compare_cycles == 4

    def test_decision_cycles(self):
        pipe = AcceleratorPipeline(PipelineSpec(), n_actions=5)
        assert pipe.decision_cycles() == 1 + 2 + 3

    def test_update_cycles(self):
        pipe = AcceleratorPipeline(PipelineSpec(), n_actions=5)
        assert pipe.update_cycles() == 2 + 3 + 1 + 1 + 1

    def test_step_latency(self):
        pipe = AcceleratorPipeline(PipelineSpec(clock_hz=100e6), n_actions=5)
        assert pipe.decision_latency_s() == pytest.approx(14 / 100e6)

    def test_process_accumulates(self):
        pipe = AcceleratorPipeline(n_actions=5)
        pipe.process()
        pipe.process(with_update=False)
        assert pipe.decisions == 2
        assert pipe.total_cycles == 14 + 6

    def test_validation(self):
        with pytest.raises(HardwareModelError):
            PipelineSpec(clock_hz=0.0)
        with pytest.raises(HardwareModelError):
            PipelineSpec(bram_read_cycles=0)
        with pytest.raises(HardwareModelError):
            AcceleratorPipeline(n_actions=0)


class TestInterface:
    def test_round_trip_single(self):
        iface = CpuHwInterface(InterfaceSpec(bus_hz=100e6, sync_cycles=2))
        # submit: 2 + 2*3 = 8; read: 2 + 1*5 = 7 -> 15 cycles.
        assert iface.round_trip_s(1) == pytest.approx(15 / 100e6)
        assert iface.transactions == 2

    def test_batching_amortises(self):
        iface = CpuHwInterface(InterfaceSpec(sync_cycles=2))
        single = iface.round_trip_s(1)
        batched = CpuHwInterface(InterfaceSpec(sync_cycles=2)).round_trip_s(4)
        assert batched < 4 * single

    def test_validation(self):
        with pytest.raises(HardwareModelError):
            InterfaceSpec(bus_hz=0)
        with pytest.raises(HardwareModelError):
            CpuHwInterface().round_trip_s(0)


class TestSoftwareLatency:
    def test_scales_inverse_with_clock(self):
        model = SoftwareLatencyModel(cache_misses_warm=0, dram_latency_s=0.0)
        slow = model.decision_latency_s(2e8)
        fast = model.decision_latency_s(2e9)
        assert slow / fast == pytest.approx(10.0)

    def test_dram_component_does_not_scale(self):
        model = SoftwareLatencyModel()
        fixed = model.cache_misses_warm * model.dram_latency_s
        assert model.decision_latency_s(1e12) == pytest.approx(fixed, rel=0.05)

    def test_cold_is_slower(self):
        model = SoftwareLatencyModel()
        assert model.decision_latency_s(1e9, cold=True) > model.decision_latency_s(1e9)

    def test_validation(self):
        with pytest.raises(HardwareModelError):
            SoftwareLatencyModel(ipc=0.0)
        with pytest.raises(HardwareModelError):
            SoftwareLatencyModel(cold_factor=0.5)
        with pytest.raises(HardwareModelError):
            SoftwareLatencyModel().decision_latency_s(0.0)


class TestPaperBands:
    """The E4 claims: ~3.92x at the typical operating point, tens of x in
    the best case (batched decisions vs. a slow cold CPU)."""

    def test_typical_speedup_near_3_92(self):
        cmp = compare_latency(cpu_freq_hz=1.4e9)
        assert cmp.speedup == pytest.approx(3.92, rel=0.05)

    def test_speedup_grows_as_cpu_slows(self):
        fast = compare_latency(cpu_freq_hz=2.0e9)
        slow = compare_latency(cpu_freq_hz=0.2e9)
        assert slow.speedup > fast.speedup > 1.0

    def test_best_case_is_tens_of_x(self):
        cmp = compare_latency(cpu_freq_hz=0.2e9, cold=True, n_clusters=2)
        assert 25.0 < cmp.speedup < 60.0

    def test_hardware_latency_sub_microsecond(self):
        hw = HardwareLatencyModel()
        assert hw.decision_latency_s(1) < 1e-6

    def test_per_decision_batching_monotone(self):
        hw = HardwareLatencyModel()
        per1 = hw.per_decision_latency_s(1)
        per2 = hw.per_decision_latency_s(2)
        per4 = hw.per_decision_latency_s(4)
        assert per1 > per2 > per4

    def test_comparison_label(self):
        cmp = compare_latency(cpu_freq_hz=1e9, cold=True)
        assert "cold" in cmp.label
