"""The policy-decision service: protocol, sessions, server, CLI."""

from __future__ import annotations

import asyncio
import json
from typing import Any

import pytest

from repro.cli import main
from repro.core.checkpoint import load_policies, save_policies
from repro.core.trainer import train_policy
from repro.errors import PolicyError, ServeError, ServeOverloaded
from repro.fleet.spec import JobSpec
from repro.serve import (
    REJECT_DEADLINE,
    REJECT_ERROR,
    REJECT_OVERLOADED,
    REJECT_SHUTDOWN,
    DecisionReply,
    DecisionRequest,
    InProcessQueue,
    PolicyServer,
    QueueBackend,
    Rejection,
    ServeConfig,
    SimulationReply,
    SimulationRequest,
    observation_from_mapping,
    reply_to_mapping,
    request_from_mapping,
    serve_once,
)
from repro.soc.presets import tiny_test_chip
from test_trainer import tiny_scenario


@pytest.fixture(scope="module")
def trained():
    chip = tiny_test_chip()
    result = train_policy(
        chip, tiny_scenario(), episodes=3, episode_duration_s=3.0
    )
    return chip, result.policies


@pytest.fixture(scope="module")
def checkpoint(trained, tmp_path_factory):
    _, policies = trained
    directory = tmp_path_factory.mktemp("serve-ckpt")
    save_policies(policies, directory)
    return directory


def make_server(trained, **config: Any) -> PolicyServer:
    chip, policies = trained
    return PolicyServer(policies, tiny_test_chip(), ServeConfig(**config))


def obs_for(chip, **fields: Any):
    payload = {"cluster": chip.cluster_names[0], **fields}
    return observation_from_mapping(payload, chip)


def sim_spec(**overrides: Any) -> JobSpec:
    base: dict[str, Any] = {
        "scenario": "gaming",
        "governor": "ondemand",
        "chip": "tiny",
        "duration_s": 2.0,
        "seed": 7,
    }
    base.update(overrides)
    return JobSpec(**base)


# ---------------------------------------------------------------------------
# Protocol
# ---------------------------------------------------------------------------


class TestProtocol:
    def test_observation_defaults_from_chip(self):
        chip = tiny_test_chip()
        obs = observation_from_mapping(
            {"cluster": chip.cluster_names[0], "utilization": 0.5}, chip
        )
        assert obs.utilization == 0.5
        assert obs.n_opps == len(chip.cluster(obs.cluster).spec.opp_table)

    def test_observation_unknown_field_rejected(self):
        chip = tiny_test_chip()
        with pytest.raises(ServeError, match="unknown observation fields"):
            observation_from_mapping(
                {"cluster": chip.cluster_names[0], "bogus": 1}, chip
            )

    def test_observation_unknown_cluster_rejected(self):
        with pytest.raises(ServeError, match="unknown cluster"):
            observation_from_mapping({"cluster": "nope"}, tiny_test_chip())

    def test_observation_without_chip_requires_all_fields(self):
        with pytest.raises(ServeError, match="missing fields"):
            observation_from_mapping({"cluster": "cpu", "utilization": 0.5})

    def test_request_kind_routing(self):
        chip = tiny_test_chip()
        decision = request_from_mapping(
            {"observation": {"cluster": chip.cluster_names[0]}}, chip
        )
        assert isinstance(decision, DecisionRequest)
        simulate = request_from_mapping(
            {"kind": "simulate",
             "spec": {"scenario": "gaming", "governor": "ondemand"}},
        )
        assert isinstance(simulate, SimulationRequest)

    def test_request_unknown_kind_rejected(self):
        with pytest.raises(ServeError, match="unknown request kind"):
            request_from_mapping({"kind": "dance"})

    def test_request_bad_deadline_rejected(self):
        chip = tiny_test_chip()
        with pytest.raises(ServeError, match="deadline"):
            request_from_mapping(
                {"observation": {"cluster": chip.cluster_names[0]},
                 "deadline_s": -1},
                chip,
            )

    def test_reply_mappings_are_json_round_trippable(self):
        replies = [
            DecisionReply("r1", "cpu", 2, 1e-4),
            Rejection("r2", REJECT_OVERLOADED, "full"),
        ]
        for reply in replies:
            data = json.loads(json.dumps(reply_to_mapping(reply)))
            assert data["request_id"] == reply.request_id
            assert data["kind"] in ("decision", "simulation", "rejection")


# ---------------------------------------------------------------------------
# Queue backend
# ---------------------------------------------------------------------------


class RecordingQueue:
    """A delegating backend proving the server sticks to the protocol."""

    def __init__(self, maxsize: int) -> None:
        self.inner = InProcessQueue(maxsize)
        self.puts = 0
        self.gets = 0

    def put_nowait(self, item: Any) -> None:
        self.inner.put_nowait(item)
        self.puts += 1

    async def get(self) -> Any:
        item = await self.inner.get()
        self.gets += 1
        return item

    def task_done(self) -> None:
        self.inner.task_done()

    async def join(self) -> None:
        await self.inner.join()

    def depth(self) -> int:
        return self.inner.depth()


class TestQueueBackend:
    def test_in_process_queue_satisfies_protocol(self):
        assert isinstance(InProcessQueue(4), QueueBackend)

    def test_full_queue_raises_overloaded(self):
        q = InProcessQueue(1)
        q.put_nowait("a")
        with pytest.raises(ServeOverloaded, match="queue full"):
            q.put_nowait("b")

    def test_non_positive_bound_rejected(self):
        with pytest.raises(ServeError):
            InProcessQueue(0)

    def test_custom_backend_slots_in(self, trained):
        chip, policies = trained
        queue = RecordingQueue(8)
        server = PolicyServer(
            policies, tiny_test_chip(), ServeConfig(workers=1), queue=queue
        )
        request = DecisionRequest(observation=obs_for(server.chip))
        replies = asyncio.run(serve_once(server, [request]))
        assert isinstance(replies[0], DecisionReply)
        assert queue.puts == 1 and queue.gets == 1


# ---------------------------------------------------------------------------
# Server integration
# ---------------------------------------------------------------------------


class TestServer:
    def test_serves_decision_requests(self, trained):
        server = make_server(trained, workers=2)
        requests = [
            DecisionRequest(observation=obs_for(server.chip), request_id=f"r{i}")
            for i in range(6)
        ]
        replies = asyncio.run(serve_once(server, requests))
        assert [r.request_id for r in replies] == [f"r{i}" for i in range(6)]
        assert all(isinstance(r, DecisionReply) for r in replies)
        assert all(r.latency_s >= 0 for r in replies)
        assert server.stats.served_decisions == 6

    def test_concurrent_decisions_and_simulations(self, trained):
        server = make_server(trained, workers=2, queue_size=32)
        requests: list[Any] = [
            SimulationRequest(spec=sim_spec(), request_id="sim"),
        ]
        requests += [
            DecisionRequest(
                observation=obs_for(server.chip, utilization=i / 10),
                request_id=f"d{i}",
            )
            for i in range(8)
        ]
        replies = asyncio.run(serve_once(server, requests))
        sim_reply = replies[0]
        assert isinstance(sim_reply, SimulationReply)
        assert sim_reply.energy_j > 0
        assert sim_reply.job_id == sim_spec().job_id
        assert all(isinstance(r, DecisionReply) for r in replies[1:])
        assert server.stats.served == 9

    def test_simulation_matches_fleet_worker(self, trained):
        from repro.fleet.worker import simulate_spec

        server = make_server(trained, workers=1)
        spec = sim_spec()
        [reply] = asyncio.run(
            serve_once(server, [SimulationRequest(spec=spec)])
        )
        offline = simulate_spec(spec)
        assert reply.energy_j == offline.total_energy_j
        assert reply.mean_qos == offline.qos.mean_qos

    def test_backpressure_rejects_when_queue_full(self, trained):
        server = make_server(trained, workers=1, queue_size=2)

        async def run():
            await server.start()
            # Submit without yielding: the workers have not run yet, so
            # the queue fills deterministically and the overflow rejects.
            futures = [
                server.submit(
                    DecisionRequest(
                        observation=obs_for(server.chip), request_id=f"r{i}"
                    )
                )
                for i in range(5)
            ]
            replies = [await f for f in futures]
            await server.shutdown()
            return replies

        replies = asyncio.run(run())
        served = [r for r in replies if isinstance(r, DecisionReply)]
        rejected = [r for r in replies if isinstance(r, Rejection)]
        assert len(served) == 2 and len(rejected) == 3
        assert all(r.reason == REJECT_OVERLOADED for r in rejected)
        assert all("queue full" in r.detail for r in rejected)
        assert server.stats.rejected_overloaded == 3

    def test_deadline_expired_while_queued_rejected(self, trained):
        server = make_server(trained, workers=1)

        async def run():
            await server.start()
            future = server.submit(
                DecisionRequest(
                    observation=obs_for(server.chip), deadline_s=1e-9
                )
            )
            reply = await future
            await server.shutdown()
            return reply

        reply = asyncio.run(run())
        assert isinstance(reply, Rejection)
        assert reply.reason == REJECT_DEADLINE
        assert server.stats.rejected_deadline == 1

    def test_default_deadline_from_config(self, trained):
        server = make_server(trained, workers=1, default_deadline_s=1e-9)
        [reply] = asyncio.run(
            serve_once(
                server, [DecisionRequest(observation=obs_for(server.chip))]
            )
        )
        assert isinstance(reply, Rejection)
        assert reply.reason == REJECT_DEADLINE

    def test_graceful_shutdown_drains_queued_work(self, trained):
        server = make_server(trained, workers=1, queue_size=16)

        async def run():
            await server.start()
            futures = [
                server.submit(
                    DecisionRequest(
                        observation=obs_for(server.chip), request_id=f"r{i}"
                    )
                )
                for i in range(8)
            ]
            # Shut down immediately: drain must finish the queued work.
            await server.shutdown(drain=True)
            return [await f for f in futures]

        replies = asyncio.run(run())
        assert all(isinstance(r, DecisionReply) for r in replies)
        assert server.stats.served_decisions == 8

    def test_shutdown_without_drain_rejects_queued_work(self, trained):
        server = make_server(trained, workers=1, queue_size=16)

        async def run():
            await server.start()
            futures = [
                server.submit(
                    DecisionRequest(observation=obs_for(server.chip))
                )
                for i in range(4)
            ]
            await server.shutdown(drain=False)
            return [await f for f in futures]

        replies = asyncio.run(run())
        assert all(isinstance(r, Rejection) for r in replies)
        assert all(r.reason == REJECT_SHUTDOWN for r in replies)

    def test_submit_after_shutdown_rejected(self, trained):
        server = make_server(trained, workers=1)

        async def run():
            await server.start()
            await server.shutdown()
            return await server.submit(
                DecisionRequest(observation=obs_for(server.chip))
            )

        reply = asyncio.run(run())
        assert isinstance(reply, Rejection)
        assert reply.reason == REJECT_SHUTDOWN

    def test_handler_error_becomes_error_rejection(self, trained):
        from repro.sim.telemetry import initial_observation

        server = make_server(trained, workers=1)
        rogue = initial_observation("nope", 0, 4, 1e8, 1e9, 0.01)
        [reply] = asyncio.run(
            serve_once(server, [DecisionRequest(observation=rogue)])
        )
        assert isinstance(reply, Rejection)
        assert reply.reason == REJECT_ERROR
        assert "no policy for cluster" in reply.detail

    def test_missing_cluster_policy_rejected_at_boot(self, trained):
        _, policies = trained
        with pytest.raises(ServeError, match="lacks policies"):
            PolicyServer({}, tiny_test_chip())

    def test_decision_metrics_recorded(self, trained):
        from repro import obs

        server = make_server(trained, workers=1)
        requests = [
            DecisionRequest(observation=obs_for(server.chip))
            for _ in range(4)
        ]
        with obs.capture(trace=False) as session:
            asyncio.run(serve_once(server, requests))
        snap = session.metrics.snapshot()
        hist = snap["histograms"]["serve.decision_latency_s"]
        assert hist["count"] == 4
        assert snap["counters"]["serve.requests"] == 4


# ---------------------------------------------------------------------------
# Bit-identity with the offline policy
# ---------------------------------------------------------------------------


class TestOfflineEquivalence:
    def observations(self, chip):
        utils = [0.1, 0.9, 0.4, 0.7, 0.2, 1.0, 0.6, 0.3, 0.8, 0.5]
        return [
            obs_for(chip, utilization=u, max_core_utilization=u,
                    qos_slack=0.5 - u / 2)
            for u in utils
        ]

    def test_served_decisions_match_offline_policy(self, checkpoint, trained):
        chip = tiny_test_chip()
        name = chip.cluster_names[0]

        offline = load_policies(checkpoint, chip=chip)[name]
        offline.reset(chip.cluster(name))
        expected = [offline.decide(o) for o in self.observations(chip)]

        server = PolicyServer.from_checkpoint(
            checkpoint, chip=tiny_test_chip(), config=ServeConfig(workers=1)
        )
        requests = [
            DecisionRequest(observation=o)
            for o in self.observations(tiny_test_chip())
        ]
        replies = asyncio.run(serve_once(server, requests))
        assert [r.opp_index for r in replies] == expected

    def test_sessions_are_isolated(self, trained):
        server = make_server(trained, workers=1)
        chip = server.chip
        seq = self.observations(chip)
        # Interleave two sessions fed the same sequence: isolation means
        # both decide exactly as a lone session would.
        requests = []
        for o in seq:
            requests.append(DecisionRequest(observation=o, session="a"))
            requests.append(DecisionRequest(observation=o, session="b"))
        replies = asyncio.run(serve_once(server, requests))
        a = [r.opp_index for r in replies[0::2]]
        b = [r.opp_index for r in replies[1::2]]

        lone = make_server(trained, workers=1)
        lone_replies = asyncio.run(
            serve_once(lone, [DecisionRequest(observation=o) for o in seq])
        )
        expected = [r.opp_index for r in lone_replies]
        assert a == expected and b == expected

    def test_serving_does_not_mutate_the_snapshot(self, trained):
        chip, policies = trained
        name = tiny_test_chip().cluster_names[0]
        before = policies[name].agent.table.values.copy()
        server = make_server(trained, workers=1)
        asyncio.run(
            serve_once(
                server,
                [DecisionRequest(observation=o)
                 for o in self.observations(server.chip)],
            )
        )
        assert (policies[name].agent.table.values == before).all()


# ---------------------------------------------------------------------------
# Checkpoint engine-version gate
# ---------------------------------------------------------------------------


class TestEngineVersionGate:
    def test_manifest_stamps_engine_version(self, checkpoint):
        from repro.sim.engine import ENGINE_VERSION

        manifest = json.loads((checkpoint / "policy.json").read_text())
        assert manifest["version"] == 2
        assert manifest["engine_version"] == ENGINE_VERSION

    def test_stale_engine_version_refused(self, trained, tmp_path):
        _, policies = trained
        save_policies(policies, tmp_path)
        manifest = json.loads((tmp_path / "policy.json").read_text())
        manifest["engine_version"] = "0.1"
        (tmp_path / "policy.json").write_text(json.dumps(manifest))
        with pytest.raises(PolicyError, match="engine version '0.1'"):
            load_policies(tmp_path)
        with pytest.raises(PolicyError, match="retrain"):
            PolicyServer.from_checkpoint(tmp_path, chip=tiny_test_chip())

    def test_format_1_checkpoints_still_load(self, trained, tmp_path):
        _, policies = trained
        save_policies(policies, tmp_path)
        manifest = json.loads((tmp_path / "policy.json").read_text())
        manifest["version"] = 1
        del manifest["engine_version"]
        (tmp_path / "policy.json").write_text(json.dumps(manifest))
        loaded = load_policies(tmp_path, chip=tiny_test_chip())
        assert set(loaded) == set(policies)

    def test_unknown_chip_preset_rejected(self, checkpoint):
        with pytest.raises(ServeError, match="unknown chip preset"):
            PolicyServer.from_checkpoint(checkpoint, chip="snapdragon")


# ---------------------------------------------------------------------------
# CLI: repro serve / repro decide
# ---------------------------------------------------------------------------


class TestServeCli:
    def write_requests(self, path, chip):
        lines = [
            {"kind": "decision", "request_id": f"d{i}",
             "observation": {"cluster": chip.cluster_names[0],
                             "utilization": i / 4}}
            for i in range(4)
        ]
        path.write_text("".join(json.dumps(line) + "\n" for line in lines))
        return path

    def test_serve_answers_jsonl_requests(self, checkpoint, tmp_path, capsys):
        requests = self.write_requests(
            tmp_path / "requests.jsonl", tiny_test_chip()
        )
        rc = main([
            "serve", "--checkpoint", str(checkpoint), "--chip", "tiny",
            "--requests", str(requests),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        replies = [json.loads(line) for line in out.splitlines() if line]
        assert len(replies) == 4
        assert {r["kind"] for r in replies} == {"decision"}
        assert sorted(r["request_id"] for r in replies) == (
            ["d0", "d1", "d2", "d3"]
        )

    def test_serve_malformed_line_answered_with_rejection(
        self, checkpoint, tmp_path, capsys
    ):
        requests = tmp_path / "requests.jsonl"
        requests.write_text('{"kind": "dance", "request_id": "x"}\nnot json\n')
        rc = main([
            "serve", "--checkpoint", str(checkpoint), "--chip", "tiny",
            "--requests", str(requests),
        ])
        assert rc == 0
        replies = [
            json.loads(line)
            for line in capsys.readouterr().out.splitlines() if line
        ]
        assert len(replies) == 2
        assert all(r["kind"] == "rejection" for r in replies)
        assert replies[0]["request_id"] == "x"

    def test_serve_survives_bad_simulate_spec(
        self, checkpoint, tmp_path, capsys
    ):
        # A bad JobSpec raises ReproError (not ServeError) during
        # parsing; it must answer as a rejection, not kill the daemon.
        requests = tmp_path / "requests.jsonl"
        requests.write_text(
            json.dumps({
                "kind": "simulate", "request_id": "s-bad",
                "spec": {"job_id": "nope", "scenario": "idle",
                         "governor": "ondemand"},
            }) + "\n"
            + json.dumps({
                "kind": "decision", "request_id": "d-after",
                "observation": {"cluster": tiny_test_chip().cluster_names[0],
                                "utilization": 0.5},
            }) + "\n"
        )
        rc = main([
            "serve", "--checkpoint", str(checkpoint), "--chip", "tiny",
            "--requests", str(requests),
        ])
        assert rc == 0
        replies = {
            r["request_id"]: r
            for r in (json.loads(line)
                      for line in capsys.readouterr().out.splitlines() if line)
        }
        assert replies["s-bad"]["kind"] == "rejection"
        assert "unknown job spec keys" in replies["s-bad"]["detail"]
        assert replies["d-after"]["kind"] == "decision"

    def test_serve_writes_metrics_and_ledger(
        self, checkpoint, tmp_path, capsys
    ):
        requests = self.write_requests(
            tmp_path / "requests.jsonl", tiny_test_chip()
        )
        metrics = tmp_path / "metrics.prom"
        ledger = tmp_path / "ledger.jsonl"
        rc = main([
            "serve", "--checkpoint", str(checkpoint), "--chip", "tiny",
            "--requests", str(requests),
            "--metrics", str(metrics), "--ledger", str(ledger),
        ])
        assert rc == 0
        assert "repro_serve_decision_latency_s" in metrics.read_text()
        record = json.loads(ledger.read_text().splitlines()[0])
        assert record["kind"] == "serve"
        assert "serve.decision_latency_s.p99" in record["metrics"]

    def test_decide_one_shot(self, checkpoint, capsys):
        chip = tiny_test_chip()
        rc = main([
            "decide", "--checkpoint", str(checkpoint), "--chip", "tiny",
            "--observation",
            json.dumps({"cluster": chip.cluster_names[0],
                        "utilization": 0.8}),
        ])
        assert rc == 0
        reply = json.loads(capsys.readouterr().out.splitlines()[0])
        assert reply["kind"] == "decision"
        assert isinstance(reply["opp_index"], int)

    def test_decide_prints_correlation_ids(self, checkpoint, capsys):
        chip = tiny_test_chip()
        rc = main([
            "decide", "--checkpoint", str(checkpoint), "--chip", "tiny",
            "--observation",
            json.dumps({"cluster": chip.cluster_names[0],
                        "utilization": 0.4}),
        ])
        assert rc == 0
        captured = capsys.readouterr()
        reply = json.loads(captured.out.splitlines()[0])
        # The reply always carries a client-stamped trace id...
        assert len(reply["trace_id"]) == 16
        # ...and stderr names it so the run joins against server logs.
        assert f"trace_id={reply['trace_id']}" in captured.err

    def test_decide_echoes_supplied_trace_id(
        self, checkpoint, tmp_path, capsys
    ):
        chip = tiny_test_chip()
        requests = tmp_path / "requests.jsonl"
        requests.write_text(json.dumps({
            "kind": "decision", "request_id": "r1",
            "trace_id": "feedfacecafebeef",
            "observation": {"cluster": chip.cluster_names[0],
                            "utilization": 0.5},
        }) + "\n")
        rc = main([
            "decide", "--checkpoint", str(checkpoint), "--chip", "tiny",
            "--requests", str(requests),
        ])
        assert rc == 0
        reply = json.loads(capsys.readouterr().out.splitlines()[0])
        assert reply["trace_id"] == "feedfacecafebeef"

    def test_serve_writes_ops_log(self, checkpoint, tmp_path, capsys):
        requests = self.write_requests(
            tmp_path / "requests.jsonl", tiny_test_chip()
        )
        ops_log = tmp_path / "ops.jsonl"
        rc = main([
            "serve", "--checkpoint", str(checkpoint), "--chip", "tiny",
            "--requests", str(requests), "--ops-log", str(ops_log),
        ])
        assert rc == 0
        assert "ops log: 4 record(s)" in capsys.readouterr().err
        records = [
            json.loads(line) for line in ops_log.read_text().splitlines()
        ]
        assert len(records) == 4
        assert all(r["outcome"] == "ok" for r in records)
        assert all(r["trace_id"] for r in records)

    def test_decide_requires_input(self, checkpoint, capsys):
        rc = main([
            "decide", "--checkpoint", str(checkpoint), "--chip", "tiny",
        ])
        assert rc == 1
        assert "nothing to decide" in capsys.readouterr().err

    def test_serve_stale_checkpoint_fails_clearly(
        self, trained, tmp_path, capsys
    ):
        _, policies = trained
        save_policies(policies, tmp_path)
        manifest = json.loads((tmp_path / "policy.json").read_text())
        manifest["engine_version"] = "0.1"
        (tmp_path / "policy.json").write_text(json.dumps(manifest))
        rc = main([
            "serve", "--checkpoint", str(tmp_path), "--chip", "tiny",
            "--requests", "/dev/null",
        ])
        assert rc == 1
        assert "engine version" in capsys.readouterr().err
