"""Task placement: HMP deadline-aware assignment."""

import pytest

from repro.errors import ConfigurationError
from repro.sim.scheduler import HMPScheduler, PinnedScheduler

from conftest import unit


class TestHMPScheduler:
    def test_light_work_goes_little(self, duo_chip):
        # 1e6 cycles due in 100 ms: trivially fits the LITTLE cluster.
        sched = HMPScheduler()
        u = unit(work=1e6, deadline=0.1)
        assert sched.assign(u, duo_chip, {}, now_s=0.0) == "little"

    def test_heavy_single_thread_goes_big(self, duo_chip):
        # LITTLE peak 1-thread rate = 1.2e9 * 0.8 margin; 3e7 cycles due in
        # 16 ms needs 1.875e9/s -> must go big.
        sched = HMPScheduler()
        u = unit(work=3e7, deadline=0.016)
        assert sched.assign(u, duo_chip, {}, now_s=0.0) == "big"

    def test_backlog_pushes_work_up(self, duo_chip):
        sched = HMPScheduler()
        u = unit(work=1e7, deadline=0.02)
        # Without backlog LITTLE would do: 1e7/(1.2e9*0.8) = 10.4 ms < 20 ms.
        assert sched.assign(u, duo_chip, {"little": 0.0}, 0.0) == "little"
        # A large LITTLE backlog makes the deadline impossible there.
        assert sched.assign(u, duo_chip, {"little": 5e8}, 0.0) == "big"

    def test_impossible_deadline_falls_to_biggest(self, duo_chip):
        sched = HMPScheduler()
        u = unit(work=1e9, deadline=0.001)
        assert sched.assign(u, duo_chip, {}, 0.0) == "big"

    def test_past_deadline_still_assigns(self, duo_chip):
        sched = HMPScheduler()
        u = unit(work=1e6, deadline=0.1)
        assert sched.assign(u, duo_chip, {}, now_s=5.0) == "big"

    def test_single_cluster_chip_takes_everything(self, tiny_chip):
        sched = HMPScheduler()
        u = unit(work=1e6, deadline=0.1)
        assert sched.assign(u, tiny_chip, {}, 0.0) == "cpu"

    def test_margin_validation(self):
        with pytest.raises(ConfigurationError):
            HMPScheduler(margin=0.0)
        with pytest.raises(ConfigurationError):
            HMPScheduler(margin=1.5)

    def test_parallel_unit_uses_more_cores(self, duo_chip):
        """A 2-thread unit can stay on LITTLE where the 1-thread version
        would have to migrate to big."""
        sched = HMPScheduler()
        serial = unit(work=2.2e7, deadline=0.016, parallelism=1)
        parallel = unit(uid=1, work=2.2e7, deadline=0.016, parallelism=2)
        assert sched.assign(serial, duo_chip, {}, 0.0) == "big"
        assert sched.assign(parallel, duo_chip, {}, 0.0) == "little"


class TestPinnedScheduler:
    def test_pins(self, duo_chip):
        sched = PinnedScheduler("big")
        assert sched.assign(unit(), duo_chip, {}, 0.0) == "big"

    def test_unknown_cluster_rejected(self, duo_chip):
        sched = PinnedScheduler("gpu")
        with pytest.raises(ConfigurationError):
            sched.assign(unit(), duo_chip, {}, 0.0)
