"""The scenario-aware 'just enough' governor (companion-paper baseline)."""

import pytest

from repro.errors import GovernorError
from repro.governors import create
from repro.governors.scenario_aware import ScenarioAwareGovernor
from repro.sim.engine import Simulator
from repro.sim.telemetry import initial_observation
from repro.workload.trace import Trace

from conftest import unit
from test_governors import make_cluster


def obs_with_demand(cluster, arrived_work, queue_work=0.0, slack=1.0, opp=0):
    table = cluster.spec.opp_table
    base = initial_observation(
        "cpu", opp, len(table), table[opp].freq_hz, table.max_freq_hz, 0.01
    )
    return type(base)(
        **{**base.__dict__, "arrived_work": arrived_work,
           "queue_work": queue_work, "qos_slack": slack}
    )


class TestScenarioAware:
    def test_registered(self):
        assert isinstance(create("scenario-aware"), ScenarioAwareGovernor)

    def test_idle_system_stays_at_floor(self):
        cluster = make_cluster()
        gov = ScenarioAwareGovernor()
        gov.reset(cluster)
        assert gov.decide(obs_with_demand(cluster, 0.0)) == 0

    def test_provisions_just_enough(self):
        cluster = make_cluster()  # 2 cores, capacity 1.0, OPPs 200..2000 MHz
        gov = ScenarioAwareGovernor(target_util=0.8, ewma_alpha=1.0)
        gov.reset(cluster)
        # 8e6 work per 10 ms = 8e8 work/s; with 2 cores at util 0.8 the
        # required frequency is 8e8 / (2*0.8) = 5e8 -> ceil to 600 MHz.
        assert gov.decide(obs_with_demand(cluster, 8e6)) == 2

    def test_backlog_raises_frequency(self):
        cluster = make_cluster()
        gov = ScenarioAwareGovernor(ewma_alpha=1.0)
        gov.reset(cluster)
        light = gov.decide(obs_with_demand(cluster, 4e6))
        gov.reset(cluster)
        loaded = gov.decide(obs_with_demand(cluster, 4e6, queue_work=2e7))
        assert loaded > light

    def test_urgency_boost(self):
        cluster = make_cluster()
        gov = ScenarioAwareGovernor(ewma_alpha=1.0, urgency_boost=2.0)
        gov.reset(cluster)
        relaxed = gov.decide(obs_with_demand(cluster, 6e6, slack=1.0))
        gov.reset(cluster)
        urgent = gov.decide(obs_with_demand(cluster, 6e6, slack=0.0))
        assert urgent > relaxed

    def test_huge_demand_clamps_to_top(self):
        cluster = make_cluster()
        gov = ScenarioAwareGovernor(ewma_alpha=1.0)
        gov.reset(cluster)
        assert gov.decide(obs_with_demand(cluster, 1e12)) == 9

    def test_validation(self):
        with pytest.raises(GovernorError):
            ScenarioAwareGovernor(target_util=0.0)
        with pytest.raises(GovernorError):
            ScenarioAwareGovernor(urgency_boost=0.5)

    def test_no_saturation_blind_spot(self, tiny_chip):
        """Unlike utilisation-driven governors, demand provisioning sees
        through saturation: a backlog at the floor OPP drives the
        frequency up immediately."""
        units = [unit(uid=i, release=0.0, work=8e6, deadline=0.2) for i in range(5)]
        trace = Trace(units=units, duration_s=0.5)
        result = Simulator(
            tiny_chip, trace, lambda c: ScenarioAwareGovernor(),
            record_samples=True,
        ).run()
        # By the second interval the governor is at the top OPP.
        assert result.samples[1].opp_indices["cpu"] == 2
        assert result.qos.mean_qos > 0.9
