"""Policy checkpointing: save, load, validate."""

import json

import pytest

from repro.core.checkpoint import load_policies, save_policies
from repro.core.config import PolicyConfig
from repro.core.policy import RLPowerManagementPolicy
from repro.core.trainer import evaluate_policy, train_policy
from repro.errors import PolicyError
from repro.sim.engine import Simulator
from repro.soc.presets import exynos5422, tiny_test_chip

from test_trainer import tiny_scenario


@pytest.fixture()
def trained(tmp_path):
    chip = tiny_test_chip()
    training = train_policy(chip, tiny_scenario(), episodes=3, episode_duration_s=3.0)
    return chip, training.policies


class TestSaveLoad:
    def test_roundtrip_preserves_decisions(self, trained, tmp_path):
        chip, policies = trained
        trace = tiny_scenario().trace(3.0, seed=42)
        original = evaluate_policy(chip, policies, trace)

        save_policies(policies, tmp_path / "ckpt")
        restored = load_policies(tmp_path / "ckpt", chip=chip)
        reloaded = Simulator(chip, trace, restored).run()

        assert reloaded.total_energy_j == pytest.approx(original.total_energy_j)
        assert reloaded.qos == original.qos

    def test_restored_policies_are_offline(self, trained, tmp_path):
        _, policies = trained
        save_policies(policies, tmp_path / "ckpt")
        restored = load_policies(tmp_path / "ckpt")
        assert all(not p.online for p in restored.values())

    def test_episode_count_preserved(self, trained, tmp_path):
        _, policies = trained
        save_policies(policies, tmp_path / "ckpt")
        restored = load_policies(tmp_path / "ckpt")
        assert restored["cpu"].episodes == policies["cpu"].episodes

    def test_restored_policy_can_resume_learning(self, trained, tmp_path):
        chip, policies = trained
        save_policies(policies, tmp_path / "ckpt")
        restored = load_policies(tmp_path / "ckpt", chip=chip)
        for p in restored.values():
            p.online = True
        Simulator(chip, tiny_scenario().trace(2.0, seed=9), restored).run()
        assert restored["cpu"].agent.updates > 0

    def test_config_roundtrip(self, tmp_path):
        chip = tiny_test_chip()
        config = PolicyConfig(util_bins=4, lambda_qos=2.5, seed=7)
        training = train_policy(chip, tiny_scenario(), episodes=2,
                                episode_duration_s=2.0, config=config)
        save_policies(training.policies, tmp_path / "ckpt")
        restored = load_policies(tmp_path / "ckpt")
        assert restored["cpu"].config == config


class TestValidation:
    def test_untrained_policy_rejected(self, tmp_path):
        with pytest.raises(PolicyError, match="trained"):
            save_policies({"cpu": RLPowerManagementPolicy()}, tmp_path / "ckpt")

    def test_missing_manifest(self, tmp_path):
        with pytest.raises(PolicyError, match="manifest"):
            load_policies(tmp_path)

    def test_corrupt_manifest(self, tmp_path):
        (tmp_path / "policy.json").write_text("{broken")
        with pytest.raises(PolicyError, match="corrupt"):
            load_policies(tmp_path)

    def test_wrong_version(self, tmp_path):
        (tmp_path / "policy.json").write_text(json.dumps({"version": 99, "clusters": {}}))
        with pytest.raises(PolicyError, match="version"):
            load_policies(tmp_path)

    def test_chip_mismatch_cluster_names(self, trained, tmp_path):
        _, policies = trained
        save_policies(policies, tmp_path / "ckpt")
        with pytest.raises(PolicyError, match="lacks clusters"):
            load_policies(tmp_path / "ckpt", chip=exynos5422())

    def test_chip_mismatch_opp_count(self, tmp_path):
        chip = exynos5422()
        from repro.workload.scenarios import get_scenario

        training = train_policy(chip, get_scenario("audio_playback"), episodes=1,
                                episode_duration_s=2.0)
        save_policies(training.policies, tmp_path / "ckpt")
        # tiny chip has a cluster named "cpu" only -> missing clusters.
        with pytest.raises(PolicyError):
            load_policies(tmp_path / "ckpt", chip=tiny_test_chip())
