"""DVFS transition costs and their engine integration."""

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.governors.base import Governor
from repro.governors.performance import PerformanceGovernor
from repro.sim.engine import Simulator
from repro.sim.telemetry import ClusterObservation
from repro.soc.transition import DVFSTransitionModel
from repro.workload.trace import Trace

from conftest import unit


class TestTransitionModel:
    def test_energy_components(self):
        model = DVFSTransitionModel(rail_capacitance_f=10e-6, pll_energy_j=1e-6)
        e = model.energy_j(0.9, 1.2)
        rail = 0.5 * 10e-6 * abs(1.2**2 - 0.9**2)
        assert e == pytest.approx(rail + 1e-6)

    def test_energy_symmetric(self):
        model = DVFSTransitionModel()
        assert model.energy_j(0.9, 1.2) == pytest.approx(model.energy_j(1.2, 0.9))

    def test_same_voltage_costs_pll_only(self):
        model = DVFSTransitionModel(pll_energy_j=2e-6)
        assert model.energy_j(1.0, 1.0) == pytest.approx(2e-6)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            DVFSTransitionModel(latency_s=-1.0)
        with pytest.raises(ConfigurationError):
            DVFSTransitionModel().energy_j(-1.0, 1.0)


class PingPongGovernor(Governor):
    """Worst case: flips between floor and ceiling every interval."""

    name = "pingpong"

    def decide(self, obs: ClusterObservation) -> int:
        return 0 if obs.opp_index != 0 else obs.n_opps - 1


class TestEngineIntegration:
    def trace(self) -> Trace:
        return Trace(
            units=[unit(uid=i, release=i * 0.05, work=2e6, deadline=i * 0.05 + 0.04)
                   for i in range(10)],
            duration_s=0.6,
        )

    def test_transition_energy_charged(self, tiny_chip):
        base = Simulator(tiny_chip, self.trace(), lambda c: PingPongGovernor()).run()
        tiny_chip.reset()
        costed = Simulator(
            tiny_chip, self.trace(), lambda c: PingPongGovernor(),
            transition=DVFSTransitionModel(latency_s=100e-6, pll_energy_j=5e-5),
        ).run()
        assert costed.total_energy_j > base.total_energy_j
        assert base.opp_switches == costed.opp_switches

    def test_stable_governor_pays_almost_nothing(self, tiny_chip):
        base = Simulator(tiny_chip, self.trace(), lambda c: PerformanceGovernor()).run()
        tiny_chip.reset()
        costed = Simulator(
            tiny_chip, self.trace(), lambda c: PerformanceGovernor(),
            transition=DVFSTransitionModel(latency_s=100e-6, pll_energy_j=5e-5),
        ).run()
        # Performance switches exactly once (floor -> top at t=0).
        assert costed.total_energy_j - base.total_energy_j < 1e-3

    def test_stall_can_cost_a_deadline(self, tiny_chip):
        """A unit that barely fits the interval misses once a large
        transition stall eats execution time."""
        # At the top OPP (1.5 GHz), 1.45e7 cycles take ~9.67 ms of a
        # 10 ms deadline -- feasible without stall, infeasible with an
        # 8 ms stall in the first interval.
        trace = Trace(units=[unit(work=1.45e7, deadline=0.010)], duration_s=0.1)
        clean = Simulator(tiny_chip, trace, lambda c: PerformanceGovernor()).run()
        tiny_chip.reset()
        stalled = Simulator(
            tiny_chip, trace, lambda c: PerformanceGovernor(),
            transition=DVFSTransitionModel(latency_s=8e-3),
        ).run()
        assert clean.qos.deadline_miss_rate == 0.0
        assert stalled.qos.deadline_miss_rate > 0.0

    def test_transition_longer_than_interval_rejected(self, tiny_chip):
        with pytest.raises(SimulationError, match="shorter"):
            Simulator(
                tiny_chip, self.trace(), lambda c: PerformanceGovernor(),
                interval_s=0.01,
                transition=DVFSTransitionModel(latency_s=0.02),
            )
