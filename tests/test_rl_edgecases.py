"""RL edge cases: terminal n-step flushes, exploration reset semantics,
and property-style discretisation/Q-table round trips."""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro.errors import PolicyError
from repro.rl.discretize import Binner, StateSpace
from repro.rl.exploration import EpsilonGreedy, EpsilonSchedule
from repro.rl.nstep import NStepQAgent
from repro.rl.qtable import QTable


class TestNStepTerminalFlush:
    """``flush(terminal=True)`` must apply pure truncated returns — no
    bootstrap from the (by definition zero-valued) terminal state."""

    def _agent(self) -> NStepQAgent:
        # alpha=1.0 makes each update write the return directly, so the
        # table exposes exactly what g was; the optimistic initial value
        # of 10 makes any bootstrap leak unmissable.
        return NStepQAgent(n_states=3, n_actions=1, alpha=1.0, gamma=0.5,
                           n_steps=3, initial_q=10.0)

    def test_terminal_flush_uses_truncated_returns(self):
        agent = self._agent()
        agent.update(0, 0, 1.0, 1)
        agent.update(1, 0, 2.0, 2)  # window still filling: no updates yet
        assert agent.updates == 0
        assert agent.flush(2, terminal=True) == 2
        # G(s0) = 1 + 0.5*2 = 2.0; G(s1) = 2.0 — and nothing else.
        assert agent.table.get(0, 0) == 2.0
        assert agent.table.get(1, 0) == 2.0

    def test_default_flush_still_bootstraps(self):
        agent = self._agent()
        agent.update(0, 0, 1.0, 1)
        agent.update(1, 0, 2.0, 2)
        assert agent.flush(2) == 2  # horizon cutoff: value continues
        # G(s0) = 1 + 0.5*2 + 0.25*max Q(2) = 2 + 0.25*10 = 4.5
        assert agent.table.get(0, 0) == 4.5
        # G(s1) = 2 + 0.5*max Q(2) = 7.0
        assert agent.table.get(1, 0) == 7.0

    def test_terminal_flush_on_full_window(self):
        agent = self._agent()
        agent.update(0, 0, 1.0, 1)
        agent.update(1, 0, 1.0, 2)
        td = agent.update(2, 0, 1.0, 0)  # window full: bootstrapped update
        assert td != 0.0
        assert agent.flush(0, terminal=True) == 2
        assert len(agent._window) == 0


class TestEpsilonGreedyReset:
    def _explorer(self) -> EpsilonGreedy:
        return EpsilonGreedy(
            EpsilonSchedule(start=0.5, decay=0.9, floor=0.01), n_actions=3
        )

    def test_bare_reset_restarts_the_schedule(self):
        explorer = self._explorer()
        row = np.zeros(3)
        for _ in range(5):
            explorer.select(row)
        assert explorer.step == 5
        assert explorer.epsilon == pytest.approx(0.5 * 0.9**5)
        explorer.reset()
        assert explorer.step == 0
        assert explorer.epsilon == 0.5

    def test_keep_schedule_preserves_the_counter(self):
        explorer = self._explorer()
        row = np.zeros(3)
        for _ in range(5):
            explorer.select(row)
        explorer.reset(keep_schedule=True)
        assert explorer.step == 5
        assert explorer.epsilon == pytest.approx(0.5 * 0.9**5)


class TestStateSpaceRoundTrip:
    SPACE = StateSpace([("util", 3), ("freq", 4), ("qos", 5)])

    def test_encode_decode_identity_over_full_range(self):
        for index in range(self.SPACE.n_states):
            assert self.SPACE.encode(self.SPACE.decode(index)) == index

    def test_decode_encode_identity_over_all_digit_vectors(self):
        seen = set()
        for digits in itertools.product(range(3), range(4), range(5)):
            index = self.SPACE.encode(digits)
            assert self.SPACE.decode(index) == digits
            seen.add(index)
        assert seen == set(range(self.SPACE.n_states))  # bijection


class TestBinnerClamping:
    BINNER = Binner.uniform(0.0, 1.0, 4)  # edges 0.25, 0.5, 0.75

    def test_clamps_at_and_below_lo(self):
        assert self.BINNER.bin(0.0) == 0
        assert self.BINNER.bin(-1e9) == 0

    def test_clamps_at_and_above_hi(self):
        assert self.BINNER.bin(1.0) == 3
        assert self.BINNER.bin(1e9) == 3

    def test_edge_exact_values_round_up(self):
        # bisect_right: a value sitting exactly on an interior edge
        # belongs to the bin above it (edges[i-1] <= v < edges[i]).
        assert self.BINNER.bin(0.25) == 1
        assert self.BINNER.bin(0.5) == 2
        assert self.BINNER.bin(0.75) == 3
        assert self.BINNER.bin(0.25 - 1e-12) == 0

    def test_nan_rejected(self):
        with pytest.raises(PolicyError, match="NaN"):
            self.BINNER.bin(float("nan"))


class TestQTableBatchReads:
    def _table(self) -> QTable:
        table = QTable(4, 3)
        table.values = np.arange(12, dtype=float).reshape(4, 3)
        table.values[2] = [5.0, 9.0, 9.0]  # tie: argmax must pick index 1
        return table

    def test_rows_matches_row(self):
        table = self._table()
        states = [3, 0, 2, 2]
        block = table.rows(states)
        assert block.shape == (4, 3)
        for got, state in zip(block, states):
            assert np.array_equal(got, table.row(state))

    def test_rows_returns_a_copy(self):
        table = self._table()
        block = table.rows([0, 1])
        block[:] = -1.0
        assert table.get(0, 0) == 0.0

    def test_argmax_many_matches_argmax(self):
        table = self._table()
        states = list(range(4)) + [2, 0]
        assert table.argmax_many(states).tolist() == [
            table.argmax(s) for s in states
        ]

    def test_bad_states_rejected(self):
        table = self._table()
        with pytest.raises(PolicyError, match="out of range"):
            table.rows([0, 4])
        with pytest.raises(PolicyError, match="out of range"):
            table.rows([-1])
        with pytest.raises(PolicyError, match="one-dimensional"):
            table.rows(np.zeros((2, 2), dtype=int))

    def test_empty_batch(self):
        table = self._table()
        assert table.rows([]).shape == (0, 3)
        assert table.argmax_many([]).shape == (0,)
