"""The lock-step RL training fast path: routing and bit-identity.

The contract under test is absolute: batched training must equal serial
:func:`repro.core.trainer.train_policy` **bit for bit** — Q-values,
epsilon trajectories, TD statistics, episode history — ``==`` on every
float, never ``pytest.approx``.
"""

from __future__ import annotations

from dataclasses import fields, replace

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.batch import (
    BatchEngine,
    RLTrainJob,
    evaluate_policies_batch,
    is_rl_vectorisable,
    is_vectorisable,
    rl_group_key,
    train_policy_batch,
)
from repro.core.config import PolicyConfig
from repro.core.trainer import evaluate_policy, make_policies, train_policy
from repro.fleet.spec import JobSpec
from repro.fleet.worker import frozen_policies, simulate_spec
from repro.rl.exploration import EpsilonGreedy, EpsilonSchedule
from repro.rl.qtable import QTable
from repro.soc.presets import exynos5422, tiny_test_chip
from repro.workload.phases import PhaseMachine, PhaseSpec
from repro.workload.scenarios import Scenario


def tiny_scenario() -> Scenario:
    """A light scenario sized for the tiny test chip."""

    def machine() -> PhaseMachine:
        phases = [
            PhaseSpec("lo", period_s=0.05, work_mean=2e6, work_cv=0.2,
                      deadline_factor=1.5, dwell_mean_s=1.0, dwell_min_s=0.4),
            PhaseSpec("hi", period_s=0.02, work_mean=8e6, work_cv=0.2,
                      deadline_factor=1.5, dwell_mean_s=1.0, dwell_min_s=0.4),
        ]
        return PhaseMachine(phases, [[0.3, 0.7], [0.7, 0.3]])

    return Scenario("tiny-mix", "test scenario", machine)


def _jobs(seeds, chip_factory=tiny_test_chip, scenario=None, episodes=2,
          episode_duration_s=2.0, config=None):
    return [
        RLTrainJob(
            chip=chip_factory(),
            scenario=scenario or tiny_scenario(),
            episodes=episodes,
            episode_duration_s=episode_duration_s,
            base_seed=s,
            config=config or PolicyConfig(seed=s),
        )
        for s in seeds
    ]


def _assert_policies_identical(a, b):
    """Every learner-state float equal between two policy dicts."""
    assert set(a) == set(b)
    for name in a:
        pa, pb = a[name], b[name]
        assert np.array_equal(pa.agent.table.values, pb.agent.table.values)
        assert pa.agent.explorer.step == pb.agent.explorer.step
        assert pa.agent.epsilon == pb.agent.epsilon
        assert pa.agent.updates == pb.agent.updates
        assert pa.cumulative_reward == pb.cumulative_reward
        assert pa.episodes == pb.episodes
        assert pa._prev_state == pb._prev_state
        assert pa._prev_action == pb._prev_action
        sa, sb = pa.agent.td_stats, pb.agent.td_stats
        for f in ("count", "abs_sum", "total", "max_abs", "last",
                  "welford_mean", "m2"):
            assert getattr(sa, f) == getattr(sb, f), (name, f)
        pra, prb = pa.featurizer.predictor, pb.featurizer.predictor
        assert pra._level == prb._level
        assert pra._prev_level == prb._prev_level
        assert pra.phase_changes == prb.phase_changes


class TestRoutingPredicates:
    def test_rl_spec_is_not_table_free(self):
        # The table-free predicate must keep rejecting RL jobs; they
        # have their own grouping predicate.
        spec = JobSpec(scenario="idle", governor="rl-policy")
        assert not is_vectorisable(spec)
        assert is_rl_vectorisable(spec)

    def test_rl_vectorisable_exclusions(self):
        base = JobSpec(scenario="idle", governor="rl-policy")
        assert not is_rl_vectorisable(replace(base, governor="ondemand"))
        assert not is_rl_vectorisable(replace(base, full_system=True))
        assert not is_rl_vectorisable(replace(base, collect_metrics=True))
        assert not is_rl_vectorisable(replace(base, trace_dir="/tmp/t"))
        assert not is_rl_vectorisable(
            replace(base, chip_obj=tiny_test_chip())
        )

    def test_rl_vectorisable_allows_config_and_ledger(self):
        base = JobSpec(scenario="idle", governor="rl-policy")
        assert is_rl_vectorisable(
            replace(base, policy_config=PolicyConfig(seed=3))
        )
        assert is_rl_vectorisable(replace(base, learn_log_dir="/tmp/l"))

    def test_group_key_ignores_seeds_but_not_geometry(self):
        a = JobSpec(scenario="idle", governor="rl-policy", seed=1,
                    train_base_seed=10)
        b = replace(a, seed=2, train_base_seed=20)
        assert rl_group_key(a) == rl_group_key(b)
        assert rl_group_key(a) != rl_group_key(replace(a, chip="tiny"))
        assert rl_group_key(a) != rl_group_key(
            replace(a, train_episodes=a.train_episodes + 1)
        )
        assert rl_group_key(a) != rl_group_key(
            replace(a, policy_config=PolicyConfig(util_bins=3))
        )

    def test_plan_groups_matching_rl_specs(self):
        rl = [JobSpec(scenario="idle", governor="rl-policy", seed=100 + i,
                      chip="tiny") for i in range(3)]
        lone = JobSpec(scenario="idle", governor="rl-policy", seed=9,
                       chip="tiny", train_episodes=99)
        serial = JobSpec(scenario="idle", governor="ondemand", chip="tiny")
        plan = BatchEngine([*rl, lone, serial]).plan()
        assert plan == [True, True, True, False, False]

    def test_plan_singleton_rl_stays_serial(self):
        spec = JobSpec(scenario="idle", governor="rl-policy", chip="tiny")
        assert BatchEngine([spec]).plan() == [False]

    def test_plan_respects_force_serial(self):
        specs = [JobSpec(scenario="idle", governor="rl-policy",
                         seed=100 + i, chip="tiny") for i in range(2)]
        assert BatchEngine(specs, force_serial=True).plan() == [False, False]


class TestTrainBatchBitIdentity:
    def test_matches_serial_trainer(self):
        seeds = [0, 1, 2, 5]
        serial = train_policy_batch(_jobs(seeds), force_serial=True)
        batched = train_policy_batch(_jobs(seeds))
        for a, b in zip(serial, batched):
            assert a.history == b.history
            _assert_policies_identical(a.policies, b.policies)

    def test_matches_on_big_little_chip(self):
        # Two clusters exercise the HMP scheduler and per-cluster
        # population tables.
        from repro.workload.scenarios import get_scenario

        kw = dict(chip_factory=exynos5422,
                  scenario=get_scenario("web_browsing"))
        serial = train_policy_batch(_jobs([0, 3], **kw), force_serial=True)
        batched = train_policy_batch(_jobs([0, 3], **kw))
        for a, b in zip(serial, batched):
            assert a.history == b.history
            _assert_policies_identical(a.policies, b.policies)

    def test_heterogeneous_hyperparameters_vectorise(self):
        # Per-lane alpha/gamma/epsilon/bins-compatible configs group
        # fine; only the state geometry must match.
        configs = [
            PolicyConfig(seed=1, alpha=0.1, gamma=0.8),
            PolicyConfig(seed=2, alpha=0.5, gamma=0.95,
                         epsilon=EpsilonSchedule(start=0.9, decay=0.99)),
        ]
        jobs = lambda: [
            RLTrainJob(chip=tiny_test_chip(), scenario=tiny_scenario(),
                       episodes=2, episode_duration_s=2.0, base_seed=i,
                       config=cfg)
            for i, cfg in enumerate(configs)
        ]
        serial = train_policy_batch(jobs(), force_serial=True)
        batched = train_policy_batch(jobs())
        for a, b in zip(serial, batched):
            assert a.history == b.history
            _assert_policies_identical(a.policies, b.policies)

    def test_mismatched_geometry_falls_back(self):
        jobs = _jobs([0]) + _jobs([1], config=PolicyConfig(util_bins=3))
        results = train_policy_batch(jobs)
        oracle = train_policy_batch(
            _jobs([0]) + _jobs([1], config=PolicyConfig(util_bins=3)),
            force_serial=True,
        )
        for a, b in zip(oracle, results):
            assert a.history == b.history
            _assert_policies_identical(a.policies, b.policies)

    def test_materialises_policies_in_place(self):
        jobs = _jobs([0, 1])
        assert all(job.policies is None for job in jobs)
        results = train_policy_batch(jobs)
        for job, result in zip(jobs, results):
            assert job.policies is result.policies

    def test_shared_policy_objects_fall_back_serial(self):
        # Two lanes pointing at one policy dict cannot train lock-step
        # (the population table would alias); the serial path handles it.
        shared = make_policies(tiny_test_chip(), PolicyConfig(seed=0))
        jobs = [
            RLTrainJob(chip=tiny_test_chip(), scenario=tiny_scenario(),
                       episodes=1, episode_duration_s=1.0, base_seed=i,
                       policies=shared)
            for i in range(2)
        ]
        results = train_policy_batch(jobs)
        assert all(r.policies is shared for r in results)

    @settings(max_examples=8, deadline=None)
    @given(
        seeds=st.lists(st.integers(min_value=0, max_value=200),
                       min_size=2, max_size=4, unique=True),
        episodes=st.integers(min_value=1, max_value=3),
        alpha=st.sampled_from([0.1, 0.3, 0.7]),
        gamma=st.sampled_from([0.0, 0.5, 0.9]),
    )
    def test_property_bit_identity(self, seeds, episodes, alpha, gamma):
        def jobs():
            return [
                RLTrainJob(
                    chip=tiny_test_chip(), scenario=tiny_scenario(),
                    episodes=episodes, episode_duration_s=1.5, base_seed=s,
                    config=PolicyConfig(seed=s, alpha=alpha, gamma=gamma),
                )
                for s in seeds
            ]

        serial = train_policy_batch(jobs(), force_serial=True)
        batched = train_policy_batch(jobs())
        for a, b in zip(serial, batched):
            assert a.history == b.history
            _assert_policies_identical(a.policies, b.policies)


class TestEvaluateBatch:
    def test_matches_serial_evaluator_and_restores_flags(self):
        results = train_policy_batch(_jobs([0, 1, 2]))
        traces = [tiny_scenario().trace(2.0, seed=77) for _ in results]
        serial = [
            evaluate_policy(tiny_test_chip(), r.policies, t)
            for r, t in zip(results, traces)
        ]
        batched = evaluate_policies_batch(
            [tiny_test_chip() for _ in results],
            [r.policies for r in results],
            traces,
        )
        assert batched == serial
        for r in results:
            assert all(p.online for p in r.policies.values())

    def test_length_mismatch_raises(self):
        from repro.errors import SimulationError

        with pytest.raises(SimulationError):
            evaluate_policies_batch([tiny_test_chip()], [], [])


class TestRunBatchIntegration:
    def test_grouped_rl_specs_match_simulate_spec(self):
        specs = [
            JobSpec(scenario="web_browsing", governor="rl-policy",
                    seed=100 + i, chip="tiny", duration_s=2.0,
                    train_episodes=2, train_episode_s=2.0,
                    train_base_seed=7 * i)
            for i in range(3)
        ]
        specs.append(JobSpec(scenario="web_browsing", governor="performance",
                             chip="tiny", duration_s=2.0))
        engine = BatchEngine(specs)
        assert engine.plan() == [True, True, True, True]
        batched = engine.run()
        serial = [simulate_spec(s) for s in specs]
        assert batched == serial

    def test_learn_ledger_identical_across_paths(self, tmp_path):
        from repro.obs.learn import read_learn_log

        def spec(i, log_dir):
            return JobSpec(scenario="web_browsing", governor="rl-policy",
                           seed=100 + i, chip="tiny", duration_s=2.0,
                           train_episodes=2, train_episode_s=2.0,
                           learn_log_dir=str(log_dir))

        fast_dir = tmp_path / "fast"
        serial_dir = tmp_path / "serial"
        fast_dir.mkdir(), serial_dir.mkdir()
        fast_specs = [spec(i, fast_dir) for i in range(2)]
        BatchEngine(fast_specs).run()
        BatchEngine([spec(i, serial_dir) for i in range(2)],
                    force_serial=True).run()
        def strip_ts(records):
            # The wall-clock stamp is the one legitimately path-varying
            # field; every learning metric must match exactly.
            return [{k: v for k, v in r.items() if k != "ts"}
                    for r in records]

        for fast_file, serial_file in zip(sorted(fast_dir.iterdir()),
                                          sorted(serial_dir.iterdir())):
            assert strip_ts(read_learn_log(fast_file)) == strip_ts(
                read_learn_log(serial_file)
            )


class TestFrozenPolicies:
    def test_restores_flags_on_error(self):
        policies = make_policies(tiny_test_chip())
        policies[next(iter(policies))].online = False
        saved = {name: p.online for name, p in policies.items()}
        with pytest.raises(RuntimeError):
            with frozen_policies(policies):
                assert not any(p.online for p in policies.values())
                raise RuntimeError("boom")
        assert {name: p.online for name, p in policies.items()} == saved


class TestPlanDraws:
    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=1000),
        n_steps=st.integers(min_value=0, max_value=64),
        start=st.sampled_from([0.0, 0.3, 0.9]),
        decay=st.sampled_from([0.9, 0.999, 1.0]),
    )
    def test_replays_select_exactly(self, seed, n_steps, start, decay):
        schedule = EpsilonSchedule(start=start, decay=decay, floor=0.0)
        reference = EpsilonGreedy(schedule, 5, seed=seed)
        planned = EpsilonGreedy(schedule, 5, seed=seed)
        explore, random_actions, epsilons = planned.plan_draws(n_steps)
        q_row = np.array([0.0, 3.0, 1.0, 3.0, -1.0])
        for t in range(n_steps):
            assert epsilons[t] == reference.epsilon
            chosen = reference.select(q_row)
            expected = (int(random_actions[t]) if explore[t]
                        else int(np.argmax(q_row)))
            assert chosen == expected
        assert planned.step == reference.step
        # The generators end in the same state: next draws agree.
        assert planned._rng.random() == reference._rng.random()

    def test_values_matches_scalar_value(self):
        schedule = EpsilonSchedule(start=0.7, decay=0.995, floor=0.05)
        steps = np.arange(0, 2000, 7)
        batched = schedule.values(steps)
        assert batched.tolist() == [schedule.value(int(s)) for s in steps]


class TestTdUpdateMany:
    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=500),
        n=st.integers(min_value=1, max_value=40),
    )
    def test_duplicate_rows_match_serial_loop(self, seed, n):
        # Colliding states force the segmentation path; the result must
        # still equal looping update() in order.
        from repro.rl.qlearning import QLearningAgent

        rng = np.random.default_rng(seed)
        states = rng.integers(0, 6, size=n)
        actions = rng.integers(0, 3, size=n)
        rewards = rng.normal(size=n)
        next_states = rng.integers(0, 6, size=n)
        a = QLearningAgent(6, 3, alpha=0.4, gamma=0.7)
        b = QLearningAgent(6, 3, alpha=0.4, gamma=0.7)
        td_serial = np.array([
            a.update(int(s), int(ac), float(r), int(ns))
            for s, ac, r, ns in zip(states, actions, rewards, next_states)
        ])
        td_batch = b.update_many(states, actions, rewards, next_states)
        assert np.array_equal(td_serial, td_batch)
        assert np.array_equal(a.table.values, b.table.values)
        assert a.updates == b.updates


class TestQTableRoundTrip:
    @settings(max_examples=15, deadline=None)
    @given(
        initial=st.sampled_from([0.0, -1.5, 2.0, 10.0]),
        seed=st.integers(min_value=0, max_value=200),
        writes=st.integers(min_value=0, max_value=20),
    )
    def test_save_load_preserves_initial_value(self, tmp_path_factory,
                                               initial, seed, writes):
        table = QTable(8, 3, initial_value=initial)
        rng = np.random.default_rng(seed)
        for _ in range(writes):
            table.set(int(rng.integers(8)), int(rng.integers(3)),
                      float(rng.normal()))
        path = tmp_path_factory.mktemp("qt") / "table.npz"
        table.save(path)
        loaded = QTable.load(path)
        assert loaded.initial_value == table.initial_value
        assert np.array_equal(loaded.values, table.values)
        assert loaded.visited_fraction() == table.visited_fraction()

    def test_legacy_checkpoint_defaults_to_zero(self, tmp_path):
        # Files written before initial_value was persisted.
        values = np.full((4, 2), 5.0)
        np.savez_compressed(tmp_path / "old.npz", values=values)
        loaded = QTable.load(tmp_path / "old.npz")
        assert loaded.initial_value == 0.0
        assert loaded.visited_fraction() == 1.0


class TestDoubleQCoverage:
    def test_fresh_optimistic_agent_reports_zero_coverage(self):
        from repro.rl.double_q import DoubleQAgent

        agent = DoubleQAgent(6, 3, initial_q=2.0)
        assert agent.table.initial_value == 4.0
        assert agent.table.visited_fraction() == 0.0
        agent.update(0, 1, -1.0, 2)
        assert agent.table.visited_fraction() > 0.0

    def test_table_property_reuses_buffer(self):
        from repro.rl.double_q import DoubleQAgent

        agent = DoubleQAgent(4, 2)
        first = agent.table.values
        agent.update(1, 0, -0.5, 3)
        second = agent.table.values
        assert second is first
        assert np.array_equal(
            second, agent.table_a.values + agent.table_b.values
        )


class TestMakePolicies:
    def test_replace_preserves_every_config_field(self):
        # Iterating fields() pins the contract: any future PolicyConfig
        # field must survive the per-cluster seed decorrelation.
        cfg = PolicyConfig(
            util_bins=4, trend_bins=2, opp_bins=3, slack_bins=2,
            action_deltas=(-1, 0, 1), alpha=0.11, gamma=0.77,
            epsilon=EpsilonSchedule(start=0.4, decay=0.99, floor=0.01),
            lambda_qos=2.5, slack_threshold=0.3, predictor_alpha=0.6,
            phase_change_threshold=0.5, seed=42,
        )
        policies = make_policies(exynos5422(), cfg)
        names = list(policies)
        assert policies[names[0]].config == cfg
        for i, name in enumerate(names[1:], start=1):
            derived = policies[name].config
            for f in fields(PolicyConfig):
                if f.name == "seed":
                    assert getattr(derived, f.name) == cfg.seed + 1000 * i
                else:
                    assert getattr(derived, f.name) == getattr(cfg, f.name)
