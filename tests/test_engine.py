"""The simulation engine: draining, timing, energy, observations."""

import pytest

from repro.errors import SimulationError
from repro.governors.base import Governor
from repro.governors.performance import PerformanceGovernor
from repro.governors.powersave import PowersaveGovernor
from repro.power.model import PowerModel
from repro.sim.engine import Simulator
from repro.sim.telemetry import ClusterObservation
from repro.thermal.rc import default_thermal_model
from repro.thermal.throttle import ThermalThrottle
from repro.workload.trace import Trace

from conftest import unit


class FixedGovernor(Governor):
    """Test helper: always returns one index."""

    name = "fixed"

    def __init__(self, index: int):
        super().__init__()
        self.index = index
        self.observations: list[ClusterObservation] = []

    def decide(self, obs: ClusterObservation) -> int:
        self.observations.append(obs)
        return self.index


def run(chip, trace, governor_factory, **kwargs):
    return Simulator(chip, trace, governor_factory, **kwargs).run()


class TestBasicExecution:
    def test_single_unit_completes_on_time(self, tiny_chip, single_unit_trace):
        # 1e6 cycles at 1.5 GHz takes ~0.67 ms, due at 100 ms.
        result = run(tiny_chip, single_unit_trace, lambda c: PerformanceGovernor())
        assert result.qos.n_completed == 1
        assert result.qos.mean_qos == 1.0
        assert result.qos.deadline_miss_rate == 0.0

    def test_completion_time_interpolated_within_interval(self, tiny_chip):
        # At the top OPP (1.5 GHz) a 3e6-cycle unit takes exactly 2 ms,
        # inside the first 10 ms interval.
        trace = Trace(units=[unit(work=3e6, deadline=0.1)], duration_s=0.05)
        sim = Simulator(tiny_chip, trace, lambda c: PerformanceGovernor())
        # Capture the job list via the QoS report's lateness: completion at
        # 2 ms against a 100 ms deadline gives lateness -98 ms.
        result = sim.run()
        assert result.qos.mean_lateness_s == 0.0
        assert result.qos.n_on_time == 1

    def test_work_conservation(self, tiny_chip, steady_trace):
        result = run(tiny_chip, steady_trace, lambda c: PerformanceGovernor())
        assert result.qos.n_completed == len(steady_trace)

    def test_infeasible_at_floor_misses_deadlines(self, tiny_chip):
        # 30 Hz of 5e6-cycle units needs 1.5e8 cycles/s average but bursty
        # deadlines; at 500 MHz each unit takes 10 ms against a 33 ms
        # deadline -> fine. Make it genuinely infeasible: 2e7 per unit
        # needs 40 ms at 500 MHz > 33 ms deadline.
        units = [
            unit(uid=i, release=i / 30, work=2e7, deadline=i / 30 + 1 / 30)
            for i in range(15)
        ]
        trace = Trace(units=units, duration_s=1.0)
        result = run(tiny_chip, trace, lambda c: PowersaveGovernor())
        assert result.qos.deadline_miss_rate > 0.5

    def test_performance_beats_powersave_on_qos(self, tiny_chip, steady_trace):
        fast = run(tiny_chip, steady_trace, lambda c: PerformanceGovernor())
        tiny_chip.reset()
        slow = run(tiny_chip, steady_trace, lambda c: PowersaveGovernor())
        assert fast.qos.mean_qos >= slow.qos.mean_qos
        assert fast.total_energy_j > slow.total_energy_j

    def test_determinism(self, tiny_chip, steady_trace):
        a = run(tiny_chip, steady_trace, lambda c: PerformanceGovernor())
        b = run(tiny_chip, steady_trace, lambda c: PerformanceGovernor())
        assert a.total_energy_j == b.total_energy_j
        assert a.qos == b.qos


class TestAbandonment:
    def test_hopeless_jobs_are_dropped(self, tiny_chip):
        # An impossible pile of work: 1e10 cycles due in 50 ms on a chip
        # delivering at most 1.5e9/s.
        trace = Trace(units=[unit(work=1e10, deadline=0.05)], duration_s=2.0)
        result = run(tiny_chip, trace, lambda c: PerformanceGovernor(), grace_factor=2.0)
        assert result.qos.n_dropped == 1
        assert result.qos.n_completed == 0
        assert result.qos.mean_qos == 0.0

    def test_energy_not_wasted_after_abandonment(self, tiny_chip):
        """After the doomed job is abandoned the chip goes idle, so energy
        with grace 1 must be below energy with a huge grace (which keeps
        grinding)."""
        trace = Trace(units=[unit(work=1e10, deadline=0.05)], duration_s=2.0)
        strict = run(tiny_chip, trace, lambda c: PerformanceGovernor(), grace_factor=1.0)
        tiny_chip.reset()
        lax = run(tiny_chip, trace, lambda c: PerformanceGovernor(), grace_factor=100.0)
        assert strict.total_energy_j < lax.total_energy_j


class TestGovernorInteraction:
    def test_governor_sees_previous_interval(self, tiny_chip, steady_trace):
        gov = FixedGovernor(2)
        Simulator(tiny_chip, steady_trace, {"cpu": gov}).run()
        first = gov.observations[0]
        assert first.time_s == 0.0
        assert first.utilization == 0.0  # nothing has run yet
        # The unit released at t=0 ran during interval 0, so the decision
        # at step 1 sees non-zero utilisation.
        assert gov.observations[1].utilization > 0.0

    def test_decision_out_of_range_is_clamped(self, tiny_chip, single_unit_trace):
        result = run(tiny_chip, single_unit_trace, lambda c: FixedGovernor(99))
        assert result.qos.mean_qos == 1.0  # clamped to top OPP, work done

    def test_opp_switches_counted(self, tiny_chip, single_unit_trace):
        # Fixed at 2 after starting at 0: exactly one switch.
        result = run(tiny_chip, single_unit_trace, lambda c: FixedGovernor(2))
        assert result.opp_switches == 1

    def test_missing_governor_rejected(self, duo_chip, single_unit_trace):
        with pytest.raises(SimulationError, match="no governor"):
            Simulator(duo_chip, single_unit_trace, {"big": FixedGovernor(0)})

    def test_energy_in_observation_sums_to_cluster_energy(self, tiny_chip, steady_trace):
        gov = FixedGovernor(1)
        result = Simulator(
            tiny_chip, steady_trace, {"cpu": gov}, power_model=PowerModel(uncore_w=0.0)
        ).run()
        # Observations lag one interval; the last interval's energy is in
        # neither list. Compare loosely: sum of observed cluster energy
        # must be within one interval's energy of the meter total.
        observed = sum(o.energy_j for o in gov.observations[1:])
        per_interval = result.total_energy_j / result.intervals
        assert observed == pytest.approx(result.total_energy_j, abs=2 * per_interval)


class TestObservations:
    def test_qos_slack_drops_as_deadline_nears(self, tiny_chip):
        # A job the floor OPP cannot finish quickly: watch slack decay.
        units = [unit(work=4e7, deadline=0.2)]
        gov = FixedGovernor(0)
        Simulator(tiny_chip, Trace(units=units, duration_s=0.3), {"cpu": gov}).run()
        slacks = [o.qos_slack for o in gov.observations if o.queue_jobs > 0]
        assert slacks, "job never pended"
        assert slacks[-1] < slacks[0]

    def test_arrived_work_recorded(self, tiny_chip, single_unit_trace):
        gov = FixedGovernor(2)
        Simulator(tiny_chip, single_unit_trace, {"cpu": gov}).run()
        assert sum(o.arrived_work for o in gov.observations) == pytest.approx(1e6)

    def test_record_samples(self, tiny_chip, steady_trace):
        result = run(
            tiny_chip, steady_trace, lambda c: PerformanceGovernor(), record_samples=True
        )
        assert len(result.samples) == result.intervals
        assert all(s.power_w > 0 for s in result.samples)

    def test_record_observations(self, tiny_chip, steady_trace):
        result = run(
            tiny_chip, steady_trace, lambda c: PerformanceGovernor(),
            record_observations=True,
        )
        assert len(result.observations["cpu"]) == result.intervals


class TestThermalIntegration:
    def test_chip_heats_under_load(self, tiny_chip, steady_trace):
        thermal = default_thermal_model(["cpu"])
        run(
            tiny_chip, steady_trace, lambda c: PerformanceGovernor(), thermal=thermal
        )
        assert thermal.temperature_c("cpu") > 25.0

    def test_throttle_requires_thermal(self, tiny_chip, steady_trace):
        with pytest.raises(SimulationError, match="thermal"):
            Simulator(
                tiny_chip, steady_trace, lambda c: PerformanceGovernor(),
                throttle=ThermalThrottle(),
            )

    def test_aggressive_trip_caps_frequency(self, tiny_chip, steady_trace):
        thermal = default_thermal_model(["cpu"])
        throttled = run(
            tiny_chip, steady_trace, lambda c: PerformanceGovernor(),
            thermal=thermal, throttle=ThermalThrottle(trip_c=25.05, hysteresis_c=0.01),
            record_samples=True,
        )
        # With a trip right above ambient the cluster cannot stay at top.
        assert any(s.opp_indices["cpu"] < 2 for s in throttled.samples)


class TestValidation:
    def test_bad_interval(self, tiny_chip, single_unit_trace):
        with pytest.raises(SimulationError):
            Simulator(tiny_chip, single_unit_trace, lambda c: PerformanceGovernor(),
                      interval_s=0.0)

    def test_bad_grace(self, tiny_chip, single_unit_trace):
        with pytest.raises(SimulationError):
            Simulator(tiny_chip, single_unit_trace, lambda c: PerformanceGovernor(),
                      grace_factor=0.0)

    def test_duration_matches_intervals(self, tiny_chip, single_unit_trace):
        result = run(tiny_chip, single_unit_trace, lambda c: PerformanceGovernor())
        assert result.duration_s == pytest.approx(result.intervals * 0.01)


class TestMultiCluster:
    def test_both_clusters_used(self, duo_chip):
        light = [
            unit(uid=i, release=i * 0.02, work=2e6, deadline=i * 0.02 + 0.05)
            for i in range(20)
        ]
        heavy = [
            unit(uid=100 + i, release=i * 0.02, work=3e7, deadline=i * 0.02 + 0.016)
            for i in range(20)
        ]
        trace = Trace(units=light + heavy, duration_s=1.0)
        govs = {"big": FixedGovernor(2), "little": FixedGovernor(2)}
        result = Simulator(duo_chip, trace, govs).run()
        big_work = sum(o.completed_work for o in govs["big"].observations)
        little_work = sum(o.completed_work for o in govs["little"].observations)
        assert big_work > 0 and little_work > 0
        assert result.qos.mean_qos > 0.9

    def test_parallel_unit_finishes_faster_than_serial(self, duo_chip):
        """A min_parallelism=2 unit drains on two cores and makes a
        deadline the serial version misses."""
        serial = Trace(units=[unit(work=5.5e7, deadline=0.012, parallelism=1)],
                       duration_s=0.2)
        parallel = Trace(units=[unit(work=5.5e7, deadline=0.012, parallelism=2)],
                         duration_s=0.2)
        govs = lambda c: FixedGovernor(2)  # noqa: E731 - terse test factory
        r_serial = Simulator(duo_chip, serial, govs).run()
        duo_chip.reset()
        r_parallel = Simulator(duo_chip, parallel, govs).run()
        assert r_parallel.qos.mean_qos > r_serial.qos.mean_qos
