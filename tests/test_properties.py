"""Cross-module property-based tests: invariants that must hold for any
workload, any governor, any seed."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.governors import available, create
from repro.governors.base import Governor
from repro.sim.engine import Simulator
from repro.sim.telemetry import ClusterObservation
from repro.soc.presets import tiny_test_chip
from repro.workload.generator import TraceGenerator
from repro.workload.phases import PhaseMachine, PhaseSpec
from repro.workload.trace import Trace

from conftest import unit


def random_trace(seed: int, duration_s: float = 2.0) -> Trace:
    """A seeded two-phase workload with bursty structure."""
    machine = PhaseMachine(
        [
            PhaseSpec("lo", period_s=0.05, work_mean=1.5e6, work_cv=0.4,
                      deadline_factor=1.5, dwell_mean_s=0.5, dwell_min_s=0.2),
            PhaseSpec("hi", period_s=0.02, work_mean=7e6, work_cv=0.4,
                      deadline_factor=1.5, dwell_mean_s=0.5, dwell_min_s=0.2),
        ],
        [[0.4, 0.6], [0.6, 0.4]],
    )
    return TraceGenerator(machine, seed=seed).generate(duration_s)


ALL_GOVERNORS = sorted(available())


class TestUniversalInvariants:
    """Hold for every governor on every seeded workload."""

    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=500),
        governor=st.sampled_from(ALL_GOVERNORS),
    )
    def test_energy_positive_qos_bounded(self, seed, governor):
        chip = tiny_test_chip()
        result = Simulator(chip, random_trace(seed), lambda c: create(governor)).run()
        assert result.total_energy_j > 0
        assert 0.0 <= result.qos.mean_qos <= 1.0
        assert 0.0 <= result.qos.deadline_miss_rate <= 1.0
        assert result.qos.n_completed + (result.qos.n_units - result.qos.n_completed) \
            == result.qos.n_units

    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=500),
        governor=st.sampled_from(ALL_GOVERNORS),
    )
    def test_energy_breakdown_sums(self, seed, governor):
        chip = tiny_test_chip()
        result = Simulator(chip, random_trace(seed), lambda c: create(governor)).run()
        assert result.total_energy_j == pytest.approx(
            result.dynamic_energy_j + result.leakage_energy_j
            + result.uncore_energy_j
        )

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=500))
    def test_performance_dominates_powersave_qos(self, seed):
        """The top OPP can never deliver less QoS than the floor OPP."""
        chip = tiny_test_chip()
        trace = random_trace(seed)
        fast = Simulator(chip, trace, lambda c: create("performance")).run()
        slow = Simulator(chip, trace, lambda c: create("powersave")).run()
        assert fast.qos.mean_qos >= slow.qos.mean_qos - 1e-9
        assert fast.total_energy_j >= slow.total_energy_j

    @settings(max_examples=10, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=500),
        governor=st.sampled_from(ALL_GOVERNORS),
    )
    def test_determinism(self, seed, governor):
        chip = tiny_test_chip()
        trace = random_trace(seed)
        a = Simulator(chip, trace, lambda c: create(governor)).run()
        b = Simulator(chip, trace, lambda c: create(governor)).run()
        assert a.total_energy_j == b.total_energy_j
        assert a.qos == b.qos
        assert a.opp_switches == b.opp_switches


class RecordingGovernor(Governor):
    """Holds the floor OPP and records every observation."""

    name = "recording"

    def __init__(self):
        super().__init__()
        self.observations: list[ClusterObservation] = []

    def decide(self, obs: ClusterObservation) -> int:
        self.observations.append(obs)
        return 0


class TestObservationInvariants:
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=500))
    def test_observation_fields_in_range(self, seed):
        chip = tiny_test_chip()
        gov = RecordingGovernor()
        Simulator(chip, random_trace(seed), {"cpu": gov}).run()
        for obs in gov.observations:
            assert 0.0 <= obs.utilization <= 1.0
            assert 0.0 <= obs.max_core_utilization <= 1.0
            assert obs.utilization <= obs.max_core_utilization + 1e-12
            assert 0.0 <= obs.qos_slack <= 1.0
            assert obs.queue_work >= 0.0
            assert obs.queue_jobs >= 0
            assert obs.energy_j >= 0.0
            assert obs.arrived_work >= 0.0
            assert obs.completed_work >= 0.0

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=500))
    def test_work_conservation(self, seed):
        """Completed work never exceeds released work, and the sum of
        per-interval completed work accounts for every finished job."""
        chip = tiny_test_chip()
        trace = random_trace(seed)
        gov = RecordingGovernor()
        result = Simulator(chip, trace, {"cpu": gov}).run()
        completed = sum(o.completed_work for o in gov.observations)
        arrived = sum(o.arrived_work for o in gov.observations)
        # Observations lag one interval, so allow the final interval's
        # work to be unaccounted in either sum.
        assert completed <= trace.total_work * (1 + 1e-9)
        assert arrived <= trace.total_work * (1 + 1e-9)
        assert result.qos.n_units == len(trace)


class TestTraceProperties:
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_csv_roundtrip_any_trace(self, seed, tmp_path_factory):
        trace = random_trace(seed, duration_s=1.0)
        path = tmp_path_factory.mktemp("traces") / "t.csv"
        trace.to_csv(path)
        back = Trace.from_csv(path)
        assert list(back) == list(trace)

    @settings(max_examples=20, deadline=None)
    @given(
        works=st.lists(
            st.floats(min_value=1e3, max_value=1e8), min_size=1, max_size=30
        )
    )
    def test_total_work_additive(self, works):
        units = [
            unit(uid=i, release=0.01 * i, work=w, deadline=0.01 * i + 0.1)
            for i, w in enumerate(works)
        ]
        trace = Trace(units=units, duration_s=10.0)
        assert trace.total_work == pytest.approx(sum(works))
