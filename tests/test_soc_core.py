"""Core specs and runtime core state."""

import pytest

from repro.errors import ConfigurationError
from repro.soc.core import BIG_CORE, LITTLE_CORE, CoreSpec, CoreState


class TestCoreSpec:
    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ConfigurationError):
            CoreSpec("x", capacity=0.0, ceff_f=1e-10, leak_a_per_v=0.01)

    def test_rejects_nonpositive_ceff(self):
        with pytest.raises(ConfigurationError):
            CoreSpec("x", capacity=1.0, ceff_f=0.0, leak_a_per_v=0.01)

    def test_rejects_negative_leakage(self):
        with pytest.raises(ConfigurationError):
            CoreSpec("x", capacity=1.0, ceff_f=1e-10, leak_a_per_v=-0.1)

    def test_cycles_available(self):
        spec = CoreSpec("x", capacity=1.0, ceff_f=1e-10, leak_a_per_v=0.0)
        assert spec.cycles_available(1e9, 0.01) == pytest.approx(1e7)

    def test_work_available_scales_with_capacity(self):
        spec = CoreSpec("x", capacity=2.0, ceff_f=1e-10, leak_a_per_v=0.0)
        assert spec.work_available(1e9, 0.01) == pytest.approx(2e7)

    def test_big_core_has_more_capacity_than_little(self):
        assert BIG_CORE.capacity > LITTLE_CORE.capacity
        assert BIG_CORE.ceff_f > LITTLE_CORE.ceff_f

    def test_negative_frequency_rejected(self):
        spec = CoreSpec("x", capacity=1.0, ceff_f=1e-10, leak_a_per_v=0.0)
        with pytest.raises(ConfigurationError):
            spec.cycles_available(-1.0, 0.01)


class TestCoreState:
    def make(self) -> CoreState:
        return CoreState(CoreSpec("x", capacity=1.0, ceff_f=1e-10, leak_a_per_v=0.0))

    def test_initially_idle(self):
        state = self.make()
        assert state.idle
        assert state.utilization == 0.0

    def test_record_full_interval(self):
        state = self.make()
        state.record_interval(used_cycles=1e7, freq_hz=1e9, interval_s=0.01)
        assert state.utilization == pytest.approx(1.0)
        assert not state.idle
        assert state.busy_cycles == pytest.approx(1e7)

    def test_record_half_interval(self):
        state = self.make()
        state.record_interval(used_cycles=5e6, freq_hz=1e9, interval_s=0.01)
        assert state.utilization == pytest.approx(0.5)

    def test_record_zero_is_idle(self):
        state = self.make()
        state.record_interval(0.0, 1e9, 0.01)
        assert state.idle
        assert state.utilization == 0.0

    def test_overuse_raises(self):
        state = self.make()
        with pytest.raises(ConfigurationError, match="available"):
            state.record_interval(2e7, 1e9, 0.01)

    def test_tiny_float_overshoot_is_tolerated(self):
        state = self.make()
        state.record_interval(1e7 * (1 + 1e-12), 1e9, 0.01)
        assert state.utilization == pytest.approx(1.0)
        assert state.utilization <= 1.0

    def test_negative_cycles_raise(self):
        with pytest.raises(ConfigurationError):
            self.make().record_interval(-1.0, 1e9, 0.01)

    def test_peak_utilization_tracks_max(self):
        state = self.make()
        state.record_interval(8e6, 1e9, 0.01)
        state.record_interval(2e6, 1e9, 0.01)
        assert state.peak_utilization == pytest.approx(0.8)

    def test_reset_clears_everything(self):
        state = self.make()
        state.record_interval(5e6, 1e9, 0.01)
        state.reset()
        assert state.idle
        assert state.busy_cycles == 0.0
        assert state.peak_utilization == 0.0

    def test_zero_frequency_gives_zero_utilization(self):
        state = self.make()
        state.record_interval(0.0, 0.0, 0.01)
        assert state.utilization == 0.0
