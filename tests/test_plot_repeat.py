"""ASCII plotting and multi-seed repetition helpers."""

import pytest

from repro.analysis.plot import histogram, line_chart, sparkline
from repro.analysis.repeat import RepeatedMeasure, repeat_over_seeds
from repro.errors import ReproError


class TestSparkline:
    def test_length_matches(self):
        assert len(sparkline([1, 2, 3])) == 3

    def test_monotone_series_monotone_blocks(self):
        line = sparkline([0, 1, 2, 3, 4, 5, 6, 7, 8])
        assert line == " ▁▂▃▄▅▆▇█"

    def test_constant_series(self):
        assert sparkline([5.0, 5.0, 5.0]) == "▄▄▄"

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            sparkline([])


class TestLineChart:
    def test_shape(self):
        chart = line_chart([1, 2, 3, 4], height=5, title="t")
        lines = chart.splitlines()
        assert lines[0] == "t"
        assert len(lines) == 1 + 5 + 1  # title + rows + axis

    def test_extremes_labelled(self):
        chart = line_chart([10.0, 20.0], height=4)
        assert "20" in chart.splitlines()[0]
        assert "10" in chart.splitlines()[3]

    def test_resampling(self):
        chart = line_chart(list(range(100)), height=4, width=20)
        # All rows have the same plotted width.
        rows = [line for line in chart.splitlines() if "┤" in line]
        assert all(len(r.split("┤")[1]) == 20 for r in rows)

    def test_validation(self):
        with pytest.raises(ReproError):
            line_chart([])
        with pytest.raises(ReproError):
            line_chart([1.0], height=1)
        with pytest.raises(ReproError):
            line_chart([1.0], width=0)


class TestHistogram:
    def test_counts_sum(self):
        out = histogram([1, 1, 2, 3, 3, 3], bins=3)
        counts = [int(line.rsplit(" ", 1)[1]) for line in out.splitlines()]
        assert sum(counts) == 6

    def test_peak_bin_widest(self):
        out = histogram([1, 3, 3, 3], bins=3, width=10)
        lines = out.splitlines()
        bars = [line.count("█") for line in lines]
        assert max(bars) == 10

    def test_validation(self):
        with pytest.raises(ReproError):
            histogram([])
        with pytest.raises(ReproError):
            histogram([1.0], bins=0)


class TestRepeatedMeasure:
    def test_mean_and_ci(self):
        m = RepeatedMeasure(values=(10.0, 12.0, 11.0, 13.0))
        assert m.mean == pytest.approx(11.5)
        assert m.ci_halfwidth > 0

    def test_single_sample_zero_ci(self):
        assert RepeatedMeasure(values=(5.0,)).ci_halfwidth == 0.0

    def test_higher_confidence_wider_interval(self):
        values = (1.0, 2.0, 3.0, 4.0)
        narrow = RepeatedMeasure(values=values, confidence=0.90)
        wide = RepeatedMeasure(values=values, confidence=0.99)
        assert wide.ci_halfwidth > narrow.ci_halfwidth

    def test_overlap_detection(self):
        a = RepeatedMeasure(values=(10.0, 10.5, 10.2, 10.3))
        b = RepeatedMeasure(values=(10.4, 10.6, 10.2, 10.5))
        c = RepeatedMeasure(values=(20.0, 20.5, 20.2, 20.3))
        assert a.overlaps(b)
        assert not a.overlaps(c)

    def test_validation(self):
        with pytest.raises(ReproError):
            RepeatedMeasure(values=())
        with pytest.raises(ReproError):
            RepeatedMeasure(values=(1.0,), confidence=0.5)

    def test_repeat_over_seeds(self):
        m = repeat_over_seeds(lambda seed: float(seed * 2), seeds=[1, 2, 3])
        assert m.values == (2.0, 4.0, 6.0)

    def test_repeat_requires_seeds(self):
        with pytest.raises(ReproError):
            repeat_over_seeds(lambda s: 0.0, seeds=[])

    def test_str(self):
        s = str(RepeatedMeasure(values=(1.0, 2.0)))
        assert "n=2" in s
