"""Documentation quality gate: every public item carries a docstring."""

import importlib
import inspect
import pkgutil

import pytest

import repro


def _walk_modules():
    """Yield every module in the repro package."""
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield importlib.import_module(info.name)


ALL_MODULES = list(_walk_modules())


@pytest.mark.parametrize("module", ALL_MODULES, ids=lambda m: m.__name__)
def test_module_has_docstring(module):
    assert module.__doc__ and module.__doc__.strip(), module.__name__


@pytest.mark.parametrize("module", ALL_MODULES, ids=lambda m: m.__name__)
def test_public_classes_and_functions_documented(module):
    undocumented: list[str] = []
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue  # re-export; documented at its home
        if not (obj.__doc__ and obj.__doc__.strip()):
            undocumented.append(f"{module.__name__}.{name}")
        if inspect.isclass(obj):
            for meth_name, meth in vars(obj).items():
                if meth_name.startswith("_"):
                    continue
                if not inspect.isfunction(meth):
                    continue
                if meth.__doc__ and meth.__doc__.strip():
                    continue
                # Overrides inherit the base class's contract docs.
                if any(
                    getattr(getattr(base, meth_name, None), "__doc__", None)
                    for base in obj.__mro__[1:]
                ):
                    continue
                undocumented.append(f"{module.__name__}.{name}.{meth_name}")
    assert not undocumented, f"undocumented public items: {undocumented}"


def test_every_public_name_in_all_exists():
    """__all__ lists must not go stale."""
    for module in ALL_MODULES:
        exported = getattr(module, "__all__", None)
        if exported is None:
            continue
        for name in exported:
            assert hasattr(module, name), f"{module.__name__}.__all__: {name}"
