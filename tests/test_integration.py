"""Cross-module integration: the paper's claims at miniature scale."""

import pytest

from repro import (
    BASELINE_SIX,
    Simulator,
    create,
    evaluate_policy,
    exynos5422,
    get_scenario,
    train_policy,
)
from repro.core.config import PolicyConfig
from repro.hw.hwpolicy import HardwareRLPolicy
from repro.qos.energy_per_qos import improvement_percent
from repro.thermal.rc import default_thermal_model
from repro.thermal.throttle import ThermalThrottle


@pytest.fixture(scope="module")
def trained_gaming():
    """A gaming-trained policy set on the Exynos chip, shared across the
    module's tests (training dominates test time)."""
    chip = exynos5422()
    scenario = get_scenario("gaming")
    training = train_policy(chip, scenario, episodes=10, episode_duration_s=15.0)
    return chip, scenario, training


class TestHeadlineClaim:
    """Miniature E1: the RL policy beats the reactive governors on
    energy-per-QoS for the gaming scenario."""

    def test_rl_beats_mean_of_six(self, trained_gaming):
        chip, scenario, training = trained_gaming
        trace = scenario.trace(10.0, seed=77)
        rl = evaluate_policy(chip, training.policies, trace)
        baselines = []
        for name in BASELINE_SIX:
            run = Simulator(chip, trace, lambda c: create(name)).run()
            baselines.append(run.energy_per_qos_j)
        mean_six = sum(baselines) / len(baselines)
        gain = improvement_percent(mean_six, rl.energy_per_qos_j)
        assert gain > 15.0, f"only {gain:.1f}% better than the six-governor mean"

    def test_rl_preserves_qos(self, trained_gaming):
        chip, scenario, training = trained_gaming
        trace = scenario.trace(10.0, seed=77)
        rl = evaluate_policy(chip, training.policies, trace)
        assert rl.qos.mean_qos > 0.95

    def test_rl_beats_performance_governor_energy(self, trained_gaming):
        chip, scenario, training = trained_gaming
        trace = scenario.trace(10.0, seed=77)
        rl = evaluate_policy(chip, training.policies, trace)
        perf = Simulator(chip, trace, lambda c: create("performance")).run()
        assert rl.total_energy_j < perf.total_energy_j


class TestHardwareSoftwareEquivalence:
    """Miniature E7: the fixed-point hardware policy behaves like the
    software policy after table transfer."""

    def test_transfer_and_run(self, trained_gaming):
        chip, scenario, training = trained_gaming
        trace = scenario.trace(8.0, seed=88)
        sw = evaluate_policy(chip, training.policies, trace)

        hw_policies = {}
        for name, soft in training.policies.items():
            hard = HardwareRLPolicy(soft.config, online=False)
            hard.load_from_software(soft)
            hw_policies[name] = hard
        hw = Simulator(chip, trace, hw_policies).run()

        assert hw.qos.mean_qos == pytest.approx(sw.qos.mean_qos, abs=0.05)
        assert hw.total_energy_j == pytest.approx(sw.total_energy_j, rel=0.2)
        assert all(p.mean_decision_latency_s < 1e-6 for p in hw_policies.values())


class TestFullStackWithThermals:
    def test_thermal_throttling_composes_with_rl(self):
        chip = exynos5422()
        scenario = get_scenario("gaming")
        thermal = default_thermal_model(chip.cluster_names)
        policies = {
            name: HardwareRLPolicy(PolicyConfig(seed=i))
            for i, name in enumerate(chip.cluster_names)
        }
        sim = Simulator(
            chip,
            scenario.trace(5.0, seed=5),
            policies,
            thermal=thermal,
            throttle=ThermalThrottle(trip_c=80.0),
        )
        result = sim.run()
        assert result.intervals == 500
        assert thermal.max_temperature_c > 25.0


class TestCrossScenarioAdaptation:
    """Miniature E6: a policy trained on one scenario still adapts online
    when run (learning enabled) on a different one."""

    def test_online_adaptation_after_scenario_switch(self, trained_gaming):
        chip, _, training = trained_gaming
        video = get_scenario("video_playback")
        trace = video.trace(10.0, seed=5)
        # Frozen on the wrong scenario vs. allowed to keep learning.
        frozen = evaluate_policy(chip, training.policies, trace)
        adapted = Simulator(chip, trace, training.policies).run()
        # Online adaptation must not be dramatically worse than frozen
        # greedy, and both must deliver reasonable QoS on the new scenario.
        assert adapted.qos.mean_qos > 0.85
        assert frozen.qos.mean_qos > 0.85
