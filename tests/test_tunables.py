"""Config-driven governor construction."""

import pytest

from repro.errors import GovernorError
from repro.governors.ondemand import OndemandGovernor
from repro.governors.tunables import create_many, create_tuned, tunables_of


class TestTunablesOf:
    def test_ondemand_knobs(self):
        knobs = tunables_of("ondemand")
        assert knobs == {"up_threshold": 0.80, "sampling_down_factor": 1}

    def test_performance_has_no_knobs(self):
        assert tunables_of("performance") == {}

    def test_interactive_knob_names(self):
        knobs = tunables_of("interactive")
        assert "go_hispeed_load" in knobs
        assert "min_sample_time_s" in knobs

    def test_unknown_governor(self):
        with pytest.raises(GovernorError, match="available"):
            tunables_of("warp-speed")


class TestCreateTuned:
    def test_builds_with_custom_knob(self):
        gov = create_tuned("ondemand", {"up_threshold": 0.6})
        assert isinstance(gov, OndemandGovernor)
        assert gov.up_threshold == 0.6

    def test_defaults_when_no_tunables(self):
        gov = create_tuned("ondemand")
        assert gov.up_threshold == 0.80

    def test_unknown_knob_rejected(self):
        with pytest.raises(GovernorError, match="no tunables"):
            create_tuned("ondemand", {"turbo": True})

    def test_bad_value_propagates(self):
        with pytest.raises(GovernorError):
            create_tuned("ondemand", {"up_threshold": 2.0})


class TestCreateMany:
    def test_builds_per_cluster(self):
        govs = create_many(
            {
                "big": {"governor": "ondemand", "up_threshold": 0.7},
                "little": {"governor": "powersave"},
            }
        )
        assert govs["big"].up_threshold == 0.7
        assert govs["little"].name == "powersave"

    def test_missing_governor_key(self):
        with pytest.raises(GovernorError, match="'governor' key"):
            create_many({"big": {"up_threshold": 0.7}})

    def test_spec_not_mutated(self):
        spec = {"big": {"governor": "performance"}}
        create_many(spec)
        assert spec == {"big": {"governor": "performance"}}

    def test_runs_in_simulator(self, duo_chip, single_unit_trace):
        from repro.sim.engine import Simulator

        govs = create_many(
            {
                "big": {"governor": "conservative", "freq_step": 0.1},
                "little": {"governor": "schedutil", "headroom": 1.5},
            }
        )
        result = Simulator(duo_chip, single_unit_trace, govs).run()
        assert result.qos.mean_qos >= 0.0
