"""The performance ledger: records, regression engine, gate, CLI."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.errors import PerfError
from repro.obs import MetricsRegistry
from repro.perf import (
    GateResult,
    Ledger,
    MetricVerdict,
    PerfComparison,
    RunRecord,
    compare_records,
    gate,
    group_samples,
    metric_polarity,
    metrics_from_snapshot,
    new_run_id,
    read_ledger,
    record_run,
    render_github,
    render_json,
    render_text,
    resolve_ledger_path,
    split_latest,
)
from repro.perf.ledger import LEDGER_ENV_VAR


def _record(run_id="r1", name="idle", metrics=None, config=None, kind="run"):
    return RunRecord(
        run_id=run_id,
        kind=kind,
        name=name,
        config=config or {"governor": "ondemand"},
        metrics=metrics if metrics is not None else {"energy_j": 1.0},
    )


class TestRunRecord:
    def test_key_sorts_config(self):
        a = _record(config={"seed": 1, "governor": "rl"})
        b = _record(config={"governor": "rl", "seed": 1})
        assert a.key() == b.key() == "run:idle:governor=rl:seed=1"

    def test_mapping_round_trip(self):
        rec = _record(metrics={"energy_j": 2.5, "mean_qos": 0.99})
        again = RunRecord.from_mapping(rec.to_mapping())
        assert again == rec

    def test_from_mapping_missing_field_raises(self):
        with pytest.raises(PerfError, match="malformed"):
            RunRecord.from_mapping({"kind": "run", "name": "idle"})

    def test_from_mapping_bad_metric_raises(self):
        data = _record().to_mapping()
        data["metrics"] = {"energy_j": "not-a-number"}
        with pytest.raises(PerfError, match="malformed"):
            RunRecord.from_mapping(data)


class TestLedger:
    def test_record_run_appends_and_reads_back(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        rec = record_run("run", "idle", {"energy_j": 1.5},
                         {"governor": "ondemand"}, path=path)
        assert rec.run_id and rec.timestamp_s > 0
        records = read_ledger(path)
        assert len(records) == 1
        assert records[0].metrics == {"energy_j": 1.5}
        assert records[0].key() == "run:idle:governor=ondemand"

    def test_record_run_drops_non_finite(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        rec = record_run("run", "idle", {
            "ok": 1.0,
            "nan": float("nan"),
            "inf": float("inf"),
            "ninf": float("-inf"),
            "text": "nope",
        }, path=path)
        assert rec.metrics == {"ok": 1.0}
        assert read_ledger(path)[0].metrics == {"ok": 1.0}

    def test_record_run_requires_kind_and_name(self, tmp_path):
        with pytest.raises(PerfError, match="kind and a name"):
            record_run("", "idle", {}, path=tmp_path / "l.jsonl")

    def test_env_var_overrides_default(self, tmp_path, monkeypatch):
        target = tmp_path / "custom.jsonl"
        monkeypatch.setenv(LEDGER_ENV_VAR, str(target))
        assert resolve_ledger_path() == target
        record_run("bench", "b1", {"x": 1.0})
        assert target.is_file()
        # An explicit path still wins over the environment.
        assert resolve_ledger_path(tmp_path / "o.jsonl") == tmp_path / "o.jsonl"

    def test_read_skips_blank_lines(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        record_run("run", "idle", {"a": 1.0}, path=path)
        with_blank = path.read_text() + "\n\n"
        path.write_text(with_blank)
        record_run("run", "idle", {"a": 2.0}, path=path)
        assert len(read_ledger(path)) == 2

    def test_read_rejects_bad_json(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        path.write_text("{broken\n")
        with pytest.raises(PerfError, match="not JSON"):
            read_ledger(path)
        path.write_text("[1, 2]\n")
        with pytest.raises(PerfError, match="not a JSON object"):
            read_ledger(path)

    def test_missing_ledger_raises(self, tmp_path):
        ledger = Ledger(tmp_path / "absent.jsonl")
        assert not ledger.exists()
        with pytest.raises(PerfError, match="no ledger"):
            ledger.read()

    def test_run_ids_are_fresh_and_short(self):
        assert new_run_id() != new_run_id()
        assert len(new_run_id()) == 12


class TestMetricsFromSnapshot:
    def test_flattens_counters_gauges_histograms(self):
        reg = MetricsRegistry()
        reg.counter("sim.runs").inc(3)
        reg.gauge("sim.last_mean_qos").set(0.98)
        h = reg.histogram("lat", buckets=(1.0, 10.0, 100.0))
        for v in (0.5, 2.0, 2.0, 20.0):
            h.observe(v)
        out = metrics_from_snapshot(reg.snapshot())
        assert out["sim.runs"] == 3.0
        assert out["sim.last_mean_qos"] == 0.98
        assert out["lat.count"] == 4.0
        assert out["lat.mean"] == pytest.approx(24.5 / 4)
        assert out["lat.max"] == 20.0
        # Quantiles interpolate inside the right bucket.
        assert 1.0 <= out["lat.p50"] <= 10.0
        assert 10.0 <= out["lat.p95"] <= 100.0
        assert set(out) >= {"lat.p50", "lat.p95", "lat.p99"}

    def test_empty_histogram_reports_count_only(self):
        reg = MetricsRegistry()
        reg.histogram("lat", buckets=(1.0,))
        out = metrics_from_snapshot(reg.snapshot(), prefix="p.")
        assert out == {"p.lat.count": 0.0}


class TestGrouping:
    def test_group_samples_by_key_and_metric(self):
        records = [
            _record("r1", metrics={"energy_j": 1.0}),
            _record("r2", metrics={"energy_j": 1.1}),
            _record("r3", name="gaming", metrics={"energy_j": 9.0}),
        ]
        samples = group_samples(records)
        assert samples[("run:idle:governor=ondemand", "energy_j")] == [1.0, 1.1]
        assert samples[("run:gaming:governor=ondemand", "energy_j")] == [9.0]

    def test_split_latest_takes_newest_run(self):
        records = [
            _record("r1", metrics={"energy_j": 1.0}),
            _record("r2", metrics={"energy_j": 1.1}),
            _record("r3", metrics={"energy_j": 2.0}),
        ]
        baseline, current = split_latest(records)
        assert [r.run_id for r in baseline] == ["r1", "r2"]
        assert [r.run_id for r in current] == ["r3"]

    def test_split_latest_skips_single_run_keys(self):
        records = [_record("only", name="solo")]
        assert split_latest(records) == ([], [])


class TestPolarity:
    @pytest.mark.parametrize("name,expected", [
        ("energy_per_qos_j", "lower"),
        ("decision_latency_s.p95", "lower"),
        ("wall_s", "lower"),
        ("mean_qos", "higher"),
        ("speedup", "higher"),
        ("sim_throughput_per_s", "higher"),
        ("q_coverage", "higher"),
    ])
    def test_inferred_from_name(self, name, expected):
        assert metric_polarity(name) == expected

    def test_override_wins(self):
        assert metric_polarity("energy_j", {"energy_j": "higher"}) == "higher"

    def test_bad_override_raises(self):
        with pytest.raises(PerfError, match="'higher' or 'lower'"):
            metric_polarity("x", {"x": "sideways"})


def _sampled(run_prefix, values, metric="latency_s", name="e4"):
    """One record per value, all sharing a key."""
    return [
        _record(f"{run_prefix}{i}", name=name, kind="bench",
                config={"governor": "rl"}, metrics={metric: v})
        for i, v in enumerate(values)
    ]


class TestCompare:
    def test_threshold_rule_below_five_samples(self):
        baseline = _sampled("b", [1.0, 1.0, 1.0])
        worse = _sampled("c", [2.0, 2.0, 2.0])
        comparison = compare_records(baseline, worse)
        (v,) = comparison.verdicts
        assert v.status == "regressed"
        assert v.method == "threshold"
        assert v.shift == pytest.approx(1.0)
        assert v.ci_low is None and v.ci_high is None
        assert not comparison.ok

    def test_identical_records_are_unchanged(self):
        baseline = _sampled("b", [1.0, 1.0, 1.0])
        same = _sampled("c", [1.0, 1.0, 1.0])
        comparison = compare_records(baseline, same)
        (v,) = comparison.verdicts
        assert v.status == "unchanged"
        assert comparison.ok

    def test_bootstrap_rule_at_five_samples(self):
        baseline = _sampled("b", [1.00, 1.01, 0.99, 1.02, 0.98, 1.00])
        doubled = _sampled("c", [2.00, 2.02, 1.98, 2.04, 1.96, 2.00])
        comparison = compare_records(baseline, doubled)
        (v,) = comparison.verdicts
        assert v.method == "bootstrap"
        assert v.status == "regressed"
        assert v.ci_low is not None and v.ci_low > comparison.threshold

    def test_bootstrap_is_deterministic(self):
        baseline = _sampled("b", [1.0, 1.1, 0.9, 1.05, 0.95])
        current = _sampled("c", [1.2, 1.3, 1.1, 1.25, 1.15])
        a = compare_records(baseline, current)
        b = compare_records(baseline, current)
        assert a == b

    def test_higher_better_direction_flips(self):
        baseline = _sampled("b", [0.99, 0.99], metric="mean_qos")
        worse = _sampled("c", [0.50, 0.50], metric="mean_qos")
        comparison = compare_records(baseline, worse)
        (v,) = comparison.verdicts
        assert v.polarity == "higher"
        assert v.status == "regressed"
        improved = compare_records(_sampled("c", [0.5], metric="mean_qos"),
                                   _sampled("d", [0.99], metric="mean_qos"))
        assert improved.verdicts[0].status == "improved"

    def test_polarity_override_applies(self):
        baseline = _sampled("b", [1.0], metric="score")
        halved = _sampled("c", [0.5], metric="score")
        # Inferred lower-is-better: a drop is an improvement...
        assert compare_records(baseline, halved).verdicts[0].status == "improved"
        # ...but declared higher-is-better it regresses.
        flipped = compare_records(
            baseline, halved, polarity_overrides={"score": "higher"}
        )
        assert flipped.verdicts[0].status == "regressed"

    def test_one_sided_keys_are_added_or_removed(self):
        baseline = _sampled("b", [1.0], name="old")
        current = _sampled("c", [1.0], name="new")
        comparison = compare_records(baseline, current)
        statuses = {v.key: v.status for v in comparison.verdicts}
        assert statuses == {"bench:new:governor=rl": "added",
                            "bench:old:governor=rl": "removed"}
        assert comparison.ok  # neither blocks the gate

    def test_both_sides_empty_raises(self):
        with pytest.raises(PerfError, match="nothing to compare"):
            compare_records([], [])

    def test_bad_threshold_and_confidence_raise(self):
        baseline = _sampled("b", [1.0])
        with pytest.raises(PerfError, match="threshold"):
            compare_records(baseline, baseline, threshold=-0.1)
        with pytest.raises(PerfError, match="confidence"):
            compare_records(baseline, baseline, confidence=1.5)


class TestRendering:
    def _comparison(self):
        return compare_records(_sampled("b", [1.0, 1.0, 1.0]),
                               _sampled("c", [2.0, 2.0, 2.0]))

    def test_text_names_the_metric(self):
        text = render_text(self._comparison())
        assert "REGRESSED" in text
        assert "bench:e4:governor=rl :: latency_s" in text
        assert "1 regressed, 0 improved" in text

    def test_text_hides_unchanged_unless_verbose(self):
        comparison = compare_records(_sampled("b", [1.0]), _sampled("c", [1.0]))
        assert "UNCHANGED" not in render_text(comparison)
        assert "UNCHANGED" in render_text(comparison, verbose=True)

    def test_json_is_machine_readable(self):
        payload = json.loads(render_json(self._comparison()))
        assert payload["ok"] is False
        assert payload["verdicts"][0]["status"] == "regressed"
        assert payload["verdicts"][0]["metric"] == "latency_s"

    def test_github_annotations(self):
        out = render_github(self._comparison())
        assert out.startswith("::error title=perf regression::")
        clean = compare_records(_sampled("b", [1.0]), _sampled("c", [1.0]))
        assert render_github(clean).startswith("::notice")


class TestGate:
    def test_regression_exits_one(self):
        comparison = compare_records(_sampled("b", [1.0]), _sampled("c", [2.0]))
        result = gate(comparison)
        assert isinstance(result, GateResult)
        assert result.exit_code == 1

    def test_clean_comparison_passes(self):
        comparison = compare_records(_sampled("b", [1.0]), _sampled("c", [1.0]))
        assert gate(comparison).exit_code == 0

    def test_warn_only_forces_pass(self):
        comparison = compare_records(_sampled("b", [1.0]), _sampled("c", [2.0]))
        result = gate(comparison, warn_only=True)
        assert result.exit_code == 0 and result.warn_only


class TestPerfCli:
    def _write_run(self, path, run_id, latency_s):
        record_run(
            "bench", "e4_decision_latency", {"decision_latency_s.p95": latency_s},
            {"governor": "rl"}, run_id=run_id, path=path,
        )

    def test_gate_catches_injected_slowdown(self, tmp_path, capsys):
        """The acceptance check: a 2x decision-latency slowdown in the
        newest run exits 1 and names the metric."""
        path = tmp_path / "ledger.jsonl"
        for i in range(5):
            self._write_run(path, f"base{i}", 1e-3)
        self._write_run(path, "slow", 2e-3)
        code = main(["perf", "gate", "--ledger", str(path)])
        out = capsys.readouterr().out
        assert code == 1
        assert "REGRESSED" in out
        assert "decision_latency_s.p95" in out

    def test_gate_passes_identical_runs(self, tmp_path, capsys):
        path = tmp_path / "ledger.jsonl"
        for i in range(5):
            self._write_run(path, f"base{i}", 1e-3)
        self._write_run(path, "same", 1e-3)
        assert main(["perf", "gate", "--ledger", str(path)]) == 0
        assert "0 regressed" in capsys.readouterr().out

    def test_gate_single_run_is_vacuous_pass(self, tmp_path, capsys):
        path = tmp_path / "ledger.jsonl"
        self._write_run(path, "only", 1e-3)
        assert main(["perf", "gate", "--ledger", str(path)]) == 0
        assert "nothing to compare" in capsys.readouterr().out

    def test_gate_warn_only_reports_but_passes(self, tmp_path, capsys):
        path = tmp_path / "ledger.jsonl"
        self._write_run(path, "b0", 1e-3)
        self._write_run(path, "slow", 2e-3)
        code = main(["perf", "gate", "--warn-only", "--ledger", str(path)])
        captured = capsys.readouterr()
        assert code == 0
        assert "REGRESSED" in captured.out

    def test_gate_against_baseline_ledger(self, tmp_path):
        baseline = tmp_path / "baseline.jsonl"
        current = tmp_path / "current.jsonl"
        self._write_run(baseline, "b0", 1e-3)
        self._write_run(current, "c0", 2e-3)
        code = main([
            "perf", "gate", "--baseline", str(baseline),
            "--ledger", str(current),
        ])
        assert code == 1

    def test_compare_two_ledgers(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.jsonl"
        current = tmp_path / "current.jsonl"
        self._write_run(baseline, "b0", 1e-3)
        self._write_run(current, "c0", 1e-3)
        code = main([
            "perf", "compare", str(baseline), "--ledger", str(current),
        ])
        assert code == 0
        assert "1 metric(s)" in capsys.readouterr().out

    def test_compare_json_format(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.jsonl"
        current = tmp_path / "current.jsonl"
        self._write_run(baseline, "b0", 1e-3)
        self._write_run(current, "c0", 2e-3)
        code = main([
            "perf", "compare", str(baseline), "--ledger", str(current),
            "--format", "json",
        ])
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        assert payload["ok"] is False

    def test_list_shows_records(self, tmp_path, capsys):
        path = tmp_path / "ledger.jsonl"
        self._write_run(path, "r0", 1e-3)
        assert main(["perf", "list", "--ledger", str(path)]) == 0
        out = capsys.readouterr().out
        assert "e4_decision_latency" in out
        assert "bench" in out

    def test_missing_ledger_is_an_error(self, tmp_path, capsys):
        code = main(["perf", "list", "--ledger", str(tmp_path / "no.jsonl")])
        assert code == 1
        assert "error" in capsys.readouterr().err

    def test_run_ledger_flag_records(self, tmp_path, capsys, monkeypatch):
        path = tmp_path / "ledger.jsonl"
        monkeypatch.setenv(LEDGER_ENV_VAR, str(path))
        code = main([
            "run", "--chip", "tiny", "--scenario", "audio_playback",
            "--governor", "ondemand", "--duration", "1.0", "--ledger",
        ])
        assert code == 0
        assert "ledger: recorded" in capsys.readouterr().out
        records = read_ledger(path)
        assert len(records) == 1
        rec = records[0]
        assert rec.kind == "run"
        assert rec.config["governor"] == "ondemand"
        assert "energy_per_qos_j" in rec.metrics
        # --ledger forces metrics capture, so latency quantiles travel too.
        assert "sim.decision_latency_s.p95" in rec.metrics
