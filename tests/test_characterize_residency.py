"""Workload characterisation and frequency-residency statistics."""

import pytest

from repro.errors import SimulationError, WorkloadError
from repro.governors.performance import PerformanceGovernor
from repro.governors.conservative import ConservativeGovernor
from repro.sim.engine import Simulator
from repro.sim.residency import residency
from repro.workload.characterize import compare_profiles, profile
from repro.workload.scenarios import get_scenario
from repro.workload.trace import Trace

from conftest import unit


class TestProfile:
    def test_flat_trace_burstiness_one(self):
        units = [
            unit(uid=i, release=i * 0.1, work=1e6, deadline=i * 0.1 + 0.1)
            for i in range(20)
        ]
        p = profile(Trace(units=units, duration_s=2.0), window_s=0.1)
        assert p.burstiness == pytest.approx(1.0)
        assert p.demand_cv == pytest.approx(0.0)

    def test_bursty_trace_high_burstiness(self):
        # All work in the first window of a long horizon.
        units = [unit(uid=i, release=0.001 * i, work=1e6, deadline=0.5)
                 for i in range(10)]
        p = profile(Trace(units=units, duration_s=2.0), window_s=0.1)
        assert p.burstiness == pytest.approx(20.0)

    def test_mean_rate_matches_trace(self):
        trace = get_scenario("gaming").trace(10.0, seed=0)
        p = profile(trace)
        assert p.mean_rate == pytest.approx(trace.mean_demand_rate)

    def test_kind_shares_sum_to_one(self):
        trace = get_scenario("web_browsing").trace(10.0, seed=0)
        p = profile(trace)
        assert sum(p.kind_shares.values()) == pytest.approx(1.0)
        assert p.dominant_kind() in trace.kinds()

    def test_tightness_reflects_deadline_pressure(self):
        easy = Trace(units=[unit(work=1e6, deadline=1.0)], duration_s=1.0)
        hard = Trace(units=[unit(work=3e7, deadline=0.02)], duration_s=1.0)
        assert profile(hard).tightness > profile(easy).tightness
        assert profile(hard).tightness > 1.0  # infeasible on a 1 GHz core

    def test_gaming_is_burstier_than_video(self):
        gaming = profile(get_scenario("gaming").trace(30.0, seed=0))
        video = profile(get_scenario("video_playback").trace(30.0, seed=0))
        assert gaming.demand_cv > video.demand_cv

    def test_empty_trace_rejected(self):
        with pytest.raises(WorkloadError):
            profile(Trace(units=[], duration_s=1.0))

    def test_bad_window_rejected(self):
        trace = Trace(units=[unit()], duration_s=1.0)
        with pytest.raises(WorkloadError):
            profile(trace, window_s=0.0)

    def test_summary_renders(self):
        p = profile(get_scenario("gaming").trace(5.0, seed=0))
        text = p.summary()
        assert "demand" in text and "deadlines" in text

    def test_compare_profiles_table(self):
        ps = [profile(get_scenario(n).trace(5.0, seed=0))
              for n in ("gaming", "audio_playback")]
        table = compare_profiles(ps)
        assert "burstiness" in table
        with pytest.raises(WorkloadError):
            compare_profiles([])


class TestResidency:
    def run_with_samples(self, chip, trace, factory):
        return Simulator(chip, trace, factory, record_samples=True).run()

    def test_performance_sits_at_top(self, tiny_chip, steady_trace):
        result = self.run_with_samples(tiny_chip, steady_trace,
                                       lambda c: PerformanceGovernor())
        reports = residency(result, n_opps={"cpu": 3})
        r = reports["cpu"]
        # Samples record the OPP in effect *during* each interval, and the
        # governor jumps to the top before the first drain.
        assert r.counts[2] == r.total_intervals
        assert r.mean_opp == pytest.approx(2.0)
        assert r.switches == 0

    def test_conservative_moves_gradually(self, tiny_chip, steady_trace):
        result = self.run_with_samples(tiny_chip, steady_trace,
                                       lambda c: ConservativeGovernor())
        r = residency(result, n_opps={"cpu": 3})["cpu"]
        assert 0.0 <= r.switch_rate <= 1.0
        assert r.total_intervals == result.intervals

    def test_fractions_sum_to_one(self, tiny_chip, steady_trace):
        result = self.run_with_samples(tiny_chip, steady_trace,
                                       lambda c: PerformanceGovernor())
        r = residency(result)["cpu"]
        assert sum(r.fractions) == pytest.approx(1.0)

    def test_requires_samples(self, tiny_chip, steady_trace):
        result = Simulator(tiny_chip, steady_trace,
                           lambda c: PerformanceGovernor()).run()
        with pytest.raises(SimulationError, match="record_samples"):
            residency(result)

    def test_n_opps_too_small_rejected(self, tiny_chip, steady_trace):
        result = self.run_with_samples(tiny_chip, steady_trace,
                                       lambda c: PerformanceGovernor())
        with pytest.raises(SimulationError, match="smaller"):
            residency(result, n_opps={"cpu": 1})

    def test_render(self, tiny_chip, steady_trace):
        result = self.run_with_samples(tiny_chip, steady_trace,
                                       lambda c: PerformanceGovernor())
        text = residency(result)["cpu"].render()
        assert "opp" in text and "switch rate" in text
