"""The batched rollout backend: vectorisation plans and bit-identity.

The contract under test is absolute: for every rollout the batch
backend claims it can vectorise, its result must equal the serial
:class:`repro.sim.engine.Simulator`'s **bit for bit** — ``==`` on every
float, never ``pytest.approx``.
"""

from __future__ import annotations

import pytest

from repro.batch import (
    BatchEngine,
    TABLE_FREE_GOVERNORS,
    fixed_opp_index,
    is_vectorisable,
    run_batch,
)
from repro.fleet.spec import JobSpec
from repro.fleet.worker import simulate_spec
from repro.soc.presets import PRESETS
from repro.workload.scenarios import SCENARIOS


def _assert_bit_identical(serial, batch) -> None:
    assert batch.governor == serial.governor
    assert batch.trace_name == serial.trace_name
    assert batch.duration_s == serial.duration_s
    assert batch.intervals == serial.intervals
    assert batch.opp_switches == serial.opp_switches
    # Exact float equality, component by component — the whole point.
    assert batch.total_energy_j == serial.total_energy_j
    assert batch.dynamic_energy_j == serial.dynamic_energy_j
    assert batch.leakage_energy_j == serial.leakage_energy_j
    assert batch.uncore_energy_j == serial.uncore_energy_j
    assert batch.qos == serial.qos
    assert batch.energy_per_qos_j == serial.energy_per_qos_j


class TestPlans:
    def test_table_free_set(self):
        assert TABLE_FREE_GOVERNORS == {"performance", "powersave", "userspace"}

    def test_fixed_opp_indices(self):
        chip = PRESETS["exynos5422"]()
        for cluster in chip.clusters:
            table = cluster.spec.opp_table
            assert fixed_opp_index("performance", table) == table.max_index
            assert fixed_opp_index("powersave", table) == 0
            assert fixed_opp_index("userspace", table) == table.max_index // 2
            assert fixed_opp_index("ondemand", table) is None

    def test_is_vectorisable(self):
        base = JobSpec(scenario="idle", governor="performance")
        assert is_vectorisable(base)
        from dataclasses import replace

        assert not is_vectorisable(replace(base, governor="ondemand"))
        assert not is_vectorisable(replace(base, governor="rl-policy"))
        assert not is_vectorisable(replace(base, full_system=True))
        assert not is_vectorisable(replace(base, collect_metrics=True))
        assert not is_vectorisable(replace(base, trace_dir="/tmp/t"))

    def test_plan_respects_force_serial(self):
        specs = [JobSpec(scenario="idle", governor="performance")]
        assert BatchEngine(specs).plan() == [True]
        assert BatchEngine(specs, force_serial=True).plan() == [False]

    def test_plan_mixed_governors(self):
        specs = [
            JobSpec(scenario="idle", governor="performance"),
            JobSpec(scenario="idle", governor="ondemand"),
        ]
        assert BatchEngine(specs).plan() == [True, False]


class TestBitIdentity:
    @pytest.mark.parametrize("governor", sorted(TABLE_FREE_GOVERNORS))
    @pytest.mark.parametrize("scenario", sorted(SCENARIOS))
    def test_matches_serial_engine(self, scenario, governor):
        spec = JobSpec(scenario=scenario, governor=governor, seed=100,
                       duration_s=2.0)
        [batch] = run_batch([spec])
        _assert_bit_identical(simulate_spec(spec), batch)

    def test_across_seeds_and_chips(self):
        specs = [
            JobSpec(scenario="gaming", governor="powersave", seed=seed,
                    chip=chip, duration_s=2.0)
            for seed in (100, 271, 999)
            for chip in ("exynos5422", "tiny")
        ]
        for spec, batch in zip(specs, run_batch(specs)):
            _assert_bit_identical(simulate_spec(spec), batch)

    def test_run_batch_mixed_plan_falls_back(self):
        """Non-vectorisable rollouts silently take the serial engine and
        still match it exactly."""
        specs = [
            JobSpec(scenario="idle", governor="performance", duration_s=1.0),
            JobSpec(scenario="idle", governor="ondemand", duration_s=1.0),
        ]
        for spec, batch in zip(specs, run_batch(specs)):
            _assert_bit_identical(simulate_spec(spec), batch)

    def test_force_serial_identical_output(self):
        specs = [JobSpec(scenario="web_browsing", governor="userspace",
                         duration_s=1.0)]
        fast = run_batch(specs)
        slow = run_batch(specs, force_serial=True)
        _assert_bit_identical(slow[0], fast[0])

    def test_obs_session_disables_vectorisation(self):
        """With observability on, the serial engine must run (it owns
        the spans/counters); the plan degrades rather than dropping
        telemetry."""
        from repro.obs import capture

        specs = [JobSpec(scenario="idle", governor="performance",
                         duration_s=1.0)]
        with capture(trace=False):
            assert BatchEngine(specs).plan() == [False]
            batch = run_batch(specs)
        _assert_bit_identical(simulate_spec(specs[0]), batch[0])
