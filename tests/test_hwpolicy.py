"""The hardware-backed RL governor."""

import pytest

from repro.core.config import PolicyConfig
from repro.core.policy import RLPowerManagementPolicy
from repro.errors import PolicyError
from repro.hw.hwpolicy import HardwareRLPolicy
from repro.sim.engine import Simulator


class TestHardwareRLPolicy:
    def test_runs_in_simulator(self, tiny_chip, steady_trace):
        policy = HardwareRLPolicy()
        result = Simulator(tiny_chip, steady_trace, {"cpu": policy}).run()
        assert result.intervals > 0
        assert policy.datapath is not None
        assert policy.datapath.updates > 0

    def test_latency_accounted_per_decision(self, tiny_chip, steady_trace):
        policy = HardwareRLPolicy()
        result = Simulator(tiny_chip, steady_trace, {"cpu": policy}).run()
        assert policy.decisions == result.intervals
        assert policy.total_latency_s > 0
        assert policy.mean_decision_latency_s < 1e-6

    def test_decide_before_reset_raises(self, tiny_chip):
        from repro.sim.telemetry import initial_observation

        policy = HardwareRLPolicy()
        with pytest.raises(PolicyError):
            policy.decide(initial_observation("cpu", 0, 3, 5e8, 1.5e9, 0.01))

    def test_offline_mode_freezes_bram(self, tiny_chip, steady_trace):
        policy = HardwareRLPolicy()
        Simulator(tiny_chip, steady_trace, {"cpu": policy}).run()
        updates = policy.datapath.updates
        policy.online = False
        Simulator(tiny_chip, steady_trace, {"cpu": policy}).run()
        assert policy.datapath.updates == updates

    def test_learning_persists_across_runs(self, tiny_chip, steady_trace):
        policy = HardwareRLPolicy()
        Simulator(tiny_chip, steady_trace, {"cpu": policy}).run()
        first = policy.datapath.updates
        Simulator(tiny_chip, steady_trace, {"cpu": policy}).run()
        assert policy.datapath.updates > first

    def test_load_from_trained_software_policy(self, tiny_chip, steady_trace):
        soft = RLPowerManagementPolicy()
        for _ in range(3):
            Simulator(tiny_chip, steady_trace, {"cpu": soft}).run()
        hard = HardwareRLPolicy(online=False)
        hard.load_from_software(soft)
        # Greedy decisions from the quantised table must be valid and the
        # policy must run.
        result = Simulator(tiny_chip, steady_trace, {"cpu": hard}).run()
        assert result.qos.n_units == len(steady_trace)

    def test_load_from_untrained_policy_rejected(self):
        with pytest.raises(PolicyError):
            HardwareRLPolicy().load_from_software(RLPowerManagementPolicy())

    def test_hw_and_sw_agree_greedily_after_transfer(self, tiny_chip, steady_trace):
        """E7's core check: after quantising a trained table, the hardware
        policy's greedy run matches the software policy's greedy run in
        QoS terms (same decisions up to quantisation ties)."""
        soft = RLPowerManagementPolicy()
        for _ in range(5):
            Simulator(tiny_chip, steady_trace, {"cpu": soft}).run()
        soft.online = False
        sw_result = Simulator(tiny_chip, steady_trace, {"cpu": soft}).run()

        hard = HardwareRLPolicy(online=False)
        hard.load_from_software(soft)
        hw_result = Simulator(tiny_chip, steady_trace, {"cpu": hard}).run()

        assert hw_result.qos.mean_qos == pytest.approx(sw_result.qos.mean_qos, abs=0.05)
        assert hw_result.total_energy_j == pytest.approx(
            sw_result.total_energy_j, rel=0.15
        )

    def test_rebind_mismatch_rejected(self, tiny_chip, big_little_chip):
        policy = HardwareRLPolicy()
        policy.reset(tiny_chip.cluster("cpu"))  # 3-OPP table
        with pytest.raises(PolicyError):
            policy.reset(big_little_chip.cluster("big"))  # 10-OPP table

    def test_custom_config_action_count(self, tiny_chip, steady_trace):
        cfg = PolicyConfig(action_deltas=(-1, 0, 1))
        policy = HardwareRLPolicy(cfg)
        Simulator(tiny_chip, steady_trace, {"cpu": policy}).run()
        assert policy.datapath.n_actions == 3
