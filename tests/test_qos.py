"""QoS scoring and the energy-per-QoS metric."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.qos.energy_per_qos import (
    energy_per_qos,
    energy_per_qos_j,
    improvement_percent,
)
from repro.qos.metrics import QoSReport, evaluate_jobs, soft_qos
from repro.workload.task import Job

from conftest import unit


class TestSoftQoS:
    def test_on_time_is_perfect(self):
        assert soft_qos(-0.5, grace_s=1.0) == 1.0
        assert soft_qos(0.0, grace_s=1.0) == 1.0

    def test_linear_degradation(self):
        assert soft_qos(0.5, grace_s=1.0) == pytest.approx(0.5)

    def test_beyond_grace_is_zero(self):
        assert soft_qos(1.5, grace_s=1.0) == 0.0

    def test_bad_grace(self):
        with pytest.raises(ConfigurationError):
            soft_qos(0.0, grace_s=0.0)

    @given(
        late_a=st.floats(min_value=-1.0, max_value=5.0),
        late_b=st.floats(min_value=-1.0, max_value=5.0),
    )
    def test_monotone_nonincreasing_in_lateness(self, late_a, late_b):
        lo, hi = sorted([late_a, late_b])
        assert soft_qos(lo, 1.0) >= soft_qos(hi, 1.0)


def completed_job(lateness_s: float, slack: float = 0.1) -> Job:
    u = unit(uid=completed_job.uid, deadline=slack)
    completed_job.uid += 1
    job = Job(u)
    job.execute(u.work, now_s=u.deadline_s + lateness_s)
    return job


completed_job.uid = 0


class TestEvaluateJobs:
    def setup_method(self):
        completed_job.uid = 0

    def test_all_on_time(self):
        jobs = [completed_job(-0.01) for _ in range(5)]
        report = evaluate_jobs(jobs)
        assert report.mean_qos == 1.0
        assert report.deadline_miss_rate == 0.0
        assert report.n_on_time == 5
        assert report.n_dropped == 0

    def test_unfinished_jobs_are_dropped(self):
        jobs = [completed_job(-0.01), Job(unit(uid=99))]
        report = evaluate_jobs(jobs)
        assert report.n_units == 2
        assert report.n_completed == 1
        assert report.n_dropped == 1
        assert report.mean_qos == pytest.approx(0.5)

    def test_late_jobs_degrade_qos(self):
        # grace = 2.0 * slack = 0.2 s; lateness 0.1 -> qos 0.5.
        report = evaluate_jobs([completed_job(0.1)], grace_factor=2.0)
        assert report.mean_qos == pytest.approx(0.5)
        assert report.deadline_miss_rate == 1.0
        assert report.mean_lateness_s == pytest.approx(0.1)

    def test_very_late_job_counts_dropped(self):
        report = evaluate_jobs([completed_job(10.0)], grace_factor=2.0)
        assert report.mean_qos == 0.0
        assert report.n_dropped == 1

    def test_empty_jobs_perfect_vacuous(self):
        report = evaluate_jobs([])
        assert report.n_units == 0
        assert report.mean_qos == 1.0

    def test_bad_grace_factor(self):
        with pytest.raises(ConfigurationError):
            evaluate_jobs([], grace_factor=0.0)

    def test_mean_lateness_only_over_late(self):
        report = evaluate_jobs([completed_job(-0.05), completed_job(0.1)])
        assert report.mean_lateness_s == pytest.approx(0.1)


class TestEnergyPerQoS:
    def report(self, qos: float, n: int = 10) -> QoSReport:
        return QoSReport(
            n_units=n, n_completed=n, n_on_time=n, n_dropped=0,
            mean_qos=qos, deadline_miss_rate=0.0, mean_lateness_s=0.0,
        )

    def test_basic(self):
        assert energy_per_qos_j(10.0, self.report(1.0, n=10)) == pytest.approx(1.0)

    def test_lower_qos_costs_more(self):
        full = energy_per_qos_j(10.0, self.report(1.0))
        half = energy_per_qos_j(10.0, self.report(0.5))
        assert half == pytest.approx(2 * full)

    def test_zero_qos_is_infinite(self):
        assert energy_per_qos_j(10.0, self.report(0.0)) == float("inf")

    def test_zero_units_rejected(self):
        with pytest.raises(ConfigurationError):
            energy_per_qos_j(1.0, self.report(1.0, n=0))

    def test_negative_energy_rejected(self):
        with pytest.raises(ConfigurationError):
            energy_per_qos_j(-1.0, self.report(1.0))

    def test_pre_rename_alias(self):
        assert energy_per_qos is energy_per_qos_j

    def test_improvement_percent(self):
        assert improvement_percent(100.0, 68.34) == pytest.approx(31.66)

    def test_improvement_negative_when_worse(self):
        assert improvement_percent(100.0, 120.0) == pytest.approx(-20.0)

    def test_improvement_bad_baseline(self):
        with pytest.raises(ConfigurationError):
            improvement_percent(0.0, 1.0)


class TestQoSReportValidation:
    def test_rejects_out_of_range_mean(self):
        with pytest.raises(ConfigurationError):
            QoSReport(1, 1, 1, 0, 1.5, 0.0, 0.0)
