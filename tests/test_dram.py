"""The LPDDR DRAM power model and its engine integration."""

import pytest

from repro.errors import ConfigurationError
from repro.governors.performance import PerformanceGovernor
from repro.mem.dram import DRAMModel
from repro.sim.engine import Simulator
from repro.workload.trace import Trace

from conftest import unit


class TestDRAMModel:
    def test_access_energy_scales_with_traffic(self):
        dram = DRAMModel(bytes_per_cycle=0.1, energy_per_byte_j=40e-12,
                         active_background_w=0.0, standby_w=0.0, self_refresh_w=0.0)
        p1 = dram.interval_power_w(1e7, 0.01)
        p2 = dram.interval_power_w(2e7, 0.01)
        assert p2 == pytest.approx(2 * p1)
        # 1e7 cycles * 0.1 B/cy = 1e6 B over 10 ms = 1e8 B/s * 40 pJ/B.
        assert p1 == pytest.approx(1e8 * 40e-12)

    def test_bandwidth_clamped_at_peak(self):
        dram = DRAMModel(peak_bandwidth_bps=1e9, active_background_w=0.0,
                         standby_w=0.0, self_refresh_w=0.0)
        unclamped = dram.interval_power_w(1e8, 0.01)  # 1.2e9 B/s demanded
        assert unclamped == pytest.approx(1e9 * dram.energy_per_byte_j)
        assert dram.saturated_intervals == 1

    def test_state_progression_to_self_refresh(self):
        dram = DRAMModel(self_refresh_after_s=0.05)
        dram.interval_power_w(1e6, 0.01)
        assert dram.state == "active"
        for _ in range(4):
            dram.interval_power_w(0.0, 0.01)
        assert dram.state == "standby"
        dram.interval_power_w(0.0, 0.01)
        assert dram.state == "self-refresh"

    def test_self_refresh_saves_power(self):
        dram = DRAMModel()
        active = dram.interval_power_w(1e7, 0.01)
        for _ in range(100):
            idle = dram.interval_power_w(0.0, 0.01)
        assert idle < active
        assert idle == pytest.approx(dram.self_refresh_w)

    def test_traffic_exits_self_refresh(self):
        dram = DRAMModel(self_refresh_after_s=0.01)
        dram.interval_power_w(0.0, 0.01)
        assert dram.state == "self-refresh"
        dram.interval_power_w(1e6, 0.01)
        assert dram.state == "active"

    def test_reset(self):
        dram = DRAMModel(self_refresh_after_s=0.01)
        dram.interval_power_w(0.0, 0.01)
        dram.reset()
        assert dram.state == "active"
        assert dram.saturated_intervals == 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            DRAMModel(bytes_per_cycle=-1.0)
        with pytest.raises(ConfigurationError):
            DRAMModel(standby_w=0.5, active_background_w=0.1)
        with pytest.raises(ConfigurationError):
            DRAMModel().interval_power_w(-1.0, 0.01)


class TestEngineIntegration:
    def test_memory_adds_energy(self, tiny_chip, steady_trace):
        base = Simulator(tiny_chip, steady_trace, lambda c: PerformanceGovernor()).run()
        tiny_chip.reset()
        with_mem = Simulator(
            tiny_chip, steady_trace, lambda c: PerformanceGovernor(),
            memory=DRAMModel(),
        ).run()
        assert with_mem.total_energy_j > base.total_energy_j
        assert with_mem.uncore_energy_j > base.uncore_energy_j
        # Compute-side energy is untouched.
        assert with_mem.dynamic_energy_j == pytest.approx(base.dynamic_energy_j)

    def test_idle_trace_lands_in_self_refresh(self, tiny_chip):
        trace = Trace(units=[unit(work=1e6, deadline=0.05)], duration_s=2.0)
        memory = DRAMModel(self_refresh_after_s=0.05)
        Simulator(tiny_chip, trace, lambda c: PerformanceGovernor(),
                  memory=memory).run()
        assert memory.state == "self-refresh"
