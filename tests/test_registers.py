"""The MMIO register map: packing, unpacking, mailbox semantics."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import HardwareModelError
from repro.hw.fixed_point import DEFAULT_QFORMAT, QFormat
from repro.hw.registers import (
    RegisterFile,
    pack_decision,
    pack_obs0,
    pack_obs1,
    unpack_decision,
    unpack_obs0,
    unpack_obs1,
)


class TestObs0:
    def test_roundtrip(self):
        digits = (3, 1, 4, 2)
        assert unpack_obs0(pack_obs0(digits)) == digits

    def test_layout(self):
        word = pack_obs0((0x11, 0x22, 0x33, 0x44))
        assert word == 0x44332211

    def test_arity_checked(self):
        with pytest.raises(HardwareModelError):
            pack_obs0((1, 2, 3))

    def test_byte_range_checked(self):
        with pytest.raises(HardwareModelError):
            pack_obs0((256, 0, 0, 0))

    @given(st.tuples(*[st.integers(0, 255)] * 4))
    def test_roundtrip_property(self, digits):
        assert unpack_obs0(pack_obs0(digits)) == digits


class TestObs1:
    fmt = DEFAULT_QFORMAT  # Q7.8, 16 bits

    def test_positive_reward_roundtrip(self):
        word = pack_obs1(1.5, self.fmt, learn=True)
        reward, learn = unpack_obs1(word, self.fmt)
        assert reward == pytest.approx(1.5)
        assert learn

    def test_negative_reward_two_complement(self):
        word = pack_obs1(-2.25, self.fmt, learn=False)
        reward, learn = unpack_obs1(word, self.fmt)
        assert reward == pytest.approx(-2.25)
        assert not learn

    def test_saturates_at_format_limits(self):
        word = pack_obs1(-1e9, self.fmt)
        reward, _ = unpack_obs1(word, self.fmt)
        assert reward == self.fmt.min_value

    def test_wide_format_rejected(self):
        with pytest.raises(HardwareModelError, match="16 bits"):
            pack_obs1(0.0, QFormat(11, 12))

    def test_reserved_bits_rejected(self):
        with pytest.raises(HardwareModelError, match="reserved"):
            unpack_obs1(1 << 20, self.fmt)

    @given(reward=st.floats(min_value=-120.0, max_value=120.0),
           learn=st.booleans())
    def test_roundtrip_within_half_lsb(self, reward, learn):
        word = pack_obs1(reward, self.fmt, learn)
        back, back_learn = unpack_obs1(word, self.fmt)
        assert abs(back - reward) <= self.fmt.resolution / 2 + 1e-12
        assert back_learn == learn


class TestDecision:
    def test_roundtrip(self):
        word = pack_decision(action=3, seq=100, valid=True)
        assert unpack_decision(word) == (3, 100, True)

    def test_seq_wraps_at_15_bits(self):
        word = pack_decision(0, seq=0x8001)
        assert unpack_decision(word)[1] == 1

    def test_action_range_checked(self):
        with pytest.raises(HardwareModelError):
            pack_decision(300, 0)


class TestRegisterFile:
    def make(self) -> RegisterFile:
        return RegisterFile(qformat=DEFAULT_QFORMAT)

    def test_observation_path(self):
        rf = self.make()
        rf.write_observation((1, 2, 3, 0), reward=-0.5, learn=True)
        digits, reward, learn = rf.consume_observation()
        assert digits == (1, 2, 3, 0)
        assert reward == pytest.approx(-0.5)
        assert learn
        assert rf.writes == 1

    def test_decision_mailbox(self):
        rf = self.make()
        rf.publish_decision(2)
        action, seq = rf.read_decision()
        assert action == 2
        assert seq == 1

    def test_double_read_raises(self):
        rf = self.make()
        rf.publish_decision(1)
        rf.read_decision()
        with pytest.raises(HardwareModelError, match="empty"):
            rf.read_decision()

    def test_sequence_increments_per_publish(self):
        rf = self.make()
        seqs = []
        for action in (0, 1, 2):
            rf.publish_decision(action)
            seqs.append(rf.read_decision()[1])
        assert seqs == [1, 2, 3]

    def test_empty_mailbox_at_start(self):
        with pytest.raises(HardwareModelError):
            self.make().read_decision()
