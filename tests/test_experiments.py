"""The experiments package: each experiment runs end-to-end at miniature
scale and produces coherent, typed results."""

import pytest

from repro.core.config import PolicyConfig
from repro.experiments import (
    a1_state_ablation,
    a2_reward_sweep,
    a4_wordlength,
    a6_fpga_resources,
    e1_energy_per_qos,
    e2_per_scenario,
    e3_qos_preservation,
    e4_decision_latency,
    e5_learning_curve,
    e7_hw_fidelity,
    run_headline_sweep,
    static_oracle,
    x2_seed_stability,
)
from repro.hw.fixed_point import QFormat
from repro.workload.scenarios import get_scenario

# One small sweep shared by the headline-view tests.
SMALL_KW = dict(duration_s=4.0, train_episodes=2)


@pytest.fixture(scope="module")
def small_sweep():
    return run_headline_sweep(
        scenario_names=["audio_playback", "video_playback"],
        governor_names=["performance", "powersave", "ondemand"],
        **SMALL_KW,
    )


class TestHeadlineViews:
    def test_e1(self, small_sweep):
        result = e1_energy_per_qos(small_sweep)
        assert "E1" in result.report
        assert result.rl_j > 0
        assert set(result.per_governor_improvement) == {
            "performance", "powersave", "ondemand",
        }
        # Internal consistency of the improvement computation.
        expected = 100 * (result.mean_of_six_j - result.rl_j) / result.mean_of_six_j
        assert result.improvement_percent == pytest.approx(expected)

    def test_e2(self, small_sweep):
        result = e2_per_scenario(small_sweep)
        assert ("audio_playback", "rl-policy") in result.cells_j
        assert len(result.cells_j) == 2 * 4
        # rl_within with a huge factor is trivially true.
        assert result.rl_within("audio_playback", 1e9)

    def test_e3(self, small_sweep):
        result = e3_qos_preservation(small_sweep)
        assert set(result.mean_qos) == {
            "performance", "powersave", "ondemand", "rl-policy",
        }
        assert all(0.0 <= q <= 1.0 for q in result.mean_qos.values())
        assert result.mean_energy_j["performance"] > 0


class TestLatencyExperiment:
    def test_e4_structure(self):
        result = e4_decision_latency()
        assert result.typical.speedup > 1.0
        assert result.best_case.speedup > result.typical.speedup
        assert len(result.rows) == 7  # little-cluster OPP count
        assert "E4" in result.report


class TestLearningExperiments:
    def test_e5_small(self):
        result = e5_learning_curve(
            scenario_name="audio_playback", episodes=2, episode_duration_s=3.0
        )
        assert len(result.curve) == 3  # untrained + 2 episodes
        assert result.curve[0][0] == 0
        assert result.start_j > 0
        assert result.tail_qos(n=2) <= 1.0
        assert "sparkline" not in result.report  # rendered, not the word
        assert "E5" in result.report


class TestHardwareExperiments:
    def test_e7_small(self):
        result = e7_hw_fidelity(
            scenario_name="audio_playback", train_episodes=2,
            episode_duration_s=3.0,
        )
        assert set(result.agreements) == {"big", "little"}
        assert result.mean_hw_latency_s < 1e-6
        assert result.energy_per_qos_delta >= 0.0

    def test_a4_small(self):
        result = a4_wordlength(
            formats=[QFormat(3, 4), QFormat(7, 8)],
            scenario_name="audio_playback",
            train_episodes=2,
            episode_duration_s=3.0,
        )
        assert len(result.rows) == 2
        assert result.row("Q7.8").qformat.width == 16
        with pytest.raises(KeyError):
            result.row("Q9.9")

    def test_a6(self):
        result = a6_fpga_resources()
        assert result.reference_fits()
        assert all(rtl == ana for _, rtl, ana in result.rtl_checks)


class TestAblationExperiments:
    def test_a1_small(self):
        variants = {
            "full": PolicyConfig(),
            "util-only": PolicyConfig(trend_bins=1, slack_bins=1, opp_bins=1),
        }
        result = a1_state_ablation(
            variants=variants, scenario_name="audio_playback",
            train_episodes=2, episode_duration_s=3.0,
        )
        assert set(result.results) == {"full", "util-only"}

    def test_a2_small(self):
        result = a2_reward_sweep(
            lambdas=[0.0, 1.0], scenario_name="audio_playback",
            train_episodes=2, episode_duration_s=3.0,
        )
        assert set(result.results) == {0.0, 1.0}

    def test_static_oracle_beats_nothing_fancy(self):
        trace = get_scenario("audio_playback").trace(3.0, seed=5)
        oracle = static_oracle(trace, opp_stride=4)
        assert oracle.qos.n_units > 0
        assert oracle.total_energy_j > 0


class TestRobustnessExperiments:
    def test_x2_small(self):
        result = x2_seed_stability(
            scenario_name="audio_playback",
            governor_names=["ondemand"],
            eval_seeds=[100, 200],
            duration_s=3.0,
            train_episodes=2,
        )
        assert set(result.measures) == {"rl-policy", "ondemand"}
        assert result.measures["rl-policy"].n == 2
