"""Whole-program analysis: summaries, graphs, RPL9xx rules, cache, CLI."""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.cli import main
from repro.lint import analyze_paths, check_paths
from repro.lint.baseline import Baseline, filter_findings
from repro.lint.flow import (
    CallGraph,
    ImportGraph,
    Project,
    SummaryCache,
    CachedAnalysis,
    extra_inputs_digest,
    layer_of,
    module_name,
    summarize_source,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"


def write_tree(tmp_path: Path, files: dict[str, str]) -> Path:
    """Materialise package-relative sources under a ``src`` anchor."""
    root = tmp_path / "src"
    for rel, content in files.items():
        p = root / rel
        p.parent.mkdir(parents=True, exist_ok=True)
        p.write_text(textwrap.dedent(content))
    return root


def flow_codes(result) -> list[str]:
    return [f.code for f in result.findings]


@pytest.fixture(autouse=True)
def _isolated_lintcache(tmp_path, monkeypatch):
    """Keep every test's default cache away from the repo checkout."""
    monkeypatch.setenv("REPRO_LINTCACHE_DIR", str(tmp_path / "_lintcache"))


# ---------------------------------------------------------------------------
# Summaries
# ---------------------------------------------------------------------------


class TestModuleSummary:
    def test_module_name_variants(self):
        assert module_name("src/repro/sim/engine.py") == "sim.engine"
        assert module_name("sim/__init__.py") == "sim"
        assert module_name("src/repro/__init__.py") == "repro"

    def test_imports_module_level_vs_deferred(self):
        s = summarize_source(
            textwrap.dedent(
                """
                import time
                from a.b import c

                def f():
                    from x.y import z
                    return z
                """
            ),
            "sim/x.py",
        )
        by_target = {r.target: r.deferred for r in s.imports}
        assert by_target == {"time": False, "a.b.c": False, "x.y.z": True}

    def test_type_checking_imports_excluded(self):
        s = summarize_source(
            textwrap.dedent(
                """
                from typing import TYPE_CHECKING

                if TYPE_CHECKING:
                    from repro.fleet.events import FleetEvent
                """
            ),
            "obs/x.py",
        )
        targets = {r.target for r in s.imports}
        assert "repro.fleet.events.FleetEvent" not in targets

    def test_function_calls_and_nondet(self):
        s = summarize_source(
            textwrap.dedent(
                """
                import time
                from util.clock import now

                def helper():
                    return 1

                def f():
                    helper()
                    now()
                    return time.time()
                """
            ),
            "util/x.py",
        )
        f = next(fn for fn in s.functions if fn.qualname == "f")
        kinds = {(c.target, c.kind) for c in f.calls}
        assert ("helper", "local") in kinds
        assert ("util.clock.now", "resolved") in kinds
        assert [h.code for h in f.nondet] == ["RPL001"]

    def test_async_await_hazard_extracted(self):
        s = summarize_source(
            textwrap.dedent(
                """
                class H:
                    async def handle(self):
                        n = self.count
                        await self.refresh()
                        self.count = n + 1
                """
            ),
            "serve/x.py",
        )
        fn = s.functions[0]
        assert fn.is_async
        assert [h.attr for h in fn.await_hazards] == ["count"]

    def test_round_trip_mapping(self):
        s = summarize_source(
            "import time\n\n\ndef f():  # noqa: RPL001\n    return time.time()\n",
            "sim/x.py",
        )
        again = type(s).from_mapping(s.to_mapping())
        assert again == s


# ---------------------------------------------------------------------------
# Layers and graphs
# ---------------------------------------------------------------------------


class TestLayers:
    def test_known_and_unknown_packages(self):
        assert layer_of("sim.engine") == ("model", 2)
        assert layer_of("serve.server") == ("scale-out", 5)
        assert layer_of("errors") == ("foundation", 0)
        assert layer_of("some_fixture.mod") is None


class TestGraphs:
    def tree(self, tmp_path):
        return write_tree(
            tmp_path,
            {
                "util/clock.py": "def now():\n    return 0\n",
                "util/mid.py": (
                    "from util.clock import now\n\n"
                    "def step():\n    return now()\n"
                ),
                "sim/engine.py": (
                    "from util.mid import step\n\n"
                    "def run():\n    return step()\n"
                ),
            },
        )

    def project(self, tmp_path) -> Project:
        root = self.tree(tmp_path)
        return analyze_paths([root], cache=False).project

    def test_import_edges(self, tmp_path):
        g = ImportGraph(self.project(tmp_path))
        pairs = {(e.src, e.dst) for e in g.edges}
        assert ("sim.engine", "util.mid") in pairs
        assert ("util.mid", "util.clock") in pairs

    def test_call_reachability_and_chain(self, tmp_path):
        g = CallGraph(self.project(tmp_path))
        parents = g.reachable(["sim.engine.run"])
        assert "util.clock.now" in parents
        chain = CallGraph.chain(parents, "util.clock.now")
        assert chain == ["sim.engine.run", "util.mid.step", "util.clock.now"]

    def test_cycle_detection(self, tmp_path):
        root = write_tree(
            tmp_path,
            {
                "alpha/x.py": "from beta.y import g\n\ndef f():\n    return g\n",
                "beta/y.py": "from alpha.x import f\n\ndef g():\n    return f\n",
            },
        )
        project = analyze_paths([root], cache=False, flow=False).project
        cycles = ImportGraph(project).cycles()
        assert cycles == [["alpha.x", "beta.y"]]

    def test_deferred_imports_do_not_cycle(self, tmp_path):
        root = write_tree(
            tmp_path,
            {
                "alpha/x.py": (
                    "def f():\n    from beta.y import g\n    return g\n"
                ),
                "beta/y.py": "from alpha.x import f\n\ndef g():\n    return f\n",
            },
        )
        project = analyze_paths([root], cache=False, flow=False).project
        assert ImportGraph(project).cycles() == []

    def test_renderers(self, tmp_path):
        project = self.project(tmp_path)
        imports = ImportGraph(project)
        assert "digraph imports" in imports.to_dot()
        payload = json.loads(imports.to_json())
        assert "sim.engine" in payload["modules"]
        calls = CallGraph(project)
        assert "digraph calls" in calls.to_dot()
        assert "sim.engine.run" in json.loads(calls.to_json())["functions"]


# ---------------------------------------------------------------------------
# RPL901 — layering
# ---------------------------------------------------------------------------


class TestLayering:
    def test_upward_import_flagged(self, tmp_path):
        root = write_tree(
            tmp_path,
            {
                "serve/server.py": "def launch():\n    return 1\n",
                "sim/policy.py": (
                    "from serve.server import launch\n\n"
                    "def go():\n    return launch()\n"
                ),
            },
        )
        r = analyze_paths([root], cache=False)
        assert flow_codes(r) == ["RPL901"]
        f = r.findings[0]
        assert f.path.endswith("sim/policy.py")
        assert f.line == 1
        assert "serve" in f.message and "model" in f.message

    def test_downward_import_clean(self, tmp_path):
        root = write_tree(
            tmp_path,
            {
                "sim/engine.py": "def run():\n    return 1\n",
                "serve/server.py": (
                    "from sim.engine import run\n\n"
                    "def launch():\n    return run()\n"
                ),
            },
        )
        assert flow_codes(analyze_paths([root], cache=False)) == []

    def test_module_cycle_flagged(self, tmp_path):
        root = write_tree(
            tmp_path,
            {
                "alpha/x.py": "from beta.y import g\n\ndef f():\n    return g\n",
                "beta/y.py": "from alpha.x import f\n\ndef g():\n    return f\n",
            },
        )
        r = analyze_paths([root], cache=False)
        assert flow_codes(r) == ["RPL901"]
        assert "import cycle" in r.findings[0].message

    def test_noqa_suppresses_flow_finding(self, tmp_path):
        root = write_tree(
            tmp_path,
            {
                "serve/server.py": "def launch():\n    return 1\n",
                "sim/policy.py": (
                    "from serve.server import launch  # noqa: RPL901\n\n"
                    "def go():\n    return launch()\n"
                ),
            },
        )
        r = analyze_paths([root], cache=False)
        assert flow_codes(r) == []
        assert [f.code for f in r.suppressed] == ["RPL901"]


# ---------------------------------------------------------------------------
# RPL902 — interprocedural determinism taint (the acceptance fixture)
# ---------------------------------------------------------------------------


class TestDeterminismTaint:
    def taint_tree(self, tmp_path):
        """A wall-clock call three modules away from sim.engine.run."""
        return write_tree(
            tmp_path,
            {
                "util/clock.py": (
                    "import time\n\n"
                    "def now():\n"
                    "    return time.time()\n"
                ),
                "util/mid.py": (
                    "from util.clock import now\n\n"
                    "def step():\n"
                    "    return now()\n"
                ),
                "sim/engine.py": (
                    "from util.mid import step\n\n"
                    "def run():\n"
                    "    return step()\n"
                ),
            },
        )

    def test_transitive_hazard_reported_with_chain(self, tmp_path):
        r = analyze_paths([self.taint_tree(tmp_path)], cache=False)
        taint = [f for f in r.findings if f.code == "RPL902"]
        assert len(taint) == 1
        f = taint[0]
        assert f.path.endswith("util/clock.py")
        assert f.line == 4  # the time.time() call itself
        assert (
            "sim.engine.run -> util.mid.step -> util.clock.now" in f.message
        )
        assert "time.time" in f.message

    def test_no_flow_disables_taint(self, tmp_path):
        r = analyze_paths([self.taint_tree(tmp_path)], cache=False, flow=False)
        assert [f for f in r.findings if f.code == "RPL902"] == []

    def test_in_scope_hazard_left_to_rpl001(self, tmp_path):
        root = write_tree(
            tmp_path,
            {
                "sim/helpers.py": (
                    "import time\n\n"
                    "def stamp():\n"
                    "    return time.time()\n"
                ),
                "sim/engine.py": (
                    "from sim.helpers import stamp\n\n"
                    "def run():\n"
                    "    return stamp()\n"
                ),
            },
        )
        r = analyze_paths([root], cache=False)
        assert flow_codes(r).count("RPL001") == 1
        assert "RPL902" not in flow_codes(r)

    def test_unreachable_hazard_not_reported(self, tmp_path):
        root = write_tree(
            tmp_path,
            {
                "util/clock.py": (
                    "import time\n\ndef now():\n    return time.time()\n"
                ),
                "sim/engine.py": "def run():\n    return 1\n",
            },
        )
        r = analyze_paths([root], cache=False)
        assert "RPL902" not in flow_codes(r)


# ---------------------------------------------------------------------------
# RPL903 — await-spanning shared state
# ---------------------------------------------------------------------------


class TestAwaitSharedState:
    def test_unguarded_span_flagged(self, tmp_path):
        root = write_tree(
            tmp_path,
            {
                "serve/state.py": (
                    "class Handler:\n"
                    "    async def handle(self):\n"
                    "        n = self.count\n"
                    "        await self.refresh()\n"
                    "        self.count = n + 1\n"
                ),
            },
        )
        r = analyze_paths([root], cache=False)
        assert flow_codes(r) == ["RPL903"]
        f = r.findings[0]
        assert f.line == 5
        assert "self.count" in f.message and "await" in f.message

    def test_lock_guarded_write_clean(self, tmp_path):
        root = write_tree(
            tmp_path,
            {
                "serve/state.py": (
                    "class Handler:\n"
                    "    async def handle(self):\n"
                    "        n = self.count\n"
                    "        await self.refresh()\n"
                    "        async with self._lock:\n"
                    "            self.count = n + 1\n"
                ),
            },
        )
        assert flow_codes(analyze_paths([root], cache=False)) == []

    def test_write_before_await_clean(self, tmp_path):
        root = write_tree(
            tmp_path,
            {
                "serve/state.py": (
                    "class Handler:\n"
                    "    async def handle(self):\n"
                    "        self.count += 1\n"
                    "        await self.refresh()\n"
                ),
            },
        )
        assert flow_codes(analyze_paths([root], cache=False)) == []

    def test_outside_serve_not_flagged(self, tmp_path):
        root = write_tree(
            tmp_path,
            {
                "batch/state.py": (
                    "class Handler:\n"
                    "    async def handle(self):\n"
                    "        n = self.count\n"
                    "        await self.refresh()\n"
                    "        self.count = n + 1\n"
                ),
            },
        )
        assert flow_codes(analyze_paths([root], cache=False)) == []


# ---------------------------------------------------------------------------
# RPL904 — transitive blocking
# ---------------------------------------------------------------------------


class TestTransitiveBlocking:
    def test_cross_module_chain_flagged(self, tmp_path):
        root = write_tree(
            tmp_path,
            {
                "util/io.py": (
                    "import time\n\n"
                    "def pause():\n"
                    "    time.sleep(1)\n\n"
                    "def load():\n"
                    "    return pause()\n"
                ),
                "serve/app.py": (
                    "from util.io import load\n\n"
                    "class Server:\n"
                    "    async def handle(self):\n"
                    "        return load()\n"
                ),
            },
        )
        r = analyze_paths([root], cache=False)
        assert flow_codes(r) == ["RPL904"]
        f = r.findings[0]
        assert f.path.endswith("serve/app.py")
        assert f.line == 5  # the load() call site, not the sleep
        assert "util.io.load -> util.io.pause" in f.message
        assert "time.sleep" in f.message

    def test_async_callee_not_followed(self, tmp_path):
        root = write_tree(
            tmp_path,
            {
                "serve/app.py": (
                    "import asyncio\n\n"
                    "class Server:\n"
                    "    async def nap(self):\n"
                    "        await asyncio.sleep(0)\n\n"
                    "    async def handle(self):\n"
                    "        return await self.nap()\n"
                ),
            },
        )
        assert flow_codes(analyze_paths([root], cache=False)) == []

    def test_sync_caller_not_flagged(self, tmp_path):
        root = write_tree(
            tmp_path,
            {
                "serve/app.py": (
                    "import time\n\n"
                    "def pause():\n"
                    "    time.sleep(1)\n\n"
                    "def sync_entry():\n"
                    "    return pause()\n"
                ),
            },
        )
        assert flow_codes(analyze_paths([root], cache=False)) == []


# ---------------------------------------------------------------------------
# RPL910 — unused suppressions
# ---------------------------------------------------------------------------


class TestUnusedNoqa:
    def one_file(self, tmp_path, line: str) -> Path:
        return write_tree(tmp_path, {"sim/x.py": f"import time\n{line}\n"})

    def test_unused_rpl_noqa_flagged(self, tmp_path):
        root = self.one_file(
            tmp_path, "x = time.perf_counter()  # noqa: RPL001"
        )
        r = analyze_paths([root], cache=False)
        assert flow_codes(r) == ["RPL910"]
        assert "RPL001" in r.findings[0].message

    def test_used_noqa_not_flagged(self, tmp_path):
        root = self.one_file(tmp_path, "x = time.time()  # noqa: RPL001")
        r = analyze_paths([root], cache=False)
        assert flow_codes(r) == []
        assert [f.code for f in r.suppressed] == ["RPL001"]

    def test_foreign_code_ignored(self, tmp_path):
        root = self.one_file(tmp_path, "x = 1  # noqa: F401")
        assert flow_codes(analyze_paths([root], cache=False)) == []

    def test_unknown_rpl_code_flagged(self, tmp_path):
        root = self.one_file(tmp_path, "x = 1  # noqa: RPL999")
        r = analyze_paths([root], cache=False)
        assert flow_codes(r) == ["RPL910"]
        assert "not a registered rule" in r.findings[0].message

    def test_bare_noqa_ignored(self, tmp_path):
        root = self.one_file(tmp_path, "x = 1  # noqa")
        assert flow_codes(analyze_paths([root], cache=False)) == []

    def test_rpl910_suppresses_itself(self, tmp_path):
        root = self.one_file(tmp_path, "x = 1  # noqa: RPL001, RPL910")
        r = analyze_paths([root], cache=False)
        assert flow_codes(r) == []
        assert [f.code for f in r.suppressed] == ["RPL910"]

    def test_docstring_noqa_not_a_suppression(self, tmp_path):
        root = write_tree(
            tmp_path,
            {"sim/x.py": '"""Use ``# noqa: RPL001`` to suppress."""\n'},
        )
        assert flow_codes(analyze_paths([root], cache=False)) == []

    def test_flow_code_exempt_without_flow(self, tmp_path):
        root = write_tree(
            tmp_path,
            {"serve/x.py": "x = 1  # noqa: RPL903\n"},
        )
        off = analyze_paths([root], cache=False, flow=False)
        assert flow_codes(off) == []
        on = analyze_paths([root], cache=False, flow=True)
        assert flow_codes(on) == ["RPL910"]

    def test_unselected_code_exempt(self, tmp_path):
        root = self.one_file(
            tmp_path, "x = time.perf_counter()  # noqa: RPL001"
        )
        r = analyze_paths([root], cache=False, select=["RPL910"])
        assert flow_codes(r) == []


# ---------------------------------------------------------------------------
# The summary cache
# ---------------------------------------------------------------------------


class TestSummaryCache:
    def taint_tree(self, tmp_path):
        return TestDeterminismTaint().taint_tree(tmp_path)

    def test_warm_run_hits_with_identical_findings(self, tmp_path):
        root = self.taint_tree(tmp_path)
        cache_dir = tmp_path / "cache"
        cold = analyze_paths([root], cache_dir=cache_dir)
        warm = analyze_paths([root], cache_dir=cache_dir)
        assert cold.cache_hits == 0 and cold.cache_misses == 3
        assert warm.cache_hits == 3 and warm.cache_misses == 0
        assert warm.findings == cold.findings
        assert warm.suppressed == cold.suppressed

    def test_source_edit_invalidates_one_file(self, tmp_path):
        root = self.taint_tree(tmp_path)
        cache_dir = tmp_path / "cache"
        analyze_paths([root], cache_dir=cache_dir)
        clock = root / "util" / "clock.py"
        clock.write_text("def now():\n    return 0\n")
        again = analyze_paths([root], cache_dir=cache_dir)
        assert again.cache_hits == 2 and again.cache_misses == 1
        assert "RPL902" not in flow_codes(again)

    def test_engine_version_bump_invalidates_all(self, tmp_path, monkeypatch):
        root = self.taint_tree(tmp_path)
        cache_dir = tmp_path / "cache"
        analyze_paths([root], cache_dir=cache_dir)
        monkeypatch.setattr(
            "repro.lint.flow.cache.LINT_ENGINE_VERSION", "999-test"
        )
        again = analyze_paths([root], cache_dir=cache_dir, jobs=1)
        assert again.cache_hits == 0 and again.cache_misses == 3

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = SummaryCache(tmp_path / "cache")
        source = "def f():\n    return 1\n"
        key = SummaryCache.key("sim/x.py", source)
        analysis = CachedAnalysis(
            findings=(), suppressed=(),
            summary=summarize_source(source, "sim/x.py"),
        )
        assert cache.store(key, analysis)
        assert cache.probe(key) == analysis
        cache.path_for(key).write_text("{not json")
        assert cache.probe(key) is None
        assert cache.hits == 1 and cache.misses == 1

    def test_key_depends_on_extra_inputs(self):
        a = SummaryCache.key("hw/x.py", "x = 1\n", "digest-a")
        b = SummaryCache.key("hw/x.py", "x = 1\n", "digest-b")
        assert a != b

    def test_extra_inputs_digest_tracks_register_map(self, tmp_path):
        assert extra_inputs_digest(None) == "none"
        assert extra_inputs_digest(tmp_path) == "none"
        reg = tmp_path / "src" / "repro" / "hw" / "registers.py"
        reg.parent.mkdir(parents=True)
        reg.write_text("OBS1_REWARD_BITS = 16\n")
        first = extra_inputs_digest(tmp_path)
        assert first != "none"
        reg.write_text("OBS1_REWARD_BITS = 12\n")
        assert extra_inputs_digest(tmp_path) != first


# ---------------------------------------------------------------------------
# Parallel driver
# ---------------------------------------------------------------------------


class TestParallelJobs:
    def test_jobs_parity(self, tmp_path):
        root = TestDeterminismTaint().taint_tree(tmp_path)
        serial = analyze_paths([root], cache=False, jobs=1)
        parallel = analyze_paths([root], cache=False, jobs=2)
        assert parallel.findings == serial.findings
        assert parallel.suppressed == serial.suppressed
        assert parallel.files_checked == serial.files_checked

    def test_check_paths_gains_jobs_but_stays_per_file(self, tmp_path):
        root = write_tree(
            tmp_path,
            {
                "serve/server.py": "def launch():\n    return 1\n",
                "sim/policy.py": (
                    "from serve.server import launch\n\n"
                    "def go():\n    return launch()\n"
                ),
            },
        )
        r = check_paths([root], jobs=2)
        assert [f.code for f in r.findings] == []  # no flow rules here
        flow = analyze_paths([root], cache=False)
        assert flow_codes(flow) == ["RPL901"]


# ---------------------------------------------------------------------------
# Statistics output
# ---------------------------------------------------------------------------


class TestStatistics:
    @pytest.fixture()
    def tree(self, tmp_path):
        return write_tree(
            tmp_path,
            {"sim/x.py": "import time\nSTART = time.time()\n"},
        )

    def test_text_statistics(self, tree, capsys):
        main(["check", str(tree), "--no-baseline", "--statistics"])
        out = capsys.readouterr().out
        assert "statistics:" in out
        assert "files checked: 1" in out
        assert "RPL001: 1" in out
        assert "sim/x.py: 1" in out

    def test_json_statistics(self, tree, capsys):
        main(["check", str(tree), "--no-baseline", "--statistics",
              "--format", "json"])
        data = json.loads(capsys.readouterr().out)
        stats = data["statistics"]
        assert stats["files_checked"] == 1
        assert stats["by_code"] == {"RPL001": 1}
        assert len(stats["by_path"]) == 1
        assert stats["flow"] is True

    def test_github_statistics(self, tree, capsys):
        main(["check", str(tree), "--no-baseline", "--statistics",
              "--format", "github"])
        out = capsys.readouterr().out
        assert "::notice title=repro check statistics::" in out
        assert "RPL001=1" in out


# ---------------------------------------------------------------------------
# Graph CLI
# ---------------------------------------------------------------------------


class TestGraphCli:
    @pytest.fixture()
    def tree(self, tmp_path):
        return TestGraphs().tree(tmp_path)

    def test_imports_json(self, tree, capsys):
        assert main(["graph", "imports", str(tree), "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        edges = {(e["from"], e["to"]) for e in payload["edges"]}
        assert ("sim.engine", "util.mid") in edges

    def test_imports_dot(self, tree, capsys):
        assert main(["graph", "imports", str(tree)]) == 0
        assert "digraph imports" in capsys.readouterr().out

    def test_calls_json(self, tree, capsys):
        assert main(["graph", "calls", str(tree), "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        edges = {(e["from"], e["to"]) for e in payload["edges"]}
        assert ("sim.engine.run", "util.mid.step") in edges


# ---------------------------------------------------------------------------
# Baseline interplay (flow findings + fingerprint edge cases)
# ---------------------------------------------------------------------------


class TestBaselineWithFlow:
    def violating_tree(self, tmp_path):
        return write_tree(
            tmp_path,
            {
                "serve/server.py": "def launch():\n    return 1\n",
                "sim/policy.py": (
                    "from serve.server import launch\n\n"
                    "def go():\n    return launch()\n"
                ),
            },
        )

    def test_write_baseline_round_trip(self, tmp_path, capsys):
        root = self.violating_tree(tmp_path)
        baseline = tmp_path / "lint-baseline.json"
        assert main(["check", str(root), "--baseline", str(baseline),
                     "--write-baseline"]) == 0
        assert main(["check", str(root), "--baseline", str(baseline)]) == 0
        out = capsys.readouterr().out
        assert "1 accepted by baseline" in out

    def test_fixed_violation_goes_stale(self, tmp_path, capsys):
        root = self.violating_tree(tmp_path)
        baseline = tmp_path / "lint-baseline.json"
        main(["check", str(root), "--baseline", str(baseline),
              "--write-baseline"])
        (root / "sim" / "policy.py").write_text("def go():\n    return 1\n")
        capsys.readouterr()
        assert main(["check", str(root), "--baseline", str(baseline)]) == 0
        assert "stale" in capsys.readouterr().err

    def test_duplicate_lines_counted_by_occurrence(self, tmp_path):
        root = write_tree(
            tmp_path,
            {
                "sim/x.py": (
                    "import time\n"
                    "x = time.time()\n"
                    "x = time.time()\n"
                ),
            },
        )
        r = analyze_paths([root], cache=False)
        assert flow_codes(r) == ["RPL001", "RPL001"]
        baseline = Baseline.from_findings(r.findings)
        assert len(baseline) == 2  # occurrence suffix disambiguates
        split = filter_findings(r.findings, baseline)
        assert len(split.accepted) == 2 and not split.new and not split.stale
        # Fixing one occurrence: the other stays accepted, one goes stale.
        split = filter_findings(r.findings[:1], baseline)
        assert len(split.accepted) == 1
        assert len(split.stale) == 1
        assert not split.new


# ---------------------------------------------------------------------------
# Repo gate
# ---------------------------------------------------------------------------


class TestRepoGateFlow:
    def test_src_tree_flow_clean(self):
        r = analyze_paths([SRC], cache=False)
        assert r.findings == []

    def test_repo_import_graph_is_layerable(self):
        r = analyze_paths([SRC], cache=False, flow=False)
        assert ImportGraph(r.project).cycles() == []
