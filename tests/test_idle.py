"""cpuidle: C-state tables, menu governor, engine/power integration."""

import pytest

from repro.errors import ConfigurationError
from repro.governors.powersave import PowersaveGovernor
from repro.idle.cstates import CState, CStateTable, mobile_cstates
from repro.idle.governor import MenuIdleGovernor
from repro.power.model import PowerModel
from repro.sim.engine import Simulator
from repro.workload.trace import Trace

from conftest import unit


class TestCState:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CState("x", power_fraction=1.5, target_residency_s=0, exit_latency_s=0)
        with pytest.raises(ConfigurationError):
            CState("x", power_fraction=0.5, target_residency_s=-1, exit_latency_s=0)


class TestCStateTable:
    def test_mobile_table_structure(self):
        table = mobile_cstates()
        assert len(table) == 3
        assert table[0].name == "WFI"
        assert table[2].power_fraction < table[1].power_fraction < 1.0

    def test_shallowest_must_be_full_power(self):
        with pytest.raises(ConfigurationError, match="1.0"):
            CStateTable([CState("a", 0.5, 0.0, 0.0)])

    def test_deeper_must_save_more(self):
        with pytest.raises(ConfigurationError, match="save more"):
            CStateTable([
                CState("a", 1.0, 0.0, 0.0),
                CState("b", 1.0, 1e-3, 1e-4),
            ])

    def test_deeper_must_need_longer_residency(self):
        with pytest.raises(ConfigurationError, match="residency"):
            CStateTable([
                CState("a", 1.0, 1e-3, 0.0),
                CState("b", 0.5, 1e-3, 1e-4),
            ])

    def test_deepest_allowed_by_residency(self):
        table = mobile_cstates()
        assert table.deepest_allowed(10e-6) == 0   # too short for core-off
        assert table.deepest_allowed(500e-6) == 1  # core-off pays off
        assert table.deepest_allowed(50e-3) == 2   # cluster-off pays off

    def test_latency_limit_vetoes_deep_states(self):
        table = mobile_cstates()
        assert table.deepest_allowed(50e-3, latency_limit_s=100e-6) == 1
        assert table.deepest_allowed(50e-3, latency_limit_s=1e-6) == 0

    def test_negative_prediction_rejected(self):
        with pytest.raises(ConfigurationError):
            mobile_cstates().deepest_allowed(-1.0)


class TestMenuIdleGovernor:
    def test_long_idle_reaches_cluster_off(self):
        gov = MenuIdleGovernor()
        for _ in range(20):
            gov.observe("c0", idle_s=0.01, interval_s=0.01)
        assert gov.state_name("c0") == "cluster-off"
        assert gov.power_fraction("c0") == pytest.approx(0.05)

    def test_busy_core_stays_shallow(self):
        gov = MenuIdleGovernor()
        for _ in range(20):
            gov.observe("c0", idle_s=0.00001, interval_s=0.01)
        assert gov.state_name("c0") == "WFI"

    def test_activity_resets_idle_run(self):
        gov = MenuIdleGovernor()
        for _ in range(20):
            gov.observe("c0", idle_s=0.01, interval_s=0.01)
        gov.observe("c0", idle_s=0.0005, interval_s=0.01)
        # After a busy interval the contiguous run restarts; the EWMA
        # still remembers high idle, so the state may stay deep, but the
        # run tracker must have reset.
        assert gov._idle_run["c0"] == pytest.approx(0.0005)

    def test_unknown_core_defaults_shallow(self):
        gov = MenuIdleGovernor()
        assert gov.power_fraction("never-seen") == 1.0

    def test_idle_beyond_interval_rejected(self):
        with pytest.raises(ConfigurationError):
            MenuIdleGovernor().observe("c0", idle_s=0.02, interval_s=0.01)

    def test_reset(self):
        gov = MenuIdleGovernor()
        gov.observe("c0", 0.01, 0.01)
        gov.reset()
        assert gov.power_fraction("c0") == 1.0

    def test_latency_limit_plumbs_through(self):
        gov = MenuIdleGovernor(latency_limit_s=100e-6)
        for _ in range(30):
            gov.observe("c0", 0.01, 0.01)
        assert gov.state_name("c0") == "core-off"  # cluster-off vetoed


class TestPowerModelIdleScales:
    def test_idle_scale_reduces_power(self, tiny_chip):
        model = PowerModel(uncore_w=0.0)
        cluster = tiny_chip.cluster("cpu")
        shallow = model.cluster_power(cluster, idle_scales=[1.0])
        deep = model.cluster_power(cluster, idle_scales=[0.05])
        assert deep.total_w < shallow.total_w
        assert deep.leakage_w < shallow.leakage_w

    def test_scale_count_checked(self, tiny_chip):
        model = PowerModel()
        with pytest.raises(ConfigurationError):
            model.cluster_power(tiny_chip.cluster("cpu"), idle_scales=[1.0, 1.0])

    def test_busy_core_unaffected_by_scale(self, tiny_chip):
        model = PowerModel(uncore_w=0.0)
        cluster = tiny_chip.cluster("cpu")
        cluster.cores[0].record_interval(5e6, 5e8, 0.01)  # fully busy
        a = model.cluster_power(cluster, idle_scales=[1.0])
        b = model.cluster_power(cluster, idle_scales=[0.05])
        assert a.total_w == pytest.approx(b.total_w)


class TestEngineIntegration:
    def test_idle_governor_cuts_idle_energy(self, tiny_chip):
        # Mostly idle trace: C-states should cut total energy noticeably.
        trace = Trace(
            units=[unit(uid=i, release=i * 0.3, work=1e6, deadline=i * 0.3 + 0.2)
                   for i in range(4)],
            duration_s=1.5,
        )
        base = Simulator(tiny_chip, trace, lambda c: PowersaveGovernor()).run()
        tiny_chip.reset()
        with_idle = Simulator(
            tiny_chip, trace, lambda c: PowersaveGovernor(),
            idle_governor=MenuIdleGovernor(),
        ).run()
        assert with_idle.total_energy_j < base.total_energy_j
        # QoS unchanged: C-states only touch idle power.
        assert with_idle.qos == base.qos
