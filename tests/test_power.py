"""Power models: dynamic CV^2f, leakage, combination, energy metering."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.power.battery import Battery
from repro.power.dynamic import DynamicPowerModel
from repro.power.energy import EnergyMeter
from repro.power.leakage import LeakagePowerModel
from repro.power.model import PowerBreakdown, PowerModel
from repro.soc.cluster import Cluster, ClusterSpec
from repro.soc.core import CoreSpec
from repro.soc.opp import make_table


class TestDynamicPower:
    def test_full_load_is_cv2f(self):
        model = DynamicPowerModel(idle_activity=0.05)
        p = model.core_power_w(ceff_f=1e-9, voltage_v=1.0, freq_hz=1e9, utilization=1.0)
        assert p == pytest.approx(1e-9 * 1.0 * 1e9)

    def test_idle_floor(self):
        model = DynamicPowerModel(idle_activity=0.05)
        p = model.core_power_w(1e-9, 1.0, 1e9, utilization=0.0)
        assert p == pytest.approx(0.05 * 1.0)

    def test_power_quadratic_in_voltage(self):
        model = DynamicPowerModel()
        p1 = model.core_power_w(1e-9, 1.0, 1e9, 1.0)
        p2 = model.core_power_w(1e-9, 2.0, 1e9, 1.0)
        assert p2 / p1 == pytest.approx(4.0)

    def test_power_linear_in_frequency(self):
        model = DynamicPowerModel()
        p1 = model.core_power_w(1e-9, 1.0, 1e9, 1.0)
        p2 = model.core_power_w(1e-9, 1.0, 2e9, 1.0)
        assert p2 / p1 == pytest.approx(2.0)

    def test_rejects_bad_utilization(self):
        with pytest.raises(ConfigurationError):
            DynamicPowerModel().core_power_w(1e-9, 1.0, 1e9, 1.5)

    def test_rejects_bad_idle_activity(self):
        with pytest.raises(ConfigurationError):
            DynamicPowerModel(idle_activity=1.5)

    @given(util=st.floats(min_value=0.0, max_value=1.0))
    def test_power_monotone_in_utilization(self, util):
        model = DynamicPowerModel(idle_activity=0.05)
        lo = model.core_power_w(1e-9, 1.0, 1e9, 0.0)
        p = model.core_power_w(1e-9, 1.0, 1e9, util)
        hi = model.core_power_w(1e-9, 1.0, 1e9, 1.0)
        assert lo <= p <= hi


class TestLeakagePower:
    def test_reference_temperature_baseline(self):
        model = LeakagePowerModel(t_ref_c=45.0, beta_per_c=0.028)
        p = model.core_power_w(leak_a_per_v=0.1, voltage_v=1.0, temp_c=45.0)
        assert p == pytest.approx(0.1)

    def test_none_temperature_means_reference(self):
        model = LeakagePowerModel()
        assert model.core_power_w(0.1, 1.0, None) == pytest.approx(
            model.core_power_w(0.1, 1.0, model.t_ref_c)
        )

    def test_doubles_every_25c(self):
        model = LeakagePowerModel(t_ref_c=45.0, beta_per_c=math.log(2) / 25.0)
        p45 = model.core_power_w(0.1, 1.0, 45.0)
        p70 = model.core_power_w(0.1, 1.0, 70.0)
        assert p70 / p45 == pytest.approx(2.0)

    def test_quadratic_in_voltage(self):
        model = LeakagePowerModel()
        assert model.core_power_w(0.1, 1.2) / model.core_power_w(0.1, 0.6) == pytest.approx(4.0)

    def test_rejects_negative_beta(self):
        with pytest.raises(ConfigurationError):
            LeakagePowerModel(beta_per_c=-0.1)


class TestPowerModel:
    def cluster(self) -> Cluster:
        core = CoreSpec("c", capacity=1.0, ceff_f=1e-9, leak_a_per_v=0.05)
        return Cluster(
            ClusterSpec("cpu", core, 2, make_table([1000], [1.0]))
        )

    def test_cluster_power_components(self):
        cluster = self.cluster()
        for c in cluster.cores:
            c.record_interval(1e7, 1e9, 0.01)  # full load
        model = PowerModel()
        p = model.cluster_power(cluster)
        assert p.dynamic_w == pytest.approx(2 * 1e-9 * 1.0 * 1e9)
        assert p.leakage_w == pytest.approx(2 * 0.05)

    def test_chip_power_adds_uncore(self, tiny_chip):
        model = PowerModel(uncore_w=0.5)
        p = model.chip_power(tiny_chip)
        assert p.uncore_w == pytest.approx(0.5)
        assert p.total_w >= 0.5

    def test_breakdown_addition(self):
        a = PowerBreakdown(1.0, 2.0, 0.5)
        b = PowerBreakdown(0.5, 0.5, 0.0)
        c = a + b
        assert c.total_w == pytest.approx(4.5)

    def test_hot_cluster_leaks_more(self):
        cluster = self.cluster()
        model = PowerModel()
        cold = model.cluster_power(cluster, temp_c=45.0)
        hot = model.cluster_power(cluster, temp_c=85.0)
        assert hot.leakage_w > cold.leakage_w
        assert hot.dynamic_w == pytest.approx(cold.dynamic_w)


class TestEnergyMeter:
    def test_accumulates(self):
        meter = EnergyMeter()
        meter.record(PowerBreakdown(1.0, 0.5, 0.25), 0.01)
        meter.record(PowerBreakdown(1.0, 0.5, 0.25), 0.01)
        assert meter.total_j == pytest.approx(2 * 1.75 * 0.01)
        assert meter.samples == 2
        assert meter.elapsed_s == pytest.approx(0.02)

    def test_average_power(self):
        meter = EnergyMeter()
        meter.record(PowerBreakdown(2.0, 0.0), 0.01)
        meter.record(PowerBreakdown(0.0, 0.0), 0.01)
        assert meter.average_power_w == pytest.approx(1.0)

    def test_peak_power(self):
        meter = EnergyMeter()
        meter.record(PowerBreakdown(2.0, 0.0), 0.01)
        meter.record(PowerBreakdown(5.0, 0.0), 0.01)
        meter.record(PowerBreakdown(1.0, 0.0), 0.01)
        assert meter.peak_power_w == pytest.approx(5.0)

    def test_rejects_nonpositive_interval(self):
        with pytest.raises(ConfigurationError):
            EnergyMeter().record(PowerBreakdown(1.0, 0.0), 0.0)

    def test_reset(self):
        meter = EnergyMeter()
        meter.record(PowerBreakdown(1.0, 1.0), 0.01)
        meter.reset()
        assert meter.total_j == 0.0
        assert meter.average_power_w == 0.0

    @given(
        powers=st.lists(
            st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=20
        )
    )
    def test_energy_equals_sum_of_interval_energies(self, powers):
        meter = EnergyMeter()
        for p in powers:
            meter.record(PowerBreakdown(p, 0.0), 0.01)
        assert meter.total_j == pytest.approx(sum(p * 0.01 for p in powers))


class TestBattery:
    def test_full_at_start(self):
        assert Battery().state_of_charge == pytest.approx(1.0)

    def test_drain_reduces_charge(self):
        battery = Battery(capacity_j=100.0, efficiency=1.0)
        battery.drain(25.0)
        assert battery.state_of_charge == pytest.approx(0.75)

    def test_efficiency_inflates_drain(self):
        battery = Battery(capacity_j=100.0, efficiency=0.5)
        battery.drain(25.0)
        assert battery.state_of_charge == pytest.approx(0.5)

    def test_clamps_at_empty(self):
        battery = Battery(capacity_j=10.0, efficiency=1.0)
        battery.drain(100.0)
        assert battery.empty
        assert battery.state_of_charge == pytest.approx(0.0)

    def test_runtime_estimate(self):
        battery = Battery(capacity_j=100.0, efficiency=1.0)
        assert battery.runtime_estimate_s(2.0) == pytest.approx(50.0)

    def test_runtime_estimate_zero_power(self):
        assert Battery().runtime_estimate_s(0.0) == float("inf")

    def test_rejects_negative_drain(self):
        with pytest.raises(ConfigurationError):
            Battery().drain(-1.0)
