"""Device-tree chip loading and timeline CSV export."""

import json

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.governors.ondemand import OndemandGovernor
from repro.sim.engine import Simulator
from repro.sim.timeline import timeline_from_csv, timeline_to_csv
from repro.soc.devicetree import chip_from_dict, chip_from_json, chip_to_dict
from repro.soc.presets import exynos5422


def sample_dict() -> dict:
    return {
        "name": "test-soc",
        "clusters": [
            {
                "name": "big",
                "cores": 2,
                "core": {"name": "A72", "capacity": 2.2, "ceff_f": 5.5e-10,
                         "leak_a_per_v": 0.10, "is_big": True},
                "opps": [[500, 0.90], [1000, 1.00], [2000, 1.25]],
            },
            {
                "name": "little",
                "cores": 4,
                "core": {"name": "A53", "capacity": 1.0, "ceff_f": 1.4e-10,
                         "leak_a_per_v": 0.03},
                "opps": [[400, 0.90], [800, 0.95], [1400, 1.10]],
            },
        ],
    }


class TestChipFromDict:
    def test_builds_chip(self):
        chip = chip_from_dict(sample_dict())
        assert chip.name == "test-soc"
        assert chip.cluster("big").n_cores == 2
        assert chip.cluster("big").spec.core.is_big
        assert chip.cluster("little").spec.opp_table.max_freq_hz == pytest.approx(1.4e9)

    def test_roundtrip_through_dict(self):
        chip = chip_from_dict(sample_dict())
        again = chip_from_dict(chip_to_dict(chip))
        assert again.cluster_names == chip.cluster_names
        assert again.cluster("big").spec.opp_table == chip.cluster("big").spec.opp_table

    def test_preset_roundtrips(self):
        chip = exynos5422()
        again = chip_from_dict(chip_to_dict(chip))
        assert again.n_cores == chip.n_cores

    def test_missing_top_level(self):
        with pytest.raises(ConfigurationError, match="'name' and 'clusters'"):
            chip_from_dict({"clusters": []})

    def test_empty_clusters(self):
        with pytest.raises(ConfigurationError, match="non-empty"):
            chip_from_dict({"name": "x", "clusters": []})

    def test_unknown_cluster_field(self):
        data = sample_dict()
        data["clusters"][0]["turbo"] = True
        with pytest.raises(ConfigurationError, match="unknown fields"):
            chip_from_dict(data)

    def test_missing_cluster_field(self):
        data = sample_dict()
        del data["clusters"][0]["opps"]
        with pytest.raises(ConfigurationError, match="missing fields"):
            chip_from_dict(data)

    def test_unknown_core_field(self):
        data = sample_dict()
        data["clusters"][0]["core"]["volts"] = 1.0
        with pytest.raises(ConfigurationError, match="unknown core fields"):
            chip_from_dict(data)

    def test_bad_opp_entry(self):
        data = sample_dict()
        data["clusters"][0]["opps"] = [[500]]
        with pytest.raises(ConfigurationError, match="freq_mhz, voltage_v"):
            chip_from_dict(data)

    def test_spec_validation_propagates(self):
        data = sample_dict()
        data["clusters"][0]["core"]["capacity"] = -1.0
        with pytest.raises(ConfigurationError):
            chip_from_dict(data)

    def test_loaded_chip_simulates(self, single_unit_trace):
        chip = chip_from_dict(sample_dict())
        result = Simulator(chip, single_unit_trace,
                           lambda c: OndemandGovernor()).run()
        assert result.qos.mean_qos == 1.0


class TestChipFromJson:
    def test_loads_file(self, tmp_path):
        path = tmp_path / "soc.json"
        path.write_text(json.dumps(sample_dict()))
        chip = chip_from_json(path)
        assert chip.name == "test-soc"

    def test_bad_json(self, tmp_path):
        path = tmp_path / "soc.json"
        path.write_text("{broken")
        with pytest.raises(ConfigurationError, match="cannot load"):
            chip_from_json(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(ConfigurationError):
            chip_from_json(tmp_path / "nope.json")


class TestTimeline:
    def test_roundtrip(self, tiny_chip, steady_trace, tmp_path):
        result = Simulator(tiny_chip, steady_trace,
                           lambda c: OndemandGovernor(),
                           record_samples=True).run()
        path = tmp_path / "timeline.csv"
        timeline_to_csv(result, path)
        samples = timeline_from_csv(path)
        assert len(samples) == len(result.samples)
        assert samples[0] == result.samples[0]
        assert samples[-1] == result.samples[-1]

    def test_requires_samples(self, tiny_chip, steady_trace, tmp_path):
        result = Simulator(tiny_chip, steady_trace,
                           lambda c: OndemandGovernor()).run()
        with pytest.raises(SimulationError, match="record_samples"):
            timeline_to_csv(result, tmp_path / "x.csv")

    def test_bad_csv(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\n1,2\n")
        with pytest.raises(SimulationError, match="not a timeline"):
            timeline_from_csv(path)

    def test_bad_row(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("time_s,power_w,queue_jobs,opp_cpu,util_cpu\nx,1,2,0,0.5\n")
        with pytest.raises(SimulationError, match="bad timeline row"):
            timeline_from_csv(path)
