"""The content-addressed run cache and its fleet integration."""

from __future__ import annotations

import json
from dataclasses import replace

import pytest

from repro.cache import (
    CACHE_ENV_VAR,
    DEFAULT_CACHE_DIR,
    RunCache,
    cache_key,
    cacheable,
    resolve_cache_dir,
)
from repro.errors import CacheError
from repro.fleet import (
    EventLog,
    JobCached,
    JobDone,
    JobMeasurement,
    JobQueued,
    JobSpec,
    run_fleet,
)
from repro.soc.presets import tiny_test_chip


def _spec(**kw) -> JobSpec:
    base = dict(scenario="idle", governor="performance", seed=100,
                duration_s=1.0)
    base.update(kw)
    return JobSpec(**base)


def _measurement() -> JobMeasurement:
    return JobMeasurement(
        energy_j=1.25,
        mean_qos=0.875,
        deadline_miss_rate=0.0625,
        energy_per_qos_j=1.25 / 0.875,
        sim_duration_s=1.0,
    )


class TestKeying:
    def test_key_is_stable(self):
        assert cache_key(_spec()) == cache_key(_spec())

    def test_key_covers_every_spec_field(self):
        base = _spec()
        for changed in (
            _spec(seed=200),
            _spec(governor="powersave"),
            _spec(scenario="gaming"),
            _spec(duration_s=2.0),
            _spec(interval_s=0.02),
            _spec(train_episodes=3),
        ):
            assert cache_key(changed) != cache_key(base)

    def test_uncacheable_specs(self):
        assert cacheable(_spec())
        assert not cacheable(_spec(collect_metrics=True))
        assert not cacheable(_spec(trace_dir="/tmp/t"))
        assert not cacheable(_spec(chip_obj=tiny_test_chip()))
        with pytest.raises(CacheError, match="not cacheable"):
            cache_key(_spec(collect_metrics=True))

    def test_resolve_dir_precedence(self, monkeypatch, tmp_path):
        monkeypatch.delenv(CACHE_ENV_VAR, raising=False)
        assert str(resolve_cache_dir(None)) == DEFAULT_CACHE_DIR
        monkeypatch.setenv(CACHE_ENV_VAR, str(tmp_path / "env"))
        assert resolve_cache_dir(None) == tmp_path / "env"
        # An explicit path always beats the environment.
        assert resolve_cache_dir(tmp_path / "x") == tmp_path / "x"


class TestStore:
    def test_roundtrip_is_bit_exact(self, tmp_path):
        cache = RunCache(tmp_path)
        spec, m = _spec(), _measurement()
        assert cache.probe(spec) is None
        assert cache.store(spec, m)
        got = cache.probe(spec)
        assert got == m  # frozen dataclass equality: exact floats

    def test_store_skips_uncacheable(self, tmp_path):
        cache = RunCache(tmp_path)
        assert not cache.store(_spec(collect_metrics=True), _measurement())
        assert cache.stats().entries == 0

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = RunCache(tmp_path)
        spec = _spec()
        cache.store(spec, _measurement())
        cache.path_for(cache_key(spec)).write_text("{not json")
        assert cache.probe(spec) is None

    def test_stale_engine_version_is_a_miss(self, tmp_path):
        cache = RunCache(tmp_path)
        spec = _spec()
        cache.store(spec, _measurement())
        path = cache.path_for(cache_key(spec))
        entry = json.loads(path.read_text())
        entry["engine_version"] = "0.0"
        path.write_text(json.dumps(entry))
        assert cache.probe(spec) is None

    def test_list_stats_clear(self, tmp_path):
        cache = RunCache(tmp_path)
        specs = [_spec(seed=s) for s in (1, 2, 3)]
        for spec in specs:
            cache.store(spec, _measurement())
        entries = cache.list_entries()
        assert len(entries) == 3
        assert {e.job_id for e in entries} == {s.job_id for s in specs}
        stats = cache.stats()
        assert stats.entries == 3
        assert stats.total_bytes > 0
        assert cache.clear() == 3
        assert cache.stats().entries == 0
        assert cache.probe(specs[0]) is None

    def test_obs_counters(self, tmp_path):
        from repro.obs import capture

        cache = RunCache(tmp_path)
        spec = _spec()
        with capture(trace=False) as session:
            assert cache.probe(spec) is None
            cache.store(spec, _measurement())
            assert cache.probe(spec) is not None
            snap = session.metrics.snapshot()
        counters = snap["counters"]
        assert counters["cache.probes"] == 2
        assert counters["cache.misses"] == 1
        assert counters["cache.hits"] == 1
        assert counters["cache.stores"] == 1


def test_job_cached_event_formats():
    from repro.fleet import format_event

    line = format_event(
        JobCached(index=0, job_id="chip/s/g/s100", wall_s=0.0005),
        ts="2026-01-01T00:00:00",
    )
    assert line == "2026-01-01T00:00:00 cache chip/s/g/s100  hit (0.50 ms)"


class TestFleetIntegration:
    GRID = [
        _spec(governor="performance"),
        _spec(governor="powersave"),
    ]

    def test_second_run_is_all_hits(self, tmp_path):
        cache = RunCache(tmp_path)
        cold = run_fleet(self.GRID, jobs=1, cache=cache)
        assert (cold.cache_hits, cold.cache_misses) == (0, 2)

        log = EventLog()
        warm = run_fleet(self.GRID, jobs=1, cache=cache, on_event=log)
        assert (warm.cache_hits, warm.cache_misses) == (2, 0)
        # No job was queued, let alone simulated.
        assert log.count(JobQueued) == 0
        assert log.count(JobDone) == 0
        assert log.count(JobCached) == 2
        # Rows are bit-identical to the cold run, in grid order.
        assert warm.sweep_result().rows == cold.sweep_result().rows
        assert [s.cached for s in warm.successes] == [True, True]
        assert [s.attempts for s in warm.successes] == [0, 0]

    def test_partial_hits_interleave_in_grid_order(self, tmp_path):
        cache = RunCache(tmp_path)
        run_fleet(self.GRID[:1], jobs=1, cache=cache)
        grid = self.GRID + [_spec(governor="userspace")]
        result = run_fleet(grid, jobs=1, cache=cache)
        assert (result.cache_hits, result.cache_misses) == (1, 2)
        assert [s.cached for s in result.successes] == [True, False, False]
        assert [s.index for s in result.successes] == [0, 1, 2]

    def test_uncacheable_jobs_always_execute(self, tmp_path):
        cache = RunCache(tmp_path)
        grid = [replace(self.GRID[0], collect_metrics=True)]
        for _ in range(2):
            result = run_fleet(grid, jobs=1, cache=cache)
            assert (result.cache_hits, result.cache_misses) == (0, 1)
        assert cache.stats().entries == 0

    def test_cache_true_uses_default_dir(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_ENV_VAR, str(tmp_path / "via-env"))
        run_fleet(self.GRID[:1], jobs=1, cache=True)
        warm = run_fleet(self.GRID[:1], jobs=1, cache=True)
        assert warm.cache_hits == 1
        assert (tmp_path / "via-env").is_dir()

    def test_disabled_by_default(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_ENV_VAR, str(tmp_path / "untouched"))
        run_fleet(self.GRID[:1], jobs=1)
        assert not (tmp_path / "untouched").exists()

    def test_pool_run_stores_and_hits(self, tmp_path):
        cache = RunCache(tmp_path)
        grid = [_spec(governor=g, seed=s)
                for g in ("performance", "powersave")
                for s in (100, 200)]
        cold = run_fleet(grid, jobs=2, cache=cache)
        assert cold.cache_misses == 4
        warm = run_fleet(grid, jobs=2, cache=cache)
        assert warm.cache_hits == 4
        assert warm.sweep_result().rows == cold.sweep_result().rows
