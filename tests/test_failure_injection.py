"""Failure injection: the engine and tooling fail loudly, not silently."""

import numpy as np
import pytest

from repro.core.checkpoint import load_policies, save_policies
from repro.core.trainer import train_policy
from repro.errors import PolicyError, SimulationError
from repro.governors.base import Governor
from repro.governors.performance import PerformanceGovernor
from repro.sim.engine import Simulator
from repro.sim.scheduler import Scheduler
from repro.soc.presets import tiny_test_chip

from conftest import unit
from test_trainer import tiny_scenario


class ExplodingGovernor(Governor):
    """Raises midway through a run."""

    name = "exploding"

    def __init__(self):
        super().__init__()
        self.calls = 0

    def decide(self, obs):
        self.calls += 1
        if self.calls > 5:
            raise RuntimeError("governor crashed")
        return 0


class LostScheduler(Scheduler):
    """Routes work to a cluster that does not exist."""

    def assign(self, unit, chip, backlog_work, now_s):
        return "gpu"


class TestEngineFailures:
    def test_governor_exception_propagates(self, tiny_chip, steady_trace):
        gov = ExplodingGovernor()
        with pytest.raises(RuntimeError, match="governor crashed"):
            Simulator(tiny_chip, steady_trace, {"cpu": gov}).run()
        assert gov.calls == 6  # failed fast, not swallowed

    def test_scheduler_unknown_cluster_rejected(self, tiny_chip, single_unit_trace):
        sim = Simulator(
            tiny_chip, single_unit_trace, lambda c: PerformanceGovernor(),
            scheduler=LostScheduler(),
        )
        with pytest.raises(SimulationError, match="unknown cluster"):
            sim.run()

    def test_chip_state_reusable_after_crash(self, tiny_chip, steady_trace):
        """A crashed run must not poison the chip for the next one."""
        with pytest.raises(RuntimeError):
            Simulator(tiny_chip, steady_trace,
                      {"cpu": ExplodingGovernor()}).run()
        result = Simulator(tiny_chip, steady_trace,
                           lambda c: PerformanceGovernor()).run()
        assert result.qos.mean_qos == 1.0


class TestCheckpointCorruption:
    def test_truncated_table_file(self, tmp_path):
        chip = tiny_test_chip()
        training = train_policy(chip, tiny_scenario(), episodes=1,
                                episode_duration_s=2.0)
        ckpt = save_policies(training.policies, tmp_path / "ck")
        table_file = next(ckpt.glob("qtable_*.npz"))
        table_file.write_bytes(b"not a zip")
        with pytest.raises(Exception):  # zipfile/numpy error surfaces
            load_policies(ckpt)

    def test_table_shape_tampering(self, tmp_path):
        chip = tiny_test_chip()
        training = train_policy(chip, tiny_scenario(), episodes=1,
                                episode_duration_s=2.0)
        ckpt = save_policies(training.policies, tmp_path / "ck")
        table_file = next(ckpt.glob("qtable_*.npz"))
        np.savez_compressed(table_file, values=np.zeros((2, 2)))
        with pytest.raises(PolicyError, match="shape"):
            load_policies(ckpt)

    def test_missing_table_file(self, tmp_path):
        chip = tiny_test_chip()
        training = train_policy(chip, tiny_scenario(), episodes=1,
                                episode_duration_s=2.0)
        ckpt = save_policies(training.policies, tmp_path / "ck")
        next(ckpt.glob("qtable_*.npz")).unlink()
        with pytest.raises(Exception):
            load_policies(ckpt)


class TestTraceEdgeAbuse:
    def test_duplicate_jobs_not_double_counted(self, tiny_chip):
        """Each WorkUnit becomes exactly one job even when deadlines tie
        and releases coincide."""
        from repro.workload.trace import Trace

        units = [unit(uid=i, release=0.0, work=1e5, deadline=0.1)
                 for i in range(5)]
        result = Simulator(
            tiny_chip, Trace(units=units, duration_s=0.2),
            lambda c: PerformanceGovernor(),
        ).run()
        assert result.qos.n_units == 5
        assert result.qos.n_completed == 5
