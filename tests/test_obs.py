"""repro.obs core: tracer, metrics, the hub, and the zero-overhead guard."""

from __future__ import annotations

import pytest

from repro.core.trainer import train_policy
from repro.errors import ObsError
from repro.governors import create
from repro.obs import (
    NULL_TRACER,
    OBS,
    MetricsRegistry,
    Tracer,
    capture,
    disable,
    enable,
    format_breakdown,
    histogram_quantile,
    merge_snapshots,
    phase_breakdown,
)
from repro.sim.engine import Simulator
from repro.soc.presets import tiny_test_chip
from repro.workload.scenarios import get_scenario


class TestTracer:
    def test_nested_spans_record_tree(self):
        t = Tracer()
        with t.span("a"):
            with t.span("b", cat="inner", k=1):
                pass
            with t.span("c"):
                pass
        # Spans land in completion order: children before their parent.
        assert [s.name for s in t.spans] == ["b", "c", "a"]
        b, c, a = t.spans
        assert a.parent_uid is None and a.depth == 0
        assert b.parent_uid == a.uid and b.depth == 1
        assert c.parent_uid == a.uid
        assert b.cat == "inner" and b.args == {"k": 1}
        assert t.open_depth == 0

    def test_timestamps_are_relative_microseconds(self):
        t = Tracer()
        handle = t.begin("x")
        t.end(handle)
        span = t.spans[0]
        assert span.start_us >= 0.0
        assert span.dur_us >= 0.0

    def test_out_of_order_close_raises(self):
        t = Tracer()
        outer = t.begin("outer")
        inner = t.begin("inner")
        with pytest.raises(ObsError, match="out of order"):
            t.end(outer)
        t.end(inner)
        t.end(outer)
        with pytest.raises(ObsError, match="no span is open"):
            t.end(outer)

    def test_instants_and_names(self):
        t = Tracer()
        t.instant("tick", cat="test", n=1)
        with t.span("s"):
            pass
        with t.span("s"):
            pass
        assert [i.name for i in t.instants] == ["tick"]
        assert t.instants[0].args == {"n": 1}
        assert t.span_names() == ["s"]
        t.clear()
        assert not t.spans and not t.instants

    def test_null_tracer_is_inert(self):
        n = NULL_TRACER
        assert not n.enabled
        assert n.begin("x") is None
        n.end(None)
        with n.span("x"):
            n.instant("y")
        assert n.span_names() == [] and n.open_depth == 0
        assert n.spans == () and n.instants == ()


class TestMetrics:
    def test_counter_monotonic(self):
        reg = MetricsRegistry()
        c = reg.counter("sim.runs")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5
        with pytest.raises(ObsError, match="cannot decrease"):
            c.inc(-1.0)

    def test_gauge_last_value(self):
        g = MetricsRegistry().gauge("rl.epsilon")
        g.set(0.4)
        g.add(0.1)
        assert g.value == pytest.approx(0.5)

    def test_histogram_buckets(self):
        h = MetricsRegistry().histogram("x", buckets=(1.0, 10.0))
        for v in (0.5, 5.0, 50.0):
            h.observe(v)
        assert h.bucket_counts == [1, 1, 1]
        assert h.count == 3 and h.mean == pytest.approx(55.5 / 3)
        assert h.min == 0.5 and h.max == 50.0

    def test_histogram_rejects_unsorted_bounds(self):
        with pytest.raises(ObsError, match="strictly increasing"):
            MetricsRegistry().histogram("x", buckets=(10.0, 1.0))

    def test_registry_get_or_create_and_type_conflict(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        with pytest.raises(ObsError, match="already registered"):
            reg.gauge("a")
        assert reg.names() == ["a"] and len(reg) == 1

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(2)
        reg.gauge("g").set(1.5)
        reg.histogram("h", buckets=(1.0,)).observe(0.5)
        snap = reg.snapshot()
        assert snap["counters"] == {"c": 2.0}
        assert snap["gauges"] == {"g": 1.5}
        assert snap["histograms"]["h"]["count"] == 1

    def test_merge_snapshots(self):
        def snap(c, g, values):
            reg = MetricsRegistry()
            reg.counter("jobs").inc(c)
            reg.gauge("qos").set(g)
            h = reg.histogram("err", buckets=(1.0, 10.0))
            for v in values:
                h.observe(v)
            return reg.snapshot()

        merged = merge_snapshots([snap(1, 0.8, [0.5]), snap(2, 0.6, [5.0])])
        assert merged["counters"]["jobs"] == 3.0
        assert merged["gauges"]["qos"] == pytest.approx(0.7)
        assert merged["gauges"]["qos.jobs"] == 2.0
        assert merged["histograms"]["err"]["count"] == 2
        assert merged["histograms"]["err"]["bucket_counts"] == [1, 1, 0]

    def test_merge_rejects_incompatible_bounds(self):
        a = {"histograms": {"h": {"bounds": [1.0], "bucket_counts": [0, 0],
                                  "count": 0, "sum": 0.0, "min": None,
                                  "max": None}}}
        b = {"histograms": {"h": {"bounds": [2.0], "bucket_counts": [0, 0],
                                  "count": 0, "sum": 0.0, "min": None,
                                  "max": None}}}
        with pytest.raises(ObsError, match="bounds differ"):
            merge_snapshots([a, b])

    def test_merge_empty_input_is_empty_snapshot(self):
        assert merge_snapshots([]) == {
            "counters": {}, "gauges": {}, "histograms": {}
        }

    def test_merge_disjoint_metric_sets_union(self):
        a = {"counters": {"jobs": 1.0}, "gauges": {"qos": 0.8}}
        b = {"counters": {"retries": 2.0}, "gauges": {"temp": 40.0}}
        merged = merge_snapshots([a, b])
        assert merged["counters"] == {"jobs": 1.0, "retries": 2.0}
        # Each gauge saw exactly one job, so averages are identities.
        assert merged["gauges"]["qos"] == 0.8
        assert merged["gauges"]["temp"] == 40.0
        assert merged["gauges"]["qos.jobs"] == 1.0
        assert merged["gauges"]["temp.jobs"] == 1.0

    def test_merge_histogram_min_max_ignore_empty_jobs(self):
        def snap(values):
            reg = MetricsRegistry()
            h = reg.histogram("h", buckets=(1.0, 10.0))
            for v in values:
                h.observe(v)
            return reg.snapshot()

        merged = merge_snapshots([snap([]), snap([0.5, 5.0]), snap([])])
        h = merged["histograms"]["h"]
        assert h["count"] == 2
        assert h["min"] == 0.5 and h["max"] == 5.0
        empty = merge_snapshots([snap([]), snap([])])["histograms"]["h"]
        assert empty["min"] is None and empty["max"] is None


class TestHistogramQuantile:
    def _snapshot(self, values, buckets=(1.0, 10.0, 100.0)):
        reg = MetricsRegistry()
        h = reg.histogram("h", buckets=buckets)
        for v in values:
            h.observe(v)
        return reg.snapshot()["histograms"]["h"]

    def test_interpolates_inside_bucket(self):
        # 10 observations spread over (1, 10]: the median interpolates
        # halfway into that bucket.
        h = self._snapshot([2.0] * 10)
        assert 1.0 < histogram_quantile(h, 0.5) <= 10.0

    def test_extremes_use_recorded_min_max(self):
        h = self._snapshot([0.2, 0.4, 500.0])
        # The overflow (+Inf) bucket resolves to the recorded max...
        assert histogram_quantile(h, 1.0) == 500.0
        # ...and the first bucket's lower edge is the recorded min.
        assert histogram_quantile(h, 0.0) >= 0.0

    def test_empty_histogram_is_none(self):
        assert histogram_quantile(self._snapshot([]), 0.5) is None

    def test_out_of_range_q_raises(self):
        h = self._snapshot([1.0])
        with pytest.raises(ObsError, match="quantile"):
            histogram_quantile(h, 1.5)
        with pytest.raises(ObsError, match="quantile"):
            histogram_quantile(h, -0.1)

    def test_monotone_in_q(self):
        h = self._snapshot([0.5, 2.0, 3.0, 20.0, 150.0])
        qs = [histogram_quantile(h, q) for q in (0.1, 0.5, 0.9, 0.99)]
        assert qs == sorted(qs)

    def test_single_observation_every_q_is_that_value(self):
        # One sample: min == max == the sample, and every quantile must
        # collapse onto it (no interpolation artefacts off a lone point).
        h = self._snapshot([5.0])
        for q in (0.0, 0.25, 0.5, 0.99, 1.0):
            assert histogram_quantile(h, q) == pytest.approx(5.0)

    def test_q_zero_and_one_bracket_the_data(self):
        values = [0.3, 2.0, 7.5, 42.0]
        h = self._snapshot(values)
        lo = histogram_quantile(h, 0.0)
        hi = histogram_quantile(h, 1.0)
        assert lo <= min(values)
        assert hi == max(values)
        for q in (0.1, 0.5, 0.9):
            assert lo <= histogram_quantile(h, q) <= hi

    def test_quantiles_over_merged_snapshots(self):
        # Quantiles must be computable off a merged snapshot exactly as
        # off a single registry that saw the union of observations.
        def snap(values):
            reg = MetricsRegistry()
            h = reg.histogram("h", buckets=(1.0, 10.0, 100.0))
            for v in values:
                h.observe(v)
            return reg.snapshot()

        a, b = [0.5, 2.0, 3.0], [20.0, 150.0]
        merged = merge_snapshots([snap(a), snap(b)])["histograms"]["h"]
        union = self._snapshot(a + b)
        for q in (0.0, 0.1, 0.5, 0.9, 1.0):
            assert histogram_quantile(merged, q) == pytest.approx(
                histogram_quantile(union, q)
            )
        # Merging an empty snapshot in changes nothing.
        padded = merge_snapshots(
            [snap(a), snap([]), snap(b)]
        )["histograms"]["h"]
        assert histogram_quantile(padded, 0.5) == pytest.approx(
            histogram_quantile(union, 0.5)
        )


class TestHub:
    def test_disabled_by_default(self):
        assert not OBS.enabled
        assert OBS.tracer is NULL_TRACER

    def test_capture_installs_and_restores(self):
        with capture() as session:
            assert OBS.enabled
            assert OBS.tracer is session.tracer
            assert OBS.metrics is session.metrics
            with capture(trace=False) as inner:
                assert OBS.tracer is NULL_TRACER
                assert OBS.metrics is inner.metrics
            assert OBS.tracer is session.tracer
        assert not OBS.enabled and OBS.tracer is NULL_TRACER

    def test_capture_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with capture():
                raise RuntimeError("boom")
        assert not OBS.enabled

    def test_enable_disable(self):
        session = enable()
        try:
            assert OBS.enabled and OBS.tracer is session.tracer
        finally:
            disable()
        assert not OBS.enabled
        # Session data stays reachable after disable.
        assert session.tracer.spans == []


def _run_once(seed: int = 7):
    trace = get_scenario("audio_playback").trace(2.0, seed=seed)
    sim = Simulator(tiny_test_chip(), trace, lambda c: create("ondemand"))
    return sim.run()


class TestZeroOverheadGuard:
    def test_tracing_off_is_bit_identical(self):
        """The instrumented engine with observability off must produce
        exactly the result an enabled run produces — same floats, same
        QoS rows — and a fresh disabled run afterwards must still match."""
        baseline = _run_once()
        with capture() as session:
            instrumented = _run_once()
        assert instrumented == baseline
        assert session.tracer.spans  # the enabled run did record
        assert _run_once() == baseline

    def test_engine_records_phases_and_decisions(self):
        with capture() as session:
            _run_once()
        names = set(session.tracer.span_names())
        assert {"engine.run", "engine.interval"} <= names
        assert sum(1 for n in names if n.startswith("engine.phase.")) >= 4
        decisions = [i for i in session.tracer.instants
                     if i.name == "governor.decide"]
        assert decisions
        assert {"governor", "cluster", "opp_before", "opp_chosen",
                "utilization"} <= set(decisions[0].args)
        snap = session.metrics.snapshot()
        assert snap["counters"]["sim.runs"] == 1.0
        assert snap["counters"]["sim.intervals"] > 0

    def test_trainer_emits_convergence_metrics(self):
        with capture() as session:
            train_policy(
                tiny_test_chip(),
                get_scenario("audio_playback"),
                episodes=2,
                episode_duration_s=1.0,
            )
        snap = session.metrics.snapshot()
        assert snap["counters"]["rl.episodes"] == 2.0
        assert "rl.epsilon" in snap["gauges"]
        assert "rl.q_coverage" in snap["gauges"]
        assert snap["histograms"]["rl.td_error_mean_abs"]["count"] == 2
        episodes = [i for i in session.tracer.instants
                    if i.name == "rl.episode"]
        assert len(episodes) == 2
        assert {"episode", "td_error_mean_abs", "epsilon", "q_coverage",
                "reward"} <= set(episodes[0].args)

    def test_disabled_trainer_history_still_carries_convergence(self):
        result = train_policy(
            tiny_test_chip(),
            get_scenario("audio_playback"),
            episodes=2,
            episode_duration_s=1.0,
        )
        record = result.history[-1]
        assert record.td_error_mean_abs >= 0.0
        assert 0.0 <= record.epsilon <= 1.0


class TestPhaseBreakdown:
    def test_breakdown_from_engine_spans(self):
        with capture() as session:
            _run_once()
        stats = phase_breakdown(session.tracer.spans)
        assert len(stats) >= 4
        assert all(p.name.startswith("engine.phase.") for p in stats)
        assert stats == sorted(stats, key=lambda p: -p.total_us)
        text = format_breakdown(stats)
        assert "engine.phase.governor" in text and "share" in text

    def test_breakdown_empty(self):
        assert "no spans" in format_breakdown([])
