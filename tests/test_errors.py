"""The exception hierarchy contract."""

import pytest

from repro import errors


def test_all_errors_derive_from_repro_error():
    for name in (
        "ConfigurationError",
        "OPPError",
        "WorkloadError",
        "SimulationError",
        "GovernorError",
        "PolicyError",
        "HardwareModelError",
        "FixedPointError",
    ):
        assert issubclass(getattr(errors, name), errors.ReproError)


def test_opp_error_is_configuration_error():
    assert issubclass(errors.OPPError, errors.ConfigurationError)


def test_fixed_point_error_is_hardware_error():
    assert issubclass(errors.FixedPointError, errors.HardwareModelError)


def test_catching_base_class_catches_subclass():
    with pytest.raises(errors.ReproError):
        raise errors.OPPError("boom")
