"""Fitting phase machines to observed traces."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workload.fit import fit_phase_machine
from repro.workload.generator import TraceGenerator
from repro.workload.phases import PhaseMachine, PhaseSpec
from repro.workload.trace import Trace

from conftest import unit


def two_level_machine() -> PhaseMachine:
    """A known ground truth: light 1e6 @ 10 Hz vs heavy 2e7 @ 50 Hz."""
    phases = [
        PhaseSpec("light", period_s=0.1, work_mean=1e6, work_cv=0.1,
                  deadline_factor=1.5, dwell_mean_s=2.0, dwell_min_s=1.0),
        PhaseSpec("heavy", period_s=0.02, work_mean=2e7, work_cv=0.1,
                  deadline_factor=1.5, dwell_mean_s=2.0, dwell_min_s=1.0),
    ]
    return PhaseMachine(phases, [[0.0, 1.0], [1.0, 0.0]])


class TestFitPhaseMachine:
    def test_recovers_two_levels(self):
        trace = TraceGenerator(two_level_machine(), seed=3).generate(40.0)
        fit = fit_phase_machine(trace, n_phases=2, window_s=0.25)
        assert len(fit.levels) == 2
        # The two demand levels are far apart: light ~1e6*2.5 per window,
        # heavy ~2e7*12.5 per window.
        assert fit.levels[1] > 10 * fit.levels[0]

    def test_fitted_machine_regenerates_similar_demand(self):
        trace = TraceGenerator(two_level_machine(), seed=3).generate(40.0)
        fit = fit_phase_machine(trace, n_phases=2, window_s=0.25)
        regen = TraceGenerator(fit.machine, seed=99).generate(40.0)
        assert regen.mean_demand_rate == pytest.approx(
            trace.mean_demand_rate, rel=0.35
        )

    def test_fitted_work_means_match_ground_truth(self):
        trace = TraceGenerator(two_level_machine(), seed=3).generate(40.0)
        fit = fit_phase_machine(trace, n_phases=2, window_s=0.25)
        means = sorted(p.work_mean for p in fit.machine.phases if p.emits)
        assert means[0] == pytest.approx(1e6, rel=0.2)
        assert means[-1] == pytest.approx(2e7, rel=0.2)

    def test_transitions_alternate_for_alternating_truth(self):
        trace = TraceGenerator(two_level_machine(), seed=3).generate(40.0)
        fit = fit_phase_machine(trace, n_phases=2, window_s=0.25)
        # Ground truth strictly alternates, so fitted cross-transitions
        # dominate.
        assert fit.machine.matrix[0][1] > 0.8
        assert fit.machine.matrix[1][0] > 0.8

    def test_assignment_covers_all_windows(self):
        trace = TraceGenerator(two_level_machine(), seed=3).generate(20.0)
        fit = fit_phase_machine(trace, n_phases=2, window_s=0.25)
        assert len(fit.assignments) == int(np.ceil(20.0 / 0.25))
        assert set(fit.assignments) <= {0, 1}

    def test_single_phase_fit(self):
        units = [unit(uid=i, release=i * 0.05, work=1e6, deadline=i * 0.05 + 0.05)
                 for i in range(100)]
        trace = Trace(units=units, duration_s=5.0)
        fit = fit_phase_machine(trace, n_phases=1, window_s=0.5)
        phase = fit.machine.phases[0]
        assert phase.work_mean == pytest.approx(1e6)
        assert phase.period_s == pytest.approx(0.05, rel=0.05)
        assert fit.machine.matrix[0][0] == 1.0  # never observed leaving

    def test_fit_is_deterministic(self):
        trace = TraceGenerator(two_level_machine(), seed=3).generate(20.0)
        a = fit_phase_machine(trace, n_phases=2)
        b = fit_phase_machine(trace, n_phases=2)
        assert a.levels == b.levels
        assert a.assignments == b.assignments

    def test_validation(self):
        with pytest.raises(WorkloadError):
            fit_phase_machine(Trace(units=[], duration_s=1.0))
        trace = Trace(units=[unit()], duration_s=0.3)
        with pytest.raises(WorkloadError, match="windows"):
            fit_phase_machine(trace, n_phases=5, window_s=0.25)
        with pytest.raises(WorkloadError):
            fit_phase_machine(trace, n_phases=0)

    def test_fitted_machine_is_simulable(self, tiny_chip):
        """End to end: fit a machine, generate from it, and simulate."""
        from repro.governors.ondemand import OndemandGovernor
        from repro.sim.engine import Simulator

        units = [unit(uid=i, release=i * 0.05, work=2e6, deadline=i * 0.05 + 0.05)
                 for i in range(60)]
        trace = Trace(units=units, duration_s=3.0)
        fit = fit_phase_machine(trace, n_phases=1, window_s=0.5)
        regen = TraceGenerator(fit.machine, seed=1).generate(3.0)
        result = Simulator(tiny_chip, regen, lambda c: OndemandGovernor()).run()
        assert result.qos.n_units > 0
