"""Training and evaluation drivers."""

import pytest

from repro.core.config import PolicyConfig
from repro.core.trainer import (
    evaluate_policy,
    make_policies,
    train_curriculum,
    train_policy,
)
from repro.errors import PolicyError
from repro.soc.presets import tiny_test_chip
from repro.workload.phases import PhaseMachine, PhaseSpec
from repro.workload.scenarios import Scenario


def tiny_scenario() -> Scenario:
    """A light scenario sized for the tiny test chip (peak 1.5e9/s)."""

    def machine() -> PhaseMachine:
        phases = [
            PhaseSpec("lo", period_s=0.05, work_mean=2e6, work_cv=0.2,
                      deadline_factor=1.5, dwell_mean_s=1.0, dwell_min_s=0.4),
            PhaseSpec("hi", period_s=0.02, work_mean=8e6, work_cv=0.2,
                      deadline_factor=1.5, dwell_mean_s=1.0, dwell_min_s=0.4),
        ]
        return PhaseMachine(phases, [[0.3, 0.7], [0.7, 0.3]])

    return Scenario("tiny-mix", "test scenario", machine)


class TestMakePolicies:
    def test_one_policy_per_cluster(self, duo_chip):
        policies = make_policies(duo_chip)
        assert set(policies) == {"big", "little"}

    def test_cluster_seeds_are_decorrelated(self, duo_chip):
        policies = make_policies(duo_chip, PolicyConfig(seed=7))
        assert policies["big"].config.seed != policies["little"].config.seed


class TestTrainPolicy:
    def test_history_length_matches_episodes(self):
        chip = tiny_test_chip()
        result = train_policy(chip, tiny_scenario(), episodes=3,
                              episode_duration_s=3.0)
        assert len(result.history) == 3
        assert [h.episode for h in result.history] == [0, 1, 2]

    def test_episode_metrics_populated(self):
        chip = tiny_test_chip()
        result = train_policy(chip, tiny_scenario(), episodes=2,
                              episode_duration_s=3.0)
        for record in result.history:
            assert record.total_energy_j > 0
            assert 0.0 <= record.mean_qos <= 1.0
            assert record.energy_per_qos_j > 0
            assert record.q_coverage > 0

    def test_policies_stay_online_after_training(self):
        chip = tiny_test_chip()
        result = train_policy(chip, tiny_scenario(), episodes=2,
                              episode_duration_s=2.0)
        assert all(p.online for p in result.policies.values())

    def test_continue_training_existing_policies(self):
        chip = tiny_test_chip()
        first = train_policy(chip, tiny_scenario(), episodes=2, episode_duration_s=2.0)
        episodes_before = first.policies["cpu"].episodes
        second = train_policy(chip, tiny_scenario(), episodes=2,
                              episode_duration_s=2.0, policies=first.policies)
        assert second.policies["cpu"] is first.policies["cpu"]
        assert second.policies["cpu"].episodes > episodes_before

    def test_zero_episodes_rejected(self):
        with pytest.raises(PolicyError):
            train_policy(tiny_test_chip(), tiny_scenario(), episodes=0)

    def test_final_energy_per_qos(self):
        chip = tiny_test_chip()
        result = train_policy(chip, tiny_scenario(), episodes=2,
                              episode_duration_s=2.0)
        assert result.final_energy_per_qos == result.history[-1].energy_per_qos_j


class TestTrainCurriculum:
    def scenarios(self):
        light = tiny_scenario()
        return [light, light]

    def test_history_concatenates(self):
        chip = tiny_test_chip()
        result = train_curriculum(
            chip, self.scenarios(), episodes_per_scenario=2,
            episode_duration_s=2.0,
        )
        assert len(result.history) == 4
        assert [h.episode for h in result.history] == [0, 1, 2, 3]

    def test_same_policies_throughout(self):
        chip = tiny_test_chip()
        result = train_curriculum(
            chip, self.scenarios(), episodes_per_scenario=2,
            episode_duration_s=2.0,
        )
        # Two scenarios x two episodes -> four binds of the same policy.
        assert result.policies["cpu"].episodes == 4

    def test_empty_curriculum_rejected(self):
        with pytest.raises(PolicyError):
            train_curriculum(tiny_test_chip(), [])

    def test_generalist_evaluates_on_both(self):
        chip = tiny_test_chip()
        result = train_curriculum(
            chip, self.scenarios(), episodes_per_scenario=3,
            episode_duration_s=3.0,
        )
        run = evaluate_policy(chip, result.policies,
                              tiny_scenario().trace(3.0, seed=77))
        assert run.qos.mean_qos > 0.8


class TestEvaluatePolicy:
    def test_restores_online_flags(self):
        chip = tiny_test_chip()
        training = train_policy(chip, tiny_scenario(), episodes=2,
                                episode_duration_s=2.0)
        trace = tiny_scenario().trace(3.0, seed=50)
        evaluate_policy(chip, training.policies, trace)
        assert all(p.online for p in training.policies.values())

    def test_no_learning_during_eval(self):
        chip = tiny_test_chip()
        training = train_policy(chip, tiny_scenario(), episodes=2,
                                episode_duration_s=2.0)
        updates = training.policies["cpu"].agent.updates
        evaluate_policy(chip, training.policies, tiny_scenario().trace(3.0, seed=50))
        assert training.policies["cpu"].agent.updates == updates

    def test_eval_is_repeatable(self):
        chip = tiny_test_chip()
        training = train_policy(chip, tiny_scenario(), episodes=3,
                                episode_duration_s=2.0)
        trace = tiny_scenario().trace(3.0, seed=50)
        a = evaluate_policy(chip, training.policies, trace)
        b = evaluate_policy(chip, training.policies, trace)
        assert a.total_energy_j == b.total_energy_j

    def test_learning_improves_over_episodes(self):
        """The mean energy/QoS of late training episodes should not be
        worse than the exploring early episodes (E5's qualitative shape)."""
        chip = tiny_test_chip()
        result = train_policy(chip, tiny_scenario(), episodes=10,
                              episode_duration_s=4.0)
        early = sum(h.energy_per_qos_j for h in result.history[:3]) / 3
        late = sum(h.energy_per_qos_j for h in result.history[-3:]) / 3
        assert late <= early * 1.1
