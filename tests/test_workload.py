"""Work units, jobs, phases, generation, and trace I/O."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import WorkloadError
from repro.workload.generator import TraceGenerator
from repro.workload.phases import PhaseMachine, PhaseSpec
from repro.workload.task import Job, WorkUnit
from repro.workload.trace import Trace, concat

from conftest import unit


class TestWorkUnit:
    def test_valid_unit(self):
        u = unit(work=1e6)
        assert u.slack_s == pytest.approx(0.1)

    def test_rejects_nonpositive_work(self):
        with pytest.raises(WorkloadError):
            unit(work=0.0)

    def test_rejects_deadline_before_release(self):
        with pytest.raises(WorkloadError):
            WorkUnit(uid=0, release_s=1.0, work=1e6, deadline_s=0.5)

    def test_rejects_negative_release(self):
        with pytest.raises(WorkloadError):
            WorkUnit(uid=0, release_s=-1.0, work=1e6, deadline_s=0.5)

    def test_rejects_zero_parallelism(self):
        with pytest.raises(WorkloadError):
            unit(parallelism=0)


class TestJob:
    def test_fresh_job_has_full_work(self):
        job = Job(unit(work=1e6))
        assert job.remaining == 1e6
        assert not job.done

    def test_execute_partial(self):
        job = Job(unit(work=1e6))
        consumed = job.execute(4e5, now_s=0.01)
        assert consumed == 4e5
        assert job.remaining == pytest.approx(6e5)
        assert not job.done

    def test_execute_completes_and_timestamps(self):
        job = Job(unit(work=1e6))
        job.execute(2e6, now_s=0.05)
        assert job.done
        assert job.completed_at_s == 0.05

    def test_execute_never_consumes_more_than_remaining(self):
        job = Job(unit(work=1e6))
        assert job.execute(9e9, now_s=0.01) == 1e6

    def test_execute_on_done_job_raises(self):
        job = Job(unit(work=1e6))
        job.execute(1e6, 0.01)
        with pytest.raises(WorkloadError):
            job.execute(1.0, 0.02)

    def test_lateness(self):
        job = Job(unit(work=1e6, deadline=0.1))
        job.execute(1e6, now_s=0.15)
        assert job.lateness_s() == pytest.approx(0.05)

    def test_early_completion_negative_lateness(self):
        job = Job(unit(work=1e6, deadline=0.1))
        job.execute(1e6, now_s=0.02)
        assert job.lateness_s() == pytest.approx(-0.08)

    def test_lateness_before_completion_raises(self):
        with pytest.raises(WorkloadError):
            Job(unit()).lateness_s()


class TestPhaseSpec:
    def test_emitting_phase(self):
        p = PhaseSpec("go", period_s=0.02, work_mean=1e6, work_cv=0.2,
                      deadline_factor=1.0, dwell_mean_s=1.0)
        assert p.emits

    def test_idle_phase(self):
        p = PhaseSpec("idle", period_s=0.0, work_mean=0.0, work_cv=0.0,
                      deadline_factor=1.0, dwell_mean_s=1.0)
        assert not p.emits

    def test_emitting_phase_needs_positive_work(self):
        with pytest.raises(WorkloadError):
            PhaseSpec("bad", period_s=0.02, work_mean=0.0, work_cv=0.0,
                      deadline_factor=1.0, dwell_mean_s=1.0)

    def test_sample_work_zero_cv_is_deterministic(self):
        p = PhaseSpec("p", 0.02, 1e6, 0.0, 1.0, 1.0)
        rng = np.random.default_rng(0)
        assert p.sample_work(rng) == 1e6

    def test_sample_work_mean_matches(self):
        p = PhaseSpec("p", 0.02, 1e6, 0.3, 1.0, 1.0)
        rng = np.random.default_rng(0)
        samples = [p.sample_work(rng) for _ in range(20000)]
        assert np.mean(samples) == pytest.approx(1e6, rel=0.02)

    def test_sample_dwell_respects_floor(self):
        p = PhaseSpec("p", 0.02, 1e6, 0.0, 1.0, dwell_mean_s=0.5, dwell_min_s=0.3)
        rng = np.random.default_rng(0)
        assert all(p.sample_dwell(rng) >= 0.3 for _ in range(200))


class TestPhaseMachine:
    def two_phase(self) -> PhaseMachine:
        phases = [
            PhaseSpec("a", 0.02, 1e6, 0.0, 1.0, dwell_mean_s=0.5),
            PhaseSpec("b", 0.05, 2e6, 0.0, 1.0, dwell_mean_s=0.5),
        ]
        return PhaseMachine(phases, [[0.0, 1.0], [1.0, 0.0]])

    def test_walk_covers_duration(self):
        machine = self.two_phase()
        rng = np.random.default_rng(1)
        segments = list(machine.walk(rng, 10.0))
        assert segments[0][1] == 0.0
        assert segments[-1][2] == pytest.approx(10.0)
        for (_, s0, e0), (_, s1, _) in zip(segments, segments[1:]):
            assert e0 == pytest.approx(s1)

    def test_walk_alternates_deterministic_chain(self):
        machine = self.two_phase()
        rng = np.random.default_rng(1)
        names = [p.name for p, _, _ in machine.walk(rng, 5.0)]
        assert all(a != b for a, b in zip(names, names[1:]))

    def test_rejects_non_stochastic_rows(self):
        phases = [PhaseSpec("a", 0.02, 1e6, 0.0, 1.0, 1.0)]
        with pytest.raises(WorkloadError, match="sum to 1"):
            PhaseMachine(phases, [[0.5]])

    def test_rejects_shape_mismatch(self):
        phases = [PhaseSpec("a", 0.02, 1e6, 0.0, 1.0, 1.0)]
        with pytest.raises(WorkloadError, match="shape"):
            PhaseMachine(phases, [[0.5, 0.5]])

    def test_rejects_duplicate_phase_names(self):
        p = PhaseSpec("a", 0.02, 1e6, 0.0, 1.0, 1.0)
        with pytest.raises(WorkloadError, match="duplicate"):
            PhaseMachine([p, p], [[0.5, 0.5], [0.5, 0.5]])

    def test_rejects_negative_probability(self):
        phases = [
            PhaseSpec("a", 0.02, 1e6, 0.0, 1.0, 1.0),
            PhaseSpec("b", 0.02, 1e6, 0.0, 1.0, 1.0),
        ]
        with pytest.raises(WorkloadError):
            PhaseMachine(phases, [[1.5, -0.5], [0.5, 0.5]])


class TestTraceGenerator:
    def machine(self) -> PhaseMachine:
        return PhaseMachine(
            [PhaseSpec("p", 0.01, 1e6, 0.2, 2.0, dwell_mean_s=10.0, dwell_min_s=5.0)],
            [[1.0]],
        )

    def test_deterministic_for_seed(self):
        gen_a = TraceGenerator(self.machine(), seed=7)
        gen_b = TraceGenerator(self.machine(), seed=7)
        ta, tb = gen_a.generate(2.0), gen_b.generate(2.0)
        assert len(ta) == len(tb)
        assert all(a.work == b.work and a.release_s == b.release_s
                   for a, b in zip(ta, tb))

    def test_different_seeds_differ(self):
        ta = TraceGenerator(self.machine(), seed=1).generate(2.0)
        tb = TraceGenerator(self.machine(), seed=2).generate(2.0)
        assert [u.work for u in ta] != [u.work for u in tb]

    def test_emission_rate_matches_period(self):
        trace = TraceGenerator(self.machine(), seed=0).generate(2.0)
        assert len(trace) == pytest.approx(200, abs=2)

    def test_all_releases_inside_duration(self):
        trace = TraceGenerator(self.machine(), seed=0).generate(2.0)
        assert all(u.release_s < 2.0 for u in trace)

    def test_deadlines_follow_factor(self):
        trace = TraceGenerator(self.machine(), seed=0).generate(1.0)
        for u in trace:
            assert u.deadline_s == pytest.approx(u.release_s + 2.0 * 0.01)

    def test_rejects_nonpositive_duration(self):
        with pytest.raises(WorkloadError):
            TraceGenerator(self.machine()).generate(0.0)


class TestTrace:
    def test_sorted_by_release(self):
        units = [unit(uid=1, release=0.5), unit(uid=0, release=0.1)]
        trace = Trace(units=units, duration_s=1.0)
        assert [u.uid for u in trace] == [0, 1]

    def test_duplicate_uids_rejected(self):
        with pytest.raises(WorkloadError, match="duplicate"):
            Trace(units=[unit(uid=0), unit(uid=0, release=0.2)])

    def test_default_duration_is_last_deadline(self):
        trace = Trace(units=[unit(release=0.0, deadline=0.7)])
        assert trace.duration_s == pytest.approx(0.7)

    def test_duration_before_last_release_rejected(self):
        with pytest.raises(WorkloadError):
            Trace(units=[unit(release=5.0, deadline=5.1)], duration_s=1.0)

    def test_total_work_and_rate(self):
        trace = Trace(
            units=[unit(uid=0, work=1e6), unit(uid=1, release=0.5, work=3e6, deadline=0.6)],
            duration_s=2.0,
        )
        assert trace.total_work == pytest.approx(4e6)
        assert trace.mean_demand_rate == pytest.approx(2e6)

    def test_released_between(self):
        trace = Trace(
            units=[unit(uid=i, release=0.1 * i, deadline=0.1 * i + 0.05) for i in range(5)],
            duration_s=1.0,
        )
        hits = trace.released_between(0.1, 0.3)
        assert [u.uid for u in hits] == [1, 2]

    def test_kinds(self):
        trace = Trace(units=[unit(uid=0, kind="a"), unit(uid=1, release=0.1, kind="b")])
        assert trace.kinds() == {"a", "b"}

    def test_csv_roundtrip(self, tmp_path):
        trace = Trace(
            units=[unit(uid=i, release=0.123456789 * i, work=1e6 + i,
                        deadline=0.123456789 * i + 0.517, kind=f"k{i}") for i in range(4)],
            name="rt",
            duration_s=3.0,
        )
        path = tmp_path / "trace.csv"
        trace.to_csv(path)
        back = Trace.from_csv(path, name="rt")
        assert len(back) == len(trace)
        for a, b in zip(trace, back):
            assert a == b

    def test_csv_missing_columns(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("uid,release_s\n0,0.0\n")
        with pytest.raises(WorkloadError, match="missing columns"):
            Trace.from_csv(path)

    def test_csv_bad_row(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text(
            "uid,release_s,work,deadline_s,kind,min_parallelism\n"
            "x,0.0,1e6,0.1,k,1\n"
        )
        with pytest.raises(WorkloadError, match="bad trace row"):
            Trace.from_csv(path)

    def test_json_roundtrip(self, tmp_path):
        trace = Trace(units=[unit(uid=0), unit(uid=1, release=0.2, parallelism=2)],
                      name="j", duration_s=1.0)
        path = tmp_path / "trace.json"
        trace.to_json(path)
        back = Trace.from_json(path)
        assert back.name == "j"
        assert back.duration_s == 1.0
        assert list(back) == list(trace)

    def test_json_garbage(self, tmp_path):
        path = tmp_path / "garbage.json"
        path.write_text("{not json")
        with pytest.raises(WorkloadError):
            Trace.from_json(path)

    def test_concat_offsets_times_and_renumbers(self):
        t1 = Trace(units=[unit(uid=0)], duration_s=1.0)
        t2 = Trace(units=[unit(uid=0, release=0.0, deadline=0.1)], duration_s=1.0)
        joined = concat([t1, t2], name="both")
        assert len(joined) == 2
        assert joined[1].release_s == pytest.approx(1.0)
        assert joined[1].uid == 1
        assert joined.duration_s == pytest.approx(2.0)


@settings(max_examples=25)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_generated_traces_are_valid(seed):
    """Any seed yields a structurally valid trace: releases ordered and
    inside the horizon, deadlines after releases, positive work."""
    machine = PhaseMachine(
        [
            PhaseSpec("a", 0.02, 1e6, 0.5, 1.5, dwell_mean_s=0.3, dwell_min_s=0.1),
            PhaseSpec("b", 0.0, 0.0, 0.0, 1.0, dwell_mean_s=0.3, dwell_min_s=0.1),
        ],
        [[0.5, 0.5], [1.0, 0.0]],
    )
    trace = TraceGenerator(machine, seed=seed).generate(3.0)
    last = 0.0
    for u in trace:
        assert 0.0 <= u.release_s < 3.0
        assert u.release_s >= last
        assert u.deadline_s > u.release_s
        assert u.work > 0
        last = u.release_s
