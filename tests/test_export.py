"""Result export: sweep CSV round-trip and run JSON serialisation."""

import json

import pytest

from repro.analysis.export import result_to_json, sweep_from_csv, sweep_to_csv
from repro.analysis.sweep import SweepResult, SweepRow
from repro.errors import ReproError
from repro.governors.ondemand import OndemandGovernor
from repro.sim.engine import Simulator


def sample_sweep() -> SweepResult:
    return SweepResult(
        rows=[
            SweepRow("gaming", "ondemand", 17.5, 0.99, 0.13, 0.0354),
            SweepRow("gaming", "rl-policy", 15.0, 0.995, 0.05, 0.0301),
            SweepRow("idle", "ondemand", 2.0, 1.0, 0.0, 0.004),
            SweepRow("idle", "rl-policy", 1.8, 1.0, 0.0, 0.0036),
        ]
    )


class TestSweepCsv:
    def test_roundtrip(self, tmp_path):
        sweep = sample_sweep()
        path = tmp_path / "sweep.csv"
        sweep_to_csv(sweep, path)
        back = sweep_from_csv(path)
        assert back.rows == sweep.rows
        assert back.governors() == sweep.governors()

    def test_empty_rejected(self, tmp_path):
        with pytest.raises(ReproError):
            sweep_to_csv(SweepResult(), tmp_path / "x.csv")

    def test_missing_columns(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("scenario,governor\na,b\n")
        with pytest.raises(ReproError, match="missing columns"):
            sweep_from_csv(path)

    def test_bad_row(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text(
            "scenario,governor,energy_j,mean_qos,deadline_miss_rate,"
            "energy_per_qos_j\na,b,x,1,0,1\n"
        )
        with pytest.raises(ReproError, match="bad sweep row"):
            sweep_from_csv(path)

    def test_loaded_sweep_supports_analysis(self, tmp_path):
        path = tmp_path / "sweep.csv"
        sweep_to_csv(sample_sweep(), path)
        back = sweep_from_csv(path)
        assert back.improvement_over("ondemand", "rl-policy") > 0


class TestResultJson:
    def test_serialises_run(self, tiny_chip, steady_trace, tmp_path):
        result = Simulator(tiny_chip, steady_trace,
                           lambda c: OndemandGovernor()).run()
        path = tmp_path / "run.json"
        payload = result_to_json(result, path)
        assert payload["governor"] == "ondemand"
        assert payload["qos"]["n_units"] == len(steady_trace)
        loaded = json.loads(path.read_text())
        assert loaded == payload

    def test_no_path_returns_dict_only(self, tiny_chip, steady_trace):
        result = Simulator(tiny_chip, steady_trace,
                           lambda c: OndemandGovernor()).run()
        payload = result_to_json(result)
        assert payload["total_energy_j"] == pytest.approx(result.total_energy_j)
