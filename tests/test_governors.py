"""Baseline DVFS governors: kernel semantics, registry, behaviour."""

import pytest

from repro.errors import GovernorError
from repro.governors import BASELINE_SIX, available, create
from repro.governors.base import Governor, register
from repro.governors.conservative import ConservativeGovernor
from repro.governors.interactive import InteractiveGovernor
from repro.governors.ondemand import OndemandGovernor
from repro.governors.performance import PerformanceGovernor
from repro.governors.powersave import PowersaveGovernor
from repro.governors.schedutil import SchedutilGovernor
from repro.governors.userspace import UserspaceGovernor
from repro.sim.telemetry import initial_observation
from repro.soc.cluster import Cluster, ClusterSpec
from repro.soc.core import CoreSpec
from repro.soc.opp import make_table


def make_cluster(n_opps: int = 10) -> Cluster:
    freqs = [200 * (i + 1) for i in range(n_opps)]
    volts = [0.9 + 0.05 * i for i in range(n_opps)]
    core = CoreSpec("c", 1.0, 1e-10, 0.01)
    return Cluster(ClusterSpec("cpu", core, 2, make_table(freqs, volts)))


def obs_with(cluster: Cluster, load: float, opp_index: int, time_s: float = 1.0):
    """An observation with a given busiest-core load at a given OPP."""
    table = cluster.spec.opp_table
    base = initial_observation(
        "cpu", opp_index, len(table), table[opp_index].freq_hz,
        table.max_freq_hz, 0.01,
    )
    return type(base)(
        **{
            **base.__dict__,
            "time_s": time_s,
            "utilization": load,
            "max_core_utilization": load,
        }
    )


class TestRegistry:
    def test_baseline_six_all_registered(self):
        for name in BASELINE_SIX:
            assert isinstance(create(name), Governor)

    def test_seventh_governor_schedutil(self):
        assert "schedutil" in available()

    def test_unknown_name(self):
        with pytest.raises(GovernorError, match="available"):
            create("turbo")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(GovernorError, match="already"):
            register("performance", PerformanceGovernor)

    def test_unbound_governor_raises(self):
        gov = OndemandGovernor()
        with pytest.raises(GovernorError, match="not bound"):
            _ = gov.cluster


class TestTrivialGovernors:
    def test_performance_always_max(self):
        cluster = make_cluster()
        gov = PerformanceGovernor()
        gov.reset(cluster)
        assert gov.decide(obs_with(cluster, 0.0, 0)) == 9
        assert gov.decide(obs_with(cluster, 1.0, 9)) == 9

    def test_powersave_always_min(self):
        cluster = make_cluster()
        gov = PowersaveGovernor()
        gov.reset(cluster)
        assert gov.decide(obs_with(cluster, 1.0, 9)) == 0

    def test_userspace_holds_requested(self):
        cluster = make_cluster()
        gov = UserspaceGovernor(opp_index=3)
        gov.reset(cluster)
        assert gov.decide(obs_with(cluster, 0.9, 0)) == 3

    def test_userspace_defaults_to_middle(self):
        cluster = make_cluster(n_opps=10)
        gov = UserspaceGovernor()
        gov.reset(cluster)
        assert gov.decide(obs_with(cluster, 0.5, 0)) == 4

    def test_userspace_clamps_request(self):
        cluster = make_cluster(n_opps=4)
        gov = UserspaceGovernor(opp_index=99)
        gov.reset(cluster)
        assert gov.decide(obs_with(cluster, 0.5, 0)) == 3

    def test_userspace_rejects_negative(self):
        with pytest.raises(GovernorError):
            UserspaceGovernor(opp_index=-1)


class TestOndemand:
    def test_jumps_to_max_above_threshold(self):
        cluster = make_cluster()
        gov = OndemandGovernor(up_threshold=0.8)
        gov.reset(cluster)
        assert gov.decide(obs_with(cluster, 0.85, 2)) == 9

    def test_proportional_below_threshold(self):
        cluster = make_cluster()
        gov = OndemandGovernor(up_threshold=0.8)
        gov.reset(cluster)
        # At OPP 4 (1000 MHz) with load 0.4: target = 0.4*1000/0.8 = 500 MHz
        # -> ceil to 600 MHz = index 2.
        assert gov.decide(obs_with(cluster, 0.4, 4)) == 2

    def test_idle_drops_to_floor(self):
        cluster = make_cluster()
        gov = OndemandGovernor()
        gov.reset(cluster)
        assert gov.decide(obs_with(cluster, 0.0, 9)) == 0

    def test_sampling_down_factor_holds_max(self):
        cluster = make_cluster()
        gov = OndemandGovernor(up_threshold=0.8, sampling_down_factor=3)
        gov.reset(cluster)
        assert gov.decide(obs_with(cluster, 0.9, 2)) == 9
        # Load collapses but the hold keeps max for 3 further samples.
        assert gov.decide(obs_with(cluster, 0.1, 9)) == 9
        assert gov.decide(obs_with(cluster, 0.1, 9)) == 9
        assert gov.decide(obs_with(cluster, 0.1, 9)) == 9
        assert gov.decide(obs_with(cluster, 0.1, 9)) < 9

    def test_parameter_validation(self):
        with pytest.raises(GovernorError):
            OndemandGovernor(up_threshold=0.0)
        with pytest.raises(GovernorError):
            OndemandGovernor(sampling_down_factor=0)

    def test_reset_clears_hold(self):
        cluster = make_cluster()
        gov = OndemandGovernor(sampling_down_factor=5)
        gov.reset(cluster)
        gov.decide(obs_with(cluster, 0.9, 2))
        gov.reset(cluster)
        assert gov.decide(obs_with(cluster, 0.0, 9)) == 0


class TestConservative:
    def test_steps_up_gradually(self):
        cluster = make_cluster()
        gov = ConservativeGovernor(freq_step=0.05)
        gov.reset(cluster)
        # One step is 5% of 2000 MHz = 100 MHz above the current 200 MHz
        # -> ceil(300) = index 1. Never a jump to max.
        assert gov.decide(obs_with(cluster, 0.95, 0)) == 1

    def test_steps_down_below_down_threshold(self):
        cluster = make_cluster()
        gov = ConservativeGovernor()
        gov.reset(cluster)
        assert gov.decide(obs_with(cluster, 0.1, 5)) < 5

    def test_holds_between_thresholds(self):
        cluster = make_cluster()
        gov = ConservativeGovernor()
        gov.reset(cluster)
        assert gov.decide(obs_with(cluster, 0.5, 5)) == 5

    def test_never_leaves_table(self):
        cluster = make_cluster()
        gov = ConservativeGovernor()
        gov.reset(cluster)
        assert gov.decide(obs_with(cluster, 0.1, 0)) == 0
        assert gov.decide(obs_with(cluster, 0.99, 9)) == 9

    def test_threshold_ordering_enforced(self):
        with pytest.raises(GovernorError):
            ConservativeGovernor(up_threshold=0.2, down_threshold=0.8)


class TestInteractive:
    def test_spike_jumps_to_hispeed(self):
        cluster = make_cluster()
        gov = InteractiveGovernor(go_hispeed_load=0.85, hispeed_fraction=0.7)
        gov.reset(cluster)
        # hispeed = 0.7 * 2000 = 1400 MHz = index 6.
        assert gov.decide(obs_with(cluster, 0.9, 0)) == 6

    def test_sustained_load_reaches_max_after_delay(self):
        cluster = make_cluster()
        gov = InteractiveGovernor(above_hispeed_delay_s=0.02)
        gov.reset(cluster)
        first = gov.decide(obs_with(cluster, 0.95, 0, time_s=0.00))
        assert first == 6
        held = gov.decide(obs_with(cluster, 0.95, first, time_s=0.01))
        assert held == 6  # still inside the hispeed dwell
        final = gov.decide(obs_with(cluster, 0.95, held, time_s=0.03))
        assert final == 9

    def test_descent_damped_by_min_sample_time(self):
        cluster = make_cluster()
        gov = InteractiveGovernor(min_sample_time_s=0.08)
        gov.reset(cluster)
        high = gov.decide(obs_with(cluster, 0.95, 0, time_s=0.0))
        # Load vanishes immediately, but the floor holds for 80 ms.
        assert gov.decide(obs_with(cluster, 0.05, high, time_s=0.01)) == high
        assert gov.decide(obs_with(cluster, 0.05, high, time_s=0.2)) < high

    def test_moderate_load_targets_target_load(self):
        cluster = make_cluster()
        gov = InteractiveGovernor(target_load=0.9)
        gov.reset(cluster)
        # Load 0.45 at 1000 MHz -> target 0.45*1000/0.9 = 500 -> index 2.
        assert gov.decide(obs_with(cluster, 0.45, 4)) == 2

    def test_parameter_validation(self):
        with pytest.raises(GovernorError):
            InteractiveGovernor(go_hispeed_load=1.5)
        with pytest.raises(GovernorError):
            InteractiveGovernor(above_hispeed_delay_s=-1.0)


class TestSchedutil:
    def test_frequency_invariant_target(self):
        cluster = make_cluster()
        gov = SchedutilGovernor(headroom=1.25)
        gov.reset(cluster)
        # Load 0.8 at 1000 MHz -> util@max = 0.8*1000/2000 = 0.4;
        # target = 1.25*0.4*2000 = 1000 MHz -> index 4.
        assert gov.decide(obs_with(cluster, 0.8, 4)) == 4

    def test_saturation_at_low_freq_does_not_jump_to_max(self):
        """schedutil's blind spot: full load at the floor OPP reads as
        modest absolute utilisation."""
        cluster = make_cluster()
        gov = SchedutilGovernor()
        gov.reset(cluster)
        decision = gov.decide(obs_with(cluster, 1.0, 0))
        assert decision < 9

    def test_idle_goes_to_floor(self):
        cluster = make_cluster()
        gov = SchedutilGovernor()
        gov.reset(cluster)
        assert gov.decide(obs_with(cluster, 0.0, 5)) == 0

    def test_headroom_validation(self):
        with pytest.raises(GovernorError):
            SchedutilGovernor(headroom=0.9)
