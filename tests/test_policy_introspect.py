"""Policy introspection: heatmaps, summaries, checkpoint diffing, CLI.

PR 9's ``repro policy show|diff`` surface.  Diffing is the acceptance
contract for checkpoint churn: two saves of the *same* trained policy
must read as identical, two different trainings must report nonzero
greedy disagreement, and the CLI exit code mirrors ``diff(1)``.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.core.checkpoint import save_policies
from repro.core.introspect import (
    decision_surface,
    diff_checkpoints,
    diff_policies,
    policy_summary,
    render_policy_diff,
    visitation_heatmap,
)
from repro.core.trainer import make_policies, train_policy
from repro.errors import PolicyError
from repro.soc.presets import tiny_test_chip
from repro.workload.scenarios import get_scenario


@pytest.fixture(scope="module")
def trained():
    """Two different trainings of the same tiny chip (module-cached)."""
    chip = tiny_test_chip()
    scenario = get_scenario("audio_playback")
    a = train_policy(chip, scenario, episodes=4,
                     episode_duration_s=3.0).policies
    b = train_policy(chip, scenario, episodes=4,
                     episode_duration_s=3.0, base_seed=777).policies
    return a, b


@pytest.fixture(scope="module")
def checkpoints(trained, tmp_path_factory):
    root = tmp_path_factory.mktemp("ckpts")
    a, b = trained
    save_policies(a, root / "a")
    save_policies(b, root / "b")
    return root / "a", root / "b"


class TestDiff:
    def test_identical_checkpoints_diff_clean(self, checkpoints):
        dir_a, _ = checkpoints
        diff = diff_checkpoints(dir_a, dir_a)
        assert diff.identical
        assert all(d.disagreements == 0 for d in diff.clusters)
        assert all(d.q_delta_max == 0.0 for d in diff.clusters)

    def test_different_seeds_disagree(self, checkpoints):
        diff = diff_checkpoints(*checkpoints)
        assert not diff.identical
        assert sum(d.disagreements for d in diff.clusters) > 0
        assert max(d.q_delta_max for d in diff.clusters) > 0.0

    def test_quantiles_are_ordered(self, checkpoints):
        diff = diff_checkpoints(*checkpoints)
        for d in diff.clusters:
            assert (0.0 <= d.q_delta_p50 <= d.q_delta_p90
                    <= d.q_delta_p99 <= d.q_delta_max)
            assert 0.0 <= d.disagreement_fraction <= 1.0

    def test_disjoint_cluster_sets_reported(self, trained):
        a, b = trained
        diff = diff_policies(a, {})
        assert diff.only_a == tuple(sorted(a)) and not diff.clusters
        assert not diff.identical

    def test_untrained_policy_rejected(self, trained):
        a, _ = trained
        fresh = make_policies(tiny_test_chip())
        with pytest.raises(PolicyError, match="not trained"):
            diff_policies(a, fresh)

    def test_mapping_mirrors_render(self, checkpoints):
        diff = diff_checkpoints(*checkpoints)
        payload = diff.as_mapping()
        assert payload["identical"] is False
        assert payload["clusters"][0]["states"] > 0
        text = render_policy_diff(diff)
        assert "checkpoints differ" in text


class TestShow:
    def test_heatmap_shape_and_shading(self, trained):
        a, _ = trained
        policy = next(iter(a.values()))
        surface = decision_surface(policy)
        text = visitation_heatmap(surface)
        lines = text.splitlines()
        # Header + axis + one row per utilisation bin.
        assert len(lines) == 2 + surface.visits.shape[0]
        assert "util" in lines[1]

    def test_summary_is_deterministic_and_json_safe(self, trained):
        a, _ = trained
        policy = next(iter(a.values()))
        s1, s2 = policy_summary(policy), policy_summary(policy)
        assert s1 == s2
        encoded = json.dumps(s1, sort_keys=True)
        assert "coverage" in encoded
        hist = s1["greedy_delta_histogram"]
        assert sum(hist.values()) == sum(
            len(row) * len(row[0]) * len(row[0][0])
            for row in s1["greedy_deltas"]
        )


class TestPolicyCli:
    def test_show_text(self, checkpoints, capsys):
        dir_a, _ = checkpoints
        assert main(["policy", "show", str(dir_a)]) == 0
        out = capsys.readouterr().out
        assert "coverage" in out and "visitation" in out

    def test_show_json(self, checkpoints, capsys):
        dir_a, _ = checkpoints
        assert main(["policy", "show", str(dir_a),
                     "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert all("coverage" in v for v in payload.values())

    def test_diff_identical_exits_zero(self, checkpoints, capsys):
        dir_a, _ = checkpoints
        assert main(["policy", "diff", str(dir_a), str(dir_a)]) == 0
        assert "identical" in capsys.readouterr().out

    def test_diff_different_exits_one(self, checkpoints, capsys):
        dir_a, dir_b = checkpoints
        assert main(["policy", "diff", str(dir_a), str(dir_b)]) == 1
        assert "differ" in capsys.readouterr().out

    def test_diff_json_payload(self, checkpoints, capsys):
        dir_a, dir_b = checkpoints
        code = main(["policy", "diff", str(dir_a), str(dir_b),
                     "--format", "json"])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["identical"] is False

    def test_missing_checkpoint_is_clean_error(self, tmp_path, capsys):
        code = main(["policy", "show", str(tmp_path / "nope")])
        assert code == 1
        assert "error:" in capsys.readouterr().err
