"""Double Q-learning agent and policy variant."""

import pytest

from repro.core.config import PolicyConfig
from repro.core.policy import DoubleQPowerManagementPolicy
from repro.errors import PolicyError
from repro.rl.double_q import DoubleQAgent
from repro.rl.exploration import EpsilonSchedule
from repro.sim.engine import Simulator


class TestDoubleQAgent:
    def test_two_tables_start_identical(self):
        agent = DoubleQAgent(4, 3, initial_q=0.5)
        assert agent.table_a.get(0, 0) == 0.5
        assert agent.table_b.get(0, 0) == 0.5

    def test_update_writes_exactly_one_table(self):
        agent = DoubleQAgent(2, 2, alpha=1.0, gamma=0.0, seed=0)
        agent.update(0, 0, reward=-1.0, next_state=1)
        a = agent.table_a.get(0, 0)
        b = agent.table_b.get(0, 0)
        assert sorted([a, b]) == [-1.0, 0.0]

    def test_combined_table_is_sum(self):
        agent = DoubleQAgent(2, 2)
        agent.table_a.set(0, 1, 1.0)
        agent.table_b.set(0, 1, 2.0)
        assert agent.table.get(0, 1) == pytest.approx(3.0)

    def test_greedy_uses_combined(self):
        agent = DoubleQAgent(1, 3)
        agent.table_a.set(0, 1, 1.0)
        agent.table_b.set(0, 2, 1.5)
        assert agent.act_greedy(0) == 2

    def test_learns_the_chain(self):
        agent = DoubleQAgent(2, 2, alpha=0.2, gamma=0.9,
                             epsilon=EpsilonSchedule(start=1.0, decay=1.0, floor=1.0),
                             seed=0)
        state = 0
        for _ in range(4000):
            action = agent.act(state)
            reward = 1.0 if action == 1 else 0.0
            next_state = 1 - state
            agent.update(state, action, reward, next_state)
            state = next_state
        assert agent.act_greedy(0) == 1
        assert agent.act_greedy(1) == 1

    def test_double_q_overestimates_less(self):
        """In a state whose actions all have mean reward 0 with noise,
        vanilla Q's max estimate is biased upward; double Q's is lower.
        Classic van Hasselt sanity check."""
        import numpy as np

        from repro.rl.qlearning import QLearningAgent

        rng = np.random.default_rng(0)
        single = QLearningAgent(1, 8, alpha=0.1, gamma=0.0)
        double = DoubleQAgent(1, 8, alpha=0.1, gamma=0.0, seed=0)
        # Terminal-ish setting: gamma 0, so Q just estimates mean reward.
        # Bias shows in the *max over actions* of the estimates.
        for _ in range(2000):
            a = int(rng.integers(8))
            r = float(rng.normal(0.0, 1.0))
            single.update(0, a, r, 0)
            double.update(0, a, r, 0)
        single_max = single.table.max(0)
        double_max = max(
            (double.table_a.get(0, a) + double.table_b.get(0, a)) / 2
            for a in range(8)
        )
        assert single_max > 0.0  # the bias
        assert double_max < single_max

    def test_validation(self):
        with pytest.raises(PolicyError):
            DoubleQAgent(2, 2, alpha=0.0)
        with pytest.raises(PolicyError):
            DoubleQAgent(2, 2, gamma=1.0)


class TestDoubleQPolicy:
    def test_runs_and_learns(self, tiny_chip, steady_trace):
        policy = DoubleQPowerManagementPolicy(PolicyConfig())
        Simulator(tiny_chip, steady_trace, {"cpu": policy}).run()
        assert policy.agent.updates > 0
        assert isinstance(policy.agent, DoubleQAgent)

    def test_q_coverage_works(self, tiny_chip, steady_trace):
        policy = DoubleQPowerManagementPolicy()
        Simulator(tiny_chip, steady_trace, {"cpu": policy}).run()
        assert policy.q_coverage > 0.0

    def test_offline_is_deterministic(self, tiny_chip, steady_trace):
        policy = DoubleQPowerManagementPolicy()
        Simulator(tiny_chip, steady_trace, {"cpu": policy}).run()
        policy.online = False
        a = Simulator(tiny_chip, steady_trace, {"cpu": policy}).run()
        b = Simulator(tiny_chip, steady_trace, {"cpu": policy}).run()
        assert a.total_energy_j == b.total_energy_j
