"""RL substrate: binning, state encoding, Q-table, learners, exploration."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import PolicyError
from repro.rl.discretize import Binner, StateSpace
from repro.rl.exploration import EpsilonGreedy, EpsilonSchedule
from repro.rl.qlearning import QLearningAgent
from repro.rl.qtable import QTable
from repro.rl.reward import RewardConfig, default_energy_scale
from repro.rl.sarsa import SarsaAgent
from repro.sim.telemetry import initial_observation


class TestBinner:
    def test_edges_define_bins(self):
        binner = Binner(edges=(0.25, 0.5, 0.75))
        assert binner.n_bins == 4
        assert binner.bin(0.0) == 0
        assert binner.bin(0.25) == 1
        assert binner.bin(0.6) == 2
        assert binner.bin(0.75) == 3
        assert binner.bin(99.0) == 3

    def test_uniform(self):
        binner = Binner.uniform(0.0, 1.0, 4)
        assert binner.edges == (0.25, 0.5, 0.75)

    def test_uniform_validation(self):
        with pytest.raises(PolicyError):
            Binner.uniform(0.0, 1.0, 1)
        with pytest.raises(PolicyError):
            Binner.uniform(1.0, 0.0, 4)

    def test_non_increasing_edges_rejected(self):
        with pytest.raises(PolicyError):
            Binner(edges=(0.5, 0.5))

    def test_nan_rejected(self):
        with pytest.raises(PolicyError):
            Binner(edges=(0.5,)).bin(float("nan"))

    @given(value=st.floats(min_value=-10, max_value=10))
    def test_bin_always_in_range(self, value):
        binner = Binner.uniform(0.0, 1.0, 5)
        assert 0 <= binner.bin(value) < 5


class TestStateSpace:
    def space(self) -> StateSpace:
        return StateSpace([("a", 3), ("b", 4), ("c", 2)])

    def test_n_states(self):
        assert self.space().n_states == 24

    def test_encode_decode_roundtrip_all(self):
        space = self.space()
        seen = set()
        for a in range(3):
            for b in range(4):
                for c in range(2):
                    idx = space.encode((a, b, c))
                    assert space.decode(idx) == (a, b, c)
                    seen.add(idx)
        assert seen == set(range(24))

    def test_encode_wrong_arity(self):
        with pytest.raises(PolicyError):
            self.space().encode((1, 2))

    def test_encode_out_of_range_digit(self):
        with pytest.raises(PolicyError):
            self.space().encode((3, 0, 0))

    def test_decode_out_of_range(self):
        with pytest.raises(PolicyError):
            self.space().decode(24)

    def test_duplicate_names_rejected(self):
        with pytest.raises(PolicyError):
            StateSpace([("a", 2), ("a", 2)])

    @given(
        sizes=st.lists(st.integers(min_value=1, max_value=5), min_size=1, max_size=4),
        data=st.data(),
    )
    def test_roundtrip_property(self, sizes, data):
        space = StateSpace([(f"d{i}", s) for i, s in enumerate(sizes)])
        digits = tuple(
            data.draw(st.integers(min_value=0, max_value=s - 1)) for s in sizes
        )
        assert space.decode(space.encode(digits)) == digits


class TestQTable:
    def test_initial_fill(self):
        table = QTable(4, 3, initial_value=1.5)
        assert table.get(0, 0) == 1.5
        assert table.visited_fraction() == 0.0

    def test_set_get(self):
        table = QTable(4, 3)
        table.set(2, 1, -0.5)
        assert table.get(2, 1) == -0.5
        assert table.visited_fraction() == pytest.approx(1 / 12)

    def test_argmax_ties_break_low(self):
        table = QTable(1, 4)
        assert table.argmax(0) == 0
        table.set(0, 2, 1.0)
        table.set(0, 3, 1.0)
        assert table.argmax(0) == 2

    def test_max(self):
        table = QTable(2, 3)
        table.set(1, 2, 7.0)
        assert table.max(1) == 7.0

    def test_bounds_checked(self):
        table = QTable(2, 2)
        with pytest.raises(PolicyError):
            table.get(2, 0)
        with pytest.raises(PolicyError):
            table.set(0, 2, 1.0)

    def test_row_is_a_copy(self):
        table = QTable(1, 2)
        row = table.row(0)
        row[0] = 99.0
        assert table.get(0, 0) == 0.0

    def test_save_load_roundtrip(self, tmp_path):
        table = QTable(3, 2)
        table.set(1, 1, 3.25)
        path = tmp_path / "q.npz"
        table.save(path)
        back = QTable.load(path)
        assert back.n_states == 3
        assert back.get(1, 1) == 3.25

    def test_load_garbage(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez(path, other=np.zeros(3))
        with pytest.raises(PolicyError):
            QTable.load(path)


class TestEpsilonSchedule:
    def test_decay(self):
        sched = EpsilonSchedule(start=1.0, decay=0.5, floor=0.1)
        assert sched.value(0) == 1.0
        assert sched.value(1) == 0.5
        assert sched.value(2) == 0.25
        assert sched.value(10) == 0.1  # floored

    def test_constant(self):
        sched = EpsilonSchedule(start=0.3, decay=1.0, floor=0.0)
        assert sched.value(10_000) == 0.3

    def test_validation(self):
        with pytest.raises(PolicyError):
            EpsilonSchedule(start=1.5)
        with pytest.raises(PolicyError):
            EpsilonSchedule(start=0.1, floor=0.5)
        with pytest.raises(PolicyError):
            EpsilonSchedule(decay=0.0)


class TestEpsilonGreedy:
    def test_greedy_when_epsilon_zero(self):
        explorer = EpsilonGreedy(EpsilonSchedule(start=0.0, floor=0.0), 3, seed=0)
        row = np.array([0.0, 5.0, 1.0])
        assert all(explorer.select(row) == 1 for _ in range(50))

    def test_explores_when_epsilon_one(self):
        explorer = EpsilonGreedy(
            EpsilonSchedule(start=1.0, decay=1.0, floor=1.0), 3, seed=0
        )
        row = np.array([0.0, 5.0, 1.0])
        picks = {explorer.select(row) for _ in range(200)}
        assert picks == {0, 1, 2}

    def test_row_length_checked(self):
        explorer = EpsilonGreedy(EpsilonSchedule(), 3, seed=0)
        with pytest.raises(PolicyError):
            explorer.select(np.zeros(4))

    def test_deterministic_for_seed(self):
        row = np.array([0.0, 1.0, 2.0])
        a = EpsilonGreedy(EpsilonSchedule(start=0.5), 3, seed=42)
        b = EpsilonGreedy(EpsilonSchedule(start=0.5), 3, seed=42)
        assert [a.select(row) for _ in range(100)] == [b.select(row) for _ in range(100)]


class TestQLearning:
    def test_update_moves_toward_target(self):
        agent = QLearningAgent(4, 2, alpha=0.5, gamma=0.0)
        td = agent.update(0, 1, reward=-2.0, next_state=1)
        assert td == pytest.approx(-2.0)
        assert agent.table.get(0, 1) == pytest.approx(-1.0)

    def test_bootstrap_uses_max(self):
        agent = QLearningAgent(2, 2, alpha=1.0, gamma=0.5)
        agent.table.set(1, 0, 10.0)
        agent.table.set(1, 1, 2.0)
        agent.update(0, 0, reward=0.0, next_state=1)
        assert agent.table.get(0, 0) == pytest.approx(5.0)

    def test_converges_on_two_state_chain(self):
        """A two-state MDP where action 1 is worth +1 and action 0 is 0:
        Q-learning must rank action 1 above action 0 in both states."""
        agent = QLearningAgent(2, 2, alpha=0.2, gamma=0.9,
                               epsilon=EpsilonSchedule(start=1.0, decay=1.0, floor=1.0),
                               seed=0)
        state = 0
        for _ in range(3000):
            action = agent.act(state)
            reward = 1.0 if action == 1 else 0.0
            next_state = 1 - state
            agent.update(state, action, reward, next_state)
            state = next_state
        assert agent.act_greedy(0) == 1
        assert agent.act_greedy(1) == 1
        # Optimal value: 1/(1-gamma) = 10.
        assert agent.table.get(0, 1) == pytest.approx(10.0, rel=0.05)

    def test_parameter_validation(self):
        with pytest.raises(PolicyError):
            QLearningAgent(2, 2, alpha=0.0)
        with pytest.raises(PolicyError):
            QLearningAgent(2, 2, gamma=1.0)

    def test_update_counter(self):
        agent = QLearningAgent(2, 2)
        agent.update(0, 0, 0.0, 1)
        assert agent.updates == 1


class TestSarsa:
    def test_update_uses_next_action_not_max(self):
        agent = SarsaAgent(2, 2, alpha=1.0, gamma=0.5)
        agent.table.set(1, 0, 10.0)
        agent.table.set(1, 1, 2.0)
        agent.update(0, 0, reward=0.0, next_state=1, next_action=1)
        assert agent.table.get(0, 0) == pytest.approx(1.0)  # 0.5*2, not 0.5*10

    def test_learns_the_chain(self):
        agent = SarsaAgent(2, 2, alpha=0.2, gamma=0.9,
                           epsilon=EpsilonSchedule(start=1.0, decay=1.0, floor=1.0),
                           seed=0)
        state = 0
        action = agent.act(state)
        for _ in range(3000):
            reward = 1.0 if action == 1 else 0.0
            next_state = 1 - state
            next_action = agent.act(next_state)
            agent.update(state, action, reward, next_state, next_action)
            state, action = next_state, next_action
        assert agent.act_greedy(0) == 1
        assert agent.act_greedy(1) == 1


class TestReward:
    def obs(self, energy_j=0.05, misses=0, slack=1.0):
        base = initial_observation("c", 0, 10, 1e9, 2e9, 0.01)
        return type(base)(
            **{**base.__dict__, "energy_j": energy_j,
               "deadline_misses": misses, "qos_slack": slack}
        )

    def test_energy_only(self):
        cfg = RewardConfig(energy_scale_j=0.1, lambda_qos=1.0, slack_threshold=0.5)
        assert cfg.compute(self.obs(energy_j=0.05)) == pytest.approx(-0.5)

    def test_miss_penalty(self):
        cfg = RewardConfig(energy_scale_j=0.1, lambda_qos=2.0, miss_penalty=1.0)
        r_miss = cfg.compute(self.obs(misses=1))
        r_clean = cfg.compute(self.obs(misses=0))
        assert r_clean - r_miss == pytest.approx(2.0)

    def test_urgency_kicks_in_below_threshold(self):
        cfg = RewardConfig(energy_scale_j=0.1, lambda_qos=1.0, slack_threshold=0.5)
        relaxed = cfg.compute(self.obs(slack=0.9))
        urgent = cfg.compute(self.obs(slack=0.25))
        assert urgent < relaxed
        critical = cfg.compute(self.obs(slack=0.0))
        assert critical < urgent

    def test_reward_never_positive(self):
        cfg = RewardConfig(energy_scale_j=0.1)
        assert cfg.compute(self.obs(energy_j=0.0, slack=1.0)) == 0.0

    def test_validation(self):
        with pytest.raises(PolicyError):
            RewardConfig(energy_scale_j=0.0)
        with pytest.raises(PolicyError):
            RewardConfig(energy_scale_j=1.0, lambda_qos=-1.0)

    def test_default_energy_scale(self):
        scale = default_energy_scale(1e-9, 1.0, 1e9, 4, 0.01)
        assert scale == pytest.approx(4e-2)
        with pytest.raises(PolicyError):
            default_energy_scale(0.0, 1.0, 1e9, 4, 0.01)
