"""Pareto-frontier analysis and trace perturbation."""

import pytest

from repro.analysis.pareto import (
    FrontierPoint,
    frontier_table,
    on_frontier,
    pareto_frontier,
)
from repro.errors import ReproError, WorkloadError
from repro.workload.perturb import jitter_releases, scale_demand, tighten_deadlines
from repro.workload.scenarios import get_scenario


class TestDominance:
    def test_strict_domination(self):
        better = FrontierPoint("a", energy_j=10.0, qos=0.9)
        worse = FrontierPoint("b", energy_j=12.0, qos=0.8)
        assert better.dominates(worse)
        assert not worse.dominates(better)

    def test_tradeoff_points_do_not_dominate(self):
        cheap = FrontierPoint("a", energy_j=10.0, qos=0.8)
        good = FrontierPoint("b", energy_j=12.0, qos=0.95)
        assert not cheap.dominates(good)
        assert not good.dominates(cheap)

    def test_equal_points_do_not_dominate(self):
        a = FrontierPoint("a", 10.0, 0.9)
        b = FrontierPoint("b", 10.0, 0.9)
        assert not a.dominates(b)

    def test_tolerance_absorbs_noise(self):
        a = FrontierPoint("a", 10.0, 0.9)
        b = FrontierPoint("b", 10.005, 0.899)
        assert a.dominates(b, tolerance=0.0)
        assert not a.dominates(b, tolerance=0.01)


class TestFrontier:
    def points(self):
        return [
            FrontierPoint("powersave", 5.0, 0.4),
            FrontierPoint("mid", 10.0, 0.9),
            FrontierPoint("dominated", 12.0, 0.85),
            FrontierPoint("performance", 20.0, 1.0),
        ]

    def test_frontier_members(self):
        frontier = pareto_frontier(self.points())
        assert [p.label for p in frontier] == ["powersave", "mid", "performance"]

    def test_on_frontier(self):
        assert on_frontier("mid", self.points())
        assert not on_frontier("dominated", self.points())

    def test_unknown_label(self):
        with pytest.raises(ReproError):
            on_frontier("nope", self.points())

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            pareto_frontier([])

    def test_table_marks_members(self):
        table = frontier_table(self.points())
        lines = {line.split()[0]: line for line in table.splitlines()[3:]}
        assert lines["mid"].rstrip().endswith("*")
        assert not lines["dominated"].rstrip().endswith("*")


class TestPerturb:
    @pytest.fixture()
    def trace(self):
        return get_scenario("gaming").trace(5.0, seed=0)

    def test_scale_demand(self, trace):
        heavier = scale_demand(trace, 1.5)
        assert heavier.total_work == pytest.approx(1.5 * trace.total_work)
        assert len(heavier) == len(trace)
        assert all(a.release_s == b.release_s for a, b in zip(trace, heavier))

    def test_scale_validation(self, trace):
        with pytest.raises(WorkloadError):
            scale_demand(trace, 0.0)

    def test_tighten_deadlines(self, trace):
        tight = tighten_deadlines(trace, 0.5)
        for a, b in zip(trace, tight):
            assert b.slack_s == pytest.approx(0.5 * a.slack_s)
            assert b.work == a.work

    def test_tighten_validation(self, trace):
        with pytest.raises(WorkloadError):
            tighten_deadlines(trace, 1.5)

    def test_jitter_preserves_validity(self, trace):
        jittered = jitter_releases(trace, sigma_s=0.005, seed=3)
        assert len(jittered) == len(trace)
        for u in jittered:
            assert 0.0 <= u.release_s < u.deadline_s
            assert u.release_s < jittered.duration_s

    def test_jitter_zero_is_identity(self, trace):
        same = jitter_releases(trace, sigma_s=0.0)
        assert [u.release_s for u in same] == [u.release_s for u in trace]

    def test_jitter_deterministic(self, trace):
        a = jitter_releases(trace, 0.01, seed=5)
        b = jitter_releases(trace, 0.01, seed=5)
        assert [u.release_s for u in a] == [u.release_s for u in b]

    def test_perturbed_trace_simulates(self, trace, big_little_chip):
        from repro.governors.ondemand import OndemandGovernor
        from repro.sim.engine import Simulator

        shifted = tighten_deadlines(scale_demand(trace, 1.2), 0.8)
        result = Simulator(big_little_chip, shifted,
                           lambda c: OndemandGovernor()).run()
        assert result.qos.n_units == len(trace)
