"""n-step Q-learning."""

import pytest

from repro.errors import PolicyError
from repro.rl.exploration import EpsilonSchedule
from repro.rl.nstep import NStepQAgent
from repro.rl.qlearning import QLearningAgent


class TestNStepMechanics:
    def test_window_fills_before_updating(self):
        agent = NStepQAgent(4, 2, n_steps=3)
        assert agent.update(0, 0, -1.0, 1) == 0.0
        assert agent.update(1, 0, -1.0, 2) == 0.0
        td = agent.update(2, 0, -1.0, 3)
        assert td != 0.0
        assert agent.updates == 1

    def test_one_step_reduces_to_q_learning(self):
        import numpy as np

        rng = np.random.default_rng(0)
        nstep = NStepQAgent(6, 3, alpha=0.3, gamma=0.8, n_steps=1)
        plain = QLearningAgent(6, 3, alpha=0.3, gamma=0.8)
        for _ in range(500):
            s = int(rng.integers(6))
            a = int(rng.integers(3))
            r = float(rng.uniform(-1, 0))
            s2 = int(rng.integers(6))
            nstep.update(s, a, r, s2)
            plain.update(s, a, r, s2)
        assert nstep.table.values == pytest.approx(plain.table.values)

    def test_nstep_return_value(self):
        # Deterministic: n=2, gamma=0.5, alpha=1, all Q start 0.
        agent = NStepQAgent(4, 1, alpha=1.0, gamma=0.5, n_steps=2)
        agent.update(0, 0, 1.0, 1)
        agent.update(1, 0, 2.0, 2)
        # G = 1 + 0.5*2 + 0.25*Q(2) = 2.0 applied to (0,0).
        assert agent.table.get(0, 0) == pytest.approx(2.0)

    def test_flush_drains_window(self):
        agent = NStepQAgent(4, 1, n_steps=4)
        agent.update(0, 0, -1.0, 1)
        agent.update(1, 0, -1.0, 2)
        applied = agent.flush(final_state=2)
        assert applied == 2
        assert agent.updates == 2

    def test_reset_window_discards(self):
        agent = NStepQAgent(4, 1, n_steps=4)
        agent.update(0, 0, -1.0, 1)
        agent.reset_window()
        assert agent.flush(0) == 0
        assert agent.table.get(0, 0) == 0.0

    def test_validation(self):
        with pytest.raises(PolicyError):
            NStepQAgent(2, 2, n_steps=0)
        with pytest.raises(PolicyError):
            NStepQAgent(2, 2, alpha=0.0)


class TestNStepLearning:
    def test_learns_the_chain(self):
        agent = NStepQAgent(
            2, 2, alpha=0.2, gamma=0.9, n_steps=3,
            epsilon=EpsilonSchedule(start=1.0, decay=1.0, floor=1.0), seed=0,
        )
        state = 0
        for _ in range(4000):
            action = agent.act(state)
            reward = 1.0 if action == 1 else 0.0
            next_state = 1 - state
            agent.update(state, action, reward, next_state)
            state = next_state
        assert agent.act_greedy(0) == 1
        assert agent.act_greedy(1) == 1

    def test_faster_credit_on_delayed_reward(self):
        """A 5-state corridor with reward only at the end: after one pass,
        n-step has propagated value to earlier states that 1-step has not
        touched yet."""
        def one_pass(agent):
            for s in range(5):
                r = 1.0 if s == 4 else 0.0
                agent.update(s, 0, r, min(s + 1, 4))
            if isinstance(agent, NStepQAgent):
                agent.flush(4)

        nstep = NStepQAgent(5, 1, alpha=0.5, gamma=0.9, n_steps=5)
        plain = QLearningAgent(5, 1, alpha=0.5, gamma=0.9)
        one_pass(nstep)
        one_pass(plain)
        assert nstep.table.get(0, 0) > plain.table.get(0, 0)
